//! Property-based equivalence between the compiled dense evaluation layer
//! and map-based reference implementations.
//!
//! The compiled layer ([`hmdiv_core::compiled`]) promises *bit-identical*
//! results, not merely close ones: the same summation order (profile
//! insertion order), the same [`ClassParams`] arithmetic, and the same RNG
//! consumption order (classes sorted by name) as walking the `BTreeMap`
//! tables directly. Each test here re-rolls the pre-compiled map-based
//! computation by hand and compares `f64::to_bits`.
// Integration tests are test code: the house `unwrap_used` ban (clippy.toml)
// exempts tests, but clippy only auto-detects `#[cfg(test)]` modules.
#![allow(clippy::unwrap_used)]

use hmdiv_core::adaptation::AdaptationResponse;
use hmdiv_core::compiled::{PROFILE_LANES, SCENARIO_LANES};
use hmdiv_core::design::rank_improvement_targets;
use hmdiv_core::extrapolate::Scenario;
use hmdiv_core::importance::{system_failure_scaled_batch, system_failure_scaled_compiled};
use hmdiv_core::uncertainty::{propagate, propagate_par, ClassPosterior, ModelPosterior};
use hmdiv_core::{ClassId, ClassParams, DemandProfile, ModelParams, SequentialModel};
use hmdiv_prob::Probability;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn p(v: f64) -> Probability {
    Probability::new(v).unwrap()
}

/// Interior probabilities, bounded away from 0/1 so conditionals stay
/// defined.
fn interior() -> impl Strategy<Value = f64> {
    0.02..=0.98f64
}

#[derive(Debug, Clone)]
struct System {
    model: SequentialModel,
    profile: DemandProfile,
}

/// Random 3-class systems; class names chosen so sorted (universe) order
/// differs from profile insertion order, exercising the index indirection.
fn system() -> impl Strategy<Value = System> {
    (
        proptest::collection::vec((interior(), interior(), interior()), 3),
        0.05..=0.9f64,
        0.05..=0.9f64,
    )
        .prop_map(|(params, w1, w2)| {
            let names = ["zeta", "alpha", "mid"];
            let mut builder = ModelParams::builder();
            for (name, (mf, ms, mf_cond)) in names.iter().zip(&params) {
                builder = builder.class(*name, ClassParams::new(p(*mf), p(*ms), p(*mf_cond)));
            }
            let model = SequentialModel::new(builder.build().unwrap());
            // Insertion order zeta, alpha, mid — not sorted.
            let profile = DemandProfile::builder()
                .class("zeta", w1)
                .class("alpha", w2)
                .class("mid", 0.1)
                .build()
                .unwrap();
            System { model, profile }
        })
}

/// The pre-compiled map-based eq. (8): walk the profile in insertion order,
/// look each class up in the `BTreeMap` table.
fn map_system_failure(model: &SequentialModel, profile: &DemandProfile) -> f64 {
    let mut total = 0.0;
    for (class, weight) in profile.iter() {
        let cp = model.params().class(class).unwrap();
        total += weight.value() * cp.class_failure().value();
    }
    Probability::clamped(total).value()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn system_failure_bit_identical(sys in system()) {
        let via_compiled = sys.model.system_failure(&sys.profile).unwrap().value();
        let via_map = map_system_failure(&sys.model, &sys.profile);
        prop_assert_eq!(via_compiled.to_bits(), via_map.to_bits());
    }

    #[test]
    fn conditional_marginals_bit_identical(sys in system()) {
        // Map-based references for PMf and the Bayes-weighted conditionals.
        let (mut mf_total, mut joint_ms, mut marg_ms, mut joint_mf, mut marg_mf) =
            (0.0, 0.0, 0.0, 0.0, 0.0);
        for (class, weight) in sys.profile.iter() {
            let cp = sys.model.params().class(class).unwrap();
            let w = weight.value();
            mf_total += w * cp.p_mf().value();
            joint_ms += w * cp.p_ms().value() * cp.p_hf_given_ms().value();
            marg_ms += w * cp.p_ms().value();
            joint_mf += w * cp.p_mf().value() * cp.p_hf_given_mf().value();
            marg_mf += w * cp.p_mf().value();
        }
        let machine = sys.model.machine_failure(&sys.profile).unwrap().value();
        prop_assert_eq!(machine.to_bits(), Probability::clamped(mf_total).value().to_bits());
        let hf_ms = sys.model
            .human_failure_given_machine_success(&sys.profile)
            .unwrap()
            .value();
        prop_assert_eq!(
            hf_ms.to_bits(),
            Probability::clamped(joint_ms / marg_ms).value().to_bits()
        );
        let hf_mf = sys.model
            .human_failure_given_machine_failure(&sys.profile)
            .unwrap()
            .value();
        prop_assert_eq!(
            hf_mf.to_bits(),
            Probability::clamped(joint_mf / marg_mf).value().to_bits()
        );
    }

    #[test]
    fn scenario_batch_bit_identical_to_map_apply(
        sys in system(),
        factor in 1.5..=20.0f64,
        new_mf in interior(),
        ms in interior(),
        mf_cond in interior(),
        scale in 0.1..=1.5f64,
    ) {
        let scenarios = vec![
            Scenario::new().improve_machine(ClassId::new("alpha"), factor),
            Scenario::new().improve_machine_everywhere(factor),
            Scenario::new().set_machine_failure(ClassId::new("mid"), p(new_mf)),
            Scenario::new().set_reader(ClassId::new("zeta"), p(ms), p(mf_cond)),
            Scenario::new().scale_reader_everywhere(scale),
        ];
        let compiled = sys.model.compiled();
        let bound = compiled.bind_profile(&sys.profile).unwrap();
        let batch = compiled.evaluate_scenarios(&scenarios, &bound).unwrap();
        for (scenario, fast) in scenarios.iter().zip(&batch) {
            // Map path: clone-and-rebuild the model, then walk the maps.
            let applied = scenario.apply(&sys.model).unwrap();
            let slow = map_system_failure(&applied, &sys.profile);
            prop_assert_eq!(fast.value().to_bits(), slow.to_bits());
        }
    }

    #[test]
    fn design_ranking_bit_identical(sys in system()) {
        // Map-based reference: leverage per profile entry, same sort.
        let mut reference = Vec::new();
        for (class, weight) in sys.profile.iter() {
            let cp = sys.model.params().class(class).unwrap();
            let w = weight.value();
            let t = cp.coherence_index();
            let p_mf = cp.p_mf().value();
            reference.push((class.clone(), w * t * p_mf));
        }
        reference.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let ranked = rank_improvement_targets(&sys.model, &sys.profile).unwrap();
        prop_assert_eq!(ranked.len(), reference.len());
        for (lever, (class, benefit)) in ranked.iter().zip(&reference) {
            prop_assert_eq!(&lever.class, class);
            prop_assert_eq!(lever.max_benefit.to_bits(), benefit.to_bits());
        }
    }

    #[test]
    fn budget_allocation_matches_scenario_replay(
        sys in system(),
        budget in 1usize..=4,
        step in 1.5..=5.0f64,
    ) {
        // The patched greedy loop must produce a final model whose failure
        // equals replaying its allocation through the map-based scenario
        // machinery.
        let alloc = hmdiv_core::design::allocate_improvement_budget(
            &sys.model, &sys.profile, budget, step,
        ).unwrap();
        let mut scenario = Scenario::new();
        for (class, units) in &alloc.allocation {
            for _ in 0..*units {
                scenario = scenario.improve_machine(class.clone(), step);
            }
        }
        let replayed = scenario.apply(&sys.model).unwrap();
        let replayed_failure = map_system_failure(&replayed, &sys.profile);
        prop_assert!((alloc.after - replayed_failure).abs() < 1e-15,
            "{} vs {}", alloc.after, replayed_failure);
        prop_assert_eq!(
            alloc.model.system_failure(&sys.profile).unwrap().value().to_bits(),
            replayed_failure.to_bits()
        );
    }
}

/// Batch sizes that exercise the lane-blocked kernels' remainder tail:
/// empty, pure-tail, one short of a block, exactly one block, one over, and
/// two blocks plus a tail.
fn lane_edge_sizes(lanes: usize) -> [usize; 6] {
    [0, 1, lanes - 1, lanes, lanes + 1, 2 * lanes + 3]
}

/// Eight structurally distinct scenarios: identity, the three targeted
/// change kinds (sparse-overlay lanes), a composed overlay on one slot, the
/// two whole-table change kinds, and an adaptation response (general-path
/// lanes) — so cycled batches mix sparse and general lanes inside a block.
fn scenario_pool(
    factor: f64,
    new_mf: f64,
    ms: f64,
    mf_cond: f64,
    scale: f64,
    strength: f64,
) -> Vec<Scenario> {
    vec![
        Scenario::new(),
        Scenario::new().improve_machine(ClassId::new("alpha"), factor),
        Scenario::new().set_machine_failure(ClassId::new("mid"), p(new_mf)),
        Scenario::new().set_reader(ClassId::new("zeta"), p(ms), p(mf_cond)),
        Scenario::new()
            .improve_machine(ClassId::new("alpha"), factor)
            .set_machine_failure(ClassId::new("alpha"), p(new_mf)),
        Scenario::new().improve_machine_everywhere(factor),
        Scenario::new().scale_reader_everywhere(scale),
        Scenario::new()
            .improve_machine(ClassId::new("mid"), factor)
            .with_adaptation(AdaptationResponse::Complacency { strength }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lane_blocked_scenarios_bit_identical_at_tail_edges(
        sys in system(),
        factor in 1.5..=20.0f64,
        new_mf in interior(),
        ms in interior(),
        mf_cond in interior(),
        scale in 0.1..=1.5f64,
        strength in 0.05..=0.95f64,
    ) {
        let pool = scenario_pool(factor, new_mf, ms, mf_cond, scale, strength);
        let compiled = sys.model.compiled();
        let bound = compiled.bind_profile(&sys.profile).unwrap();
        for n in lane_edge_sizes(SCENARIO_LANES) {
            let batch: Vec<Scenario> =
                (0..n).map(|i| pool[i % pool.len()].clone()).collect();
            let lane = compiled.evaluate_scenarios(&batch, &bound).unwrap();
            prop_assert_eq!(lane.len(), n);
            // Scalar reference: a single-scenario batch is below one lane
            // block, so it always takes the remainder-tail (scalar) path.
            for (i, (scenario, fast)) in batch.iter().zip(&lane).enumerate() {
                let scalar = compiled
                    .evaluate_scenarios(std::slice::from_ref(scenario), &bound)
                    .unwrap()[0];
                prop_assert_eq!(
                    fast.value().to_bits(),
                    scalar.value().to_bits(),
                    "n={} lane={}", n, i
                );
            }
            for threads in [1usize, 2, 7] {
                let par = compiled
                    .evaluate_scenarios_par(&batch, &bound, threads)
                    .unwrap();
                prop_assert_eq!(par.len(), n);
                for (i, (pv, sv)) in par.iter().zip(&lane).enumerate() {
                    prop_assert_eq!(
                        pv.value().to_bits(),
                        sv.value().to_bits(),
                        "threads={} n={} lane={}", threads, n, i
                    );
                }
            }
        }
    }

    #[test]
    fn lane_blocked_profiles_bit_identical_at_tail_edges(
        sys in system(),
        w in 0.05..=0.9f64,
    ) {
        let compiled = sys.model.compiled();
        // Bound profiles of different lengths and insertion orders, so
        // joint-prefix and per-lane remainder loops both run.
        let pool: Vec<_> = [
            &[("zeta", w), ("alpha", 0.2), ("mid", 0.1)][..],
            &[("mid", 1.0)][..],
            &[("alpha", w), ("zeta", 0.3)][..],
            &[("alpha", 1.0)][..],
            &[("mid", 0.4), ("zeta", w)][..],
        ]
        .iter()
        .map(|entries| {
            let mut builder = DemandProfile::builder();
            for (name, weight) in *entries {
                builder = builder.class(*name, *weight);
            }
            compiled.bind_profile(&builder.build().unwrap()).unwrap()
        })
        .collect();
        for n in lane_edge_sizes(PROFILE_LANES) {
            let batch: Vec<_> =
                (0..n).map(|i| pool[i % pool.len()].clone()).collect();
            let lane = compiled.evaluate_profiles(&batch);
            prop_assert_eq!(lane.len(), n);
            for (i, (bp, fast)) in batch.iter().zip(&lane).enumerate() {
                prop_assert_eq!(
                    fast.value().to_bits(),
                    compiled.system_failure(bp).value().to_bits(),
                    "n={} lane={}", n, i
                );
            }
            for threads in [1usize, 2, 7] {
                let par = compiled.evaluate_profiles_par(&batch, threads);
                prop_assert_eq!(par.len(), n);
                for (i, (pv, sv)) in par.iter().zip(&lane).enumerate() {
                    prop_assert_eq!(
                        pv.value().to_bits(),
                        sv.value().to_bits(),
                        "threads={} n={} lane={}", threads, n, i
                    );
                }
            }
        }
    }

    #[test]
    fn patched_batch_bit_identical_at_tail_edges(
        sys in system(),
        factor in 1.5..=20.0f64,
        new_mf in interior(),
    ) {
        let compiled = sys.model.compiled();
        let bound = compiled.bind_profile(&sys.profile).unwrap();
        let slots = compiled.class_failure_slice().len();
        for n in lane_edge_sizes(SCENARIO_LANES) {
            let candidates: Vec<(u32, ClassParams)> = (0..n)
                .map(|i| {
                    let idx = u32::try_from(i % slots).unwrap();
                    let base = compiled.params_at(idx);
                    let cp = if i % 2 == 0 {
                        base.with_machine_improved(factor).unwrap()
                    } else {
                        base.with_p_mf(p(new_mf))
                    };
                    (idx, cp)
                })
                .collect();
            let lane = compiled.system_failure_patched_batch(&bound, &candidates);
            prop_assert_eq!(lane.len(), n);
            for (i, ((idx, cp), fast)) in candidates.iter().zip(&lane).enumerate() {
                let scalar = compiled.system_failure_patched(&bound, *idx, *cp);
                prop_assert_eq!(
                    fast.value().to_bits(),
                    scalar.value().to_bits(),
                    "n={} lane={}", n, i
                );
            }
        }
    }

    #[test]
    fn scaled_batch_bit_identical_at_tail_edges(
        sys in system(),
        s0 in 0.0..=1.0f64,
    ) {
        let compiled = sys.model.compiled();
        let bound = compiled.bind_profile(&sys.profile).unwrap();
        // Includes both endpoints; cycling keeps adjacent lanes distinct.
        let pool = [0.0, 1.0, 0.5, s0, 0.25, 0.9, 0.1, 0.75];
        for n in lane_edge_sizes(SCENARIO_LANES) {
            let scales: Vec<f64> =
                (0..n).map(|i| pool[i % pool.len()]).collect();
            let lane = system_failure_scaled_batch(compiled, &bound, &scales).unwrap();
            prop_assert_eq!(lane.len(), n);
            for (i, (scale, fast)) in scales.iter().zip(&lane).enumerate() {
                let scalar =
                    system_failure_scaled_compiled(compiled, &bound, *scale).unwrap();
                prop_assert_eq!(
                    fast.value().to_bits(),
                    scalar.value().to_bits(),
                    "n={} lane={}", n, i
                );
            }
        }
    }
}

#[test]
fn lane_blocked_error_order_matches_scalar_across_thread_counts() {
    use hmdiv_core::ModelError;
    let sys = {
        let mut builder = ModelParams::builder();
        for name in ["zeta", "alpha", "mid"] {
            builder = builder.class(name, ClassParams::new(p(0.1), p(0.2), p(0.3)));
        }
        let model = SequentialModel::new(builder.build().unwrap());
        let profile = DemandProfile::builder()
            .class("zeta", 0.5)
            .class("alpha", 0.3)
            .class("mid", 0.2)
            .build()
            .unwrap();
        System { model, profile }
    };
    let compiled = sys.model.compiled();
    let bound = compiled.bind_profile(&sys.profile).unwrap();
    // Two invalid scenarios: an invalid factor at index 3 (inside the first
    // full lane block) and an unknown class at index 9 (second block). The
    // fail-fast contract reports the lowest-indexed one at every thread
    // count — including when the batch ends in a remainder tail.
    let mut batch: Vec<Scenario> = (0..(2 * SCENARIO_LANES + 3))
        .map(|_| Scenario::new().improve_machine(ClassId::new("alpha"), 2.0))
        .collect();
    batch[9] = Scenario::new().improve_machine(ClassId::new("ghost"), 2.0);
    batch[3] = Scenario::new().improve_machine(ClassId::new("zeta"), 0.25);
    let sequential = compiled
        .evaluate_scenarios(&batch, &bound)
        .expect_err("invalid factor must fail");
    assert!(
        matches!(sequential, ModelError::InvalidFactor { .. }),
        "{sequential:?}"
    );
    for threads in [1usize, 2, 7] {
        let par = compiled
            .evaluate_scenarios_par(&batch, &bound, threads)
            .expect_err("invalid factor must fail");
        assert_eq!(
            format!("{par:?}"),
            format!("{sequential:?}"),
            "threads {threads}"
        );
    }
}

fn posterior() -> ModelPosterior {
    ModelPosterior::new()
        .with_class(
            "easy",
            ClassPosterior::from_counts((14, 200), (26, 186), (3, 14)).unwrap(),
        )
        .with_class(
            "difficult",
            ClassPosterior::from_counts((82, 200), (47, 118), (74, 82)).unwrap(),
        )
}

fn field() -> DemandProfile {
    DemandProfile::builder()
        .class("easy", 0.9)
        .class("difficult", 0.1)
        .build()
        .unwrap()
}

/// The naive pre-compiled Monte-Carlo loop: sample a full map-based model
/// per draw, evaluate it by walking the maps. `propagate` must consume the
/// RNG in exactly this order and produce bit-identical samples.
fn naive_samples(
    post: &ModelPosterior,
    profile: &DemandProfile,
    draws: usize,
    seed: u64,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples: Vec<f64> = (0..draws)
        .map(|_| {
            let model = post.sample_model(&mut rng).unwrap();
            map_system_failure(&model, profile)
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples
}

#[test]
fn uncertainty_propagation_bit_identical_to_naive_loop() {
    let post = posterior();
    let profile = field();
    for seed in [1u64, 7, 1234] {
        let reference = naive_samples(&post, &profile, 500, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let pred = propagate(&post, &profile, 500, &mut rng).unwrap();
        assert_eq!(pred.draws(), reference.len());
        // Quantiles interpolate the sorted sample vector; probing a dense
        // grid of orders pins every sample position.
        let n = reference.len();
        for i in 0..n {
            let q = i as f64 / (n - 1) as f64;
            let expected = {
                // Same interpolation as UncertainPrediction::quantile.
                let pos = q * (n - 1) as f64;
                let idx = pos.floor() as usize;
                let frac = pos - idx as f64;
                let v = if idx + 1 >= n {
                    reference[n - 1]
                } else {
                    reference[idx] * (1.0 - frac) + reference[idx + 1] * frac
                };
                Probability::clamped(v).value()
            };
            assert_eq!(
                pred.quantile(q).value().to_bits(),
                expected.to_bits(),
                "seed {seed}, quantile {q}"
            );
        }
    }
}

#[test]
fn uncertainty_quantiles_identical_across_thread_counts() {
    let post = posterior();
    let profile = field();
    let reference = propagate_par(&post, &profile, 800, 42, 1).unwrap();
    for threads in [2usize, 7] {
        let pred = propagate_par(&post, &profile, 800, 42, threads).unwrap();
        for q in [0.0, 0.05, 0.25, 0.5, 0.75, 0.95, 1.0] {
            assert_eq!(
                pred.quantile(q).value().to_bits(),
                reference.quantile(q).value().to_bits(),
                "threads {threads}, quantile {q}"
            );
        }
        assert_eq!(
            pred.mean().value().to_bits(),
            reference.mean().value().to_bits()
        );
        assert_eq!(pred.std_dev().to_bits(), reference.std_dev().to_bits());
    }
}

#[test]
fn profile_universe_mismatch_is_unknown_class_both_directions() {
    use hmdiv_core::ModelError;
    // Direction 1: profile mentions a class the model's universe lacks.
    let model = SequentialModel::new(
        ModelParams::builder()
            .class("known", ClassParams::new(p(0.1), p(0.2), p(0.3)))
            .build()
            .unwrap(),
    );
    let ghost_profile = DemandProfile::builder()
        .class("known", 0.5)
        .class("ghost", 0.5)
        .build()
        .unwrap();
    assert!(matches!(
        model.system_failure(&ghost_profile),
        Err(ModelError::UnknownClass { class }) if class.name() == "ghost"
    ));
    // Direction 2: a profile bound to one universe is rejected by a model
    // compiled over a different universe (index spaces must not mix).
    let other = SequentialModel::new(
        ModelParams::builder()
            .class("other", ClassParams::new(p(0.1), p(0.2), p(0.3)))
            .build()
            .unwrap(),
    );
    let profile_for_model = DemandProfile::builder()
        .class("known", 1.0)
        .build()
        .unwrap();
    assert!(matches!(
        other.compiled().bind_profile(&profile_for_model),
        Err(ModelError::UnknownClass { class }) if class.name() == "known"
    ));
    // And the weight accessor reports the same typed error.
    assert!(matches!(
        profile_for_model.weight("other"),
        Err(ModelError::UnknownClass { class }) if class.name() == "other"
    ));
}

#[test]
fn compiled_rng_independent_of_profile_binding() {
    // Binding different profiles must not change how the posterior consumes
    // randomness: the sample sequence depends only on the sorted universe.
    let post = posterior();
    let narrow = DemandProfile::builder().class("easy", 1.0).build().unwrap();
    let mut rng_a = StdRng::seed_from_u64(9);
    let mut rng_b = StdRng::seed_from_u64(9);
    let _ = propagate(&post, &field(), 50, &mut rng_a).unwrap();
    let _ = propagate(&post, &narrow, 50, &mut rng_b).unwrap();
    // Both consumed the same number of random values.
    assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
}
