use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use hmdiv_prob::{Categorical, Probability};

use crate::{ClassId, ModelError};

/// A *demand profile* `p(x)`: the distribution of case classes presented to
/// the system (paper §4).
///
/// The paper's central extrapolation move (§5) is evaluating the same
/// per-class parameters under a different profile — e.g. a trial enriched to
/// 20% difficult cases versus a field population with 10%.
///
/// # Example
///
/// ```
/// use hmdiv_core::DemandProfile;
///
/// # fn main() -> Result<(), hmdiv_core::ModelError> {
/// let trial = DemandProfile::builder()
///     .class("easy", 0.8)
///     .class("difficult", 0.2)
///     .build()?;
/// assert_eq!(trial.len(), 2);
/// assert!((trial.weight("easy").unwrap().value() - 0.8).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandProfile {
    dist: Categorical<ClassId>,
}

impl DemandProfile {
    /// Starts building a profile.
    #[must_use]
    pub fn builder() -> DemandProfileBuilder {
        DemandProfileBuilder {
            entries: Vec::new(),
        }
    }

    /// Builds a profile directly from `(class, weight)` pairs.
    ///
    /// # Errors
    ///
    /// * [`ModelError::Empty`] if no classes are given.
    /// * [`ModelError::DuplicateClass`] if a class appears twice.
    /// * [`ModelError::Prob`] for invalid weights.
    pub fn from_weights(
        pairs: impl IntoIterator<Item = (ClassId, f64)>,
    ) -> Result<Self, ModelError> {
        let mut builder = DemandProfile::builder();
        for (class, w) in pairs {
            builder.entries.push((class, w));
        }
        builder.build()
    }

    /// The number of classes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.dist.len()
    }

    /// Whether the profile has no classes (never true for a built profile).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dist.is_empty()
    }

    /// The classes, in insertion order.
    #[must_use]
    pub fn classes(&self) -> &[ClassId] {
        self.dist.categories()
    }

    /// The probability weight of a class.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownClass`] if the profile does not mention the
    /// class — the same typed error the compiled evaluation layer reports
    /// for the reverse mismatch (a profile class absent from a model's
    /// universe).
    pub fn weight(&self, class: &str) -> Result<Probability, ModelError> {
        self.dist
            .categories()
            .iter()
            .position(|c| c.name() == class)
            .map(|i| self.dist.probability_at(i))
            .ok_or_else(|| ModelError::UnknownClass {
                class: ClassId::new(class),
            })
    }

    /// Iterates `(class, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&ClassId, Probability)> + '_ {
        self.dist.iter()
    }

    /// The profile-expectation `Σ p(x)·f(x)` of a per-class quantity.
    pub fn expect<F: FnMut(&ClassId) -> f64>(&self, f: F) -> f64 {
        self.dist.expect(f)
    }

    /// Samples a class according to the profile.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &ClassId {
        self.dist.sample(rng)
    }

    /// Returns a new profile over the same classes with different weights.
    ///
    /// # Errors
    ///
    /// As [`DemandProfile::from_weights`].
    pub fn reweighted<F: FnMut(&ClassId, Probability) -> f64>(
        &self,
        mut reweight: F,
    ) -> Result<Self, ModelError> {
        let dist = self
            .dist
            .reweighted(|c, p| reweight(c, p))
            .map_err(ModelError::from)?;
        Ok(DemandProfile { dist })
    }

    /// Total-variation distance to another profile over the same classes in
    /// the same order.
    ///
    /// # Errors
    ///
    /// [`ModelError::Prob`] if the profiles have different class counts.
    pub fn total_variation(&self, other: &DemandProfile) -> Result<f64, ModelError> {
        self.dist
            .total_variation(&other.dist)
            .map_err(ModelError::from)
    }

    /// Access to the underlying categorical distribution.
    #[must_use]
    pub fn as_categorical(&self) -> &Categorical<ClassId> {
        &self.dist
    }
}

impl fmt::Display for DemandProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.dist, f)
    }
}

/// Builder for [`DemandProfile`].
#[derive(Debug, Clone, Default)]
pub struct DemandProfileBuilder {
    entries: Vec<(ClassId, f64)>,
}

impl DemandProfileBuilder {
    /// Adds a class with the given (unnormalised) weight.
    #[must_use]
    pub fn class(mut self, class: impl Into<ClassId>, weight: f64) -> Self {
        self.entries.push((class.into(), weight));
        self
    }

    /// Builds the profile, normalising weights.
    ///
    /// # Errors
    ///
    /// * [`ModelError::Empty`] if no classes were added.
    /// * [`ModelError::DuplicateClass`] if a class was added twice.
    /// * [`ModelError::Prob`] for negative/NaN/all-zero weights.
    pub fn build(self) -> Result<DemandProfile, ModelError> {
        if self.entries.is_empty() {
            return Err(ModelError::Empty {
                context: "demand profile",
            });
        }
        for (i, (class, _)) in self.entries.iter().enumerate() {
            if self.entries[..i].iter().any(|(c, _)| c == class) {
                return Err(ModelError::DuplicateClass {
                    class: class.clone(),
                });
            }
        }
        let dist = Categorical::new(self.entries).map_err(ModelError::from)?;
        Ok(DemandProfile { dist })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_normalises() {
        let p = DemandProfile::builder()
            .class("a", 2.0)
            .class("b", 2.0)
            .build()
            .unwrap();
        assert!((p.weight("a").unwrap().value() - 0.5).abs() < 1e-12);
        assert!(matches!(
            p.weight("missing"),
            Err(ModelError::UnknownClass { class }) if class.name() == "missing"
        ));
    }

    #[test]
    fn builder_rejects_duplicates_and_empty() {
        assert!(matches!(
            DemandProfile::builder()
                .class("a", 1.0)
                .class("a", 2.0)
                .build(),
            Err(ModelError::DuplicateClass { .. })
        ));
        assert!(matches!(
            DemandProfile::builder().build(),
            Err(ModelError::Empty { .. })
        ));
    }

    #[test]
    fn expectation_over_profile() {
        let p = DemandProfile::builder()
            .class("easy", 0.9)
            .class("difficult", 0.1)
            .build()
            .unwrap();
        let v = p.expect(|c| if c.name() == "easy" { 0.1428 } else { 0.605 });
        assert!((v - (0.9 * 0.1428 + 0.1 * 0.605)).abs() < 1e-12);
    }

    #[test]
    fn reweight_trial_to_field() {
        let trial = DemandProfile::builder()
            .class("easy", 0.8)
            .class("difficult", 0.2)
            .build()
            .unwrap();
        let field = trial
            .reweighted(|c, _| if c.name() == "easy" { 0.9 } else { 0.1 })
            .unwrap();
        assert!((field.weight("difficult").unwrap().value() - 0.1).abs() < 1e-12);
        let tv = trial.total_variation(&field).unwrap();
        assert!((tv - 0.1).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_weights() {
        use rand::SeedableRng;
        let p = DemandProfile::builder()
            .class("easy", 0.9)
            .class("difficult", 0.1)
            .build()
            .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let n = 100_000;
        let mut difficult = 0;
        for _ in 0..n {
            if p.sample(&mut rng).name() == "difficult" {
                difficult += 1;
            }
        }
        let freq = difficult as f64 / n as f64;
        assert!((freq - 0.1).abs() < 0.01, "{freq}");
    }

    #[test]
    fn from_weights_equivalent_to_builder() {
        let a = DemandProfile::from_weights([(ClassId::new("x"), 1.0), (ClassId::new("y"), 3.0)])
            .unwrap();
        assert!((a.weight("y").unwrap().value() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_classes() {
        let p = DemandProfile::builder().class("easy", 1.0).build().unwrap();
        assert!(p.to_string().contains("easy"));
    }
}
