//! Parameter sensitivity of the system failure probability.
//!
//! Eq. (8) is linear in each parameter, so its partial derivatives have
//! closed forms:
//!
//! ```text
//! ∂PHf/∂PMf(x)      = p(x)·t(x)
//! ∂PHf/∂PHf|Ms(x)   = p(x)·PMs(x)
//! ∂PHf/∂PHf|Mf(x)   = p(x)·PMf(x)
//! ∂PHf/∂p(x)        = PHf(x)           (under re-normalisation, see below)
//! ```
//!
//! These gradients serve two purposes: ranking which estimated parameter's
//! uncertainty dominates the prediction (variance budgeting via the delta
//! method), and sanity-checking the §6 analyses (the `PMf` gradient *is*
//! the class leverage of [`crate::design`]).

use serde::{Deserialize, Serialize};

use crate::{ClassId, DemandProfile, ModelError, SequentialModel};

/// Partial derivatives of the system failure probability with respect to
/// one class's parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassSensitivity {
    /// The class.
    pub class: ClassId,
    /// `∂PHf/∂PMf(x) = p(x)·t(x)`.
    pub d_p_mf: f64,
    /// `∂PHf/∂PHf|Ms(x) = p(x)·PMs(x)`.
    pub d_p_hf_given_ms: f64,
    /// `∂PHf/∂PHf|Mf(x) = p(x)·PMf(x)`.
    pub d_p_hf_given_mf: f64,
}

impl ClassSensitivity {
    /// The largest-magnitude derivative, with its parameter name.
    #[must_use]
    pub fn dominant(&self) -> (&'static str, f64) {
        let candidates = [
            ("PMf", self.d_p_mf),
            ("PHf|Ms", self.d_p_hf_given_ms),
            ("PHf|Mf", self.d_p_hf_given_mf),
        ];
        candidates
            .into_iter()
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .expect("candidate list is a non-empty literal")
    }
}

/// Computes the closed-form gradients for every class in the profile.
///
/// # Errors
///
/// [`ModelError::UnknownClass`] if the profile mentions a class without
/// parameters.
pub fn gradients(
    model: &SequentialModel,
    profile: &DemandProfile,
) -> Result<Vec<ClassSensitivity>, ModelError> {
    let compiled = model.compiled();
    let bound = compiled.bind_profile(profile)?;
    let mut out = Vec::with_capacity(bound.len());
    for (idx, w) in bound.iter() {
        let cp = compiled.params_at(idx);
        out.push(ClassSensitivity {
            class: compiled.universe().class(idx).clone(),
            d_p_mf: w * cp.coherence_index(),
            d_p_hf_given_ms: w * cp.p_ms().value(),
            d_p_hf_given_mf: w * cp.p_mf().value(),
        });
    }
    Ok(out)
}

/// Delta-method variance of the system failure probability given standard
/// errors for each class's parameters (assumed independent):
///
/// ```text
/// Var(PHf) ≈ Σ_x (∂PHf/∂θ_x)²·se(θ_x)²
/// ```
///
/// `se_of` maps `(class, parameter-name)` — names `"PMf"`, `"PHf|Ms"`,
/// `"PHf|Mf"` — to the parameter's standard error.
///
/// Returns `(variance, contributions)` where `contributions` lists each
/// class's share, largest first.
///
/// # Errors
///
/// As [`gradients`].
pub fn delta_method_variance<F>(
    model: &SequentialModel,
    profile: &DemandProfile,
    mut se_of: F,
) -> Result<(f64, Vec<(ClassId, f64)>), ModelError>
where
    F: FnMut(&ClassId, &'static str) -> f64,
{
    let grads = gradients(model, profile)?;
    let mut contributions = Vec::with_capacity(grads.len());
    let mut total = 0.0;
    for g in &grads {
        let v = (g.d_p_mf * se_of(&g.class, "PMf")).powi(2)
            + (g.d_p_hf_given_ms * se_of(&g.class, "PHf|Ms")).powi(2)
            + (g.d_p_hf_given_mf * se_of(&g.class, "PHf|Mf")).powi(2);
        total += v;
        contributions.push((g.class.clone(), v));
    }
    contributions.sort_by(|a, b| b.1.total_cmp(&a.1));
    Ok((total, contributions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extrapolate::Scenario;
    use crate::paper;
    use hmdiv_prob::Probability;

    #[test]
    fn gradients_match_finite_differences() {
        let model = paper::example_model().unwrap();
        let profile = paper::field_profile().unwrap();
        let eps = 1e-6;
        for g in gradients(&model, &profile).unwrap() {
            let cp = *model.params().class(&g.class).unwrap();
            // ∂/∂PMf via the scenario machinery.
            let bumped = Scenario::new()
                .set_machine_failure(
                    g.class.clone(),
                    Probability::clamped(cp.p_mf().value() + eps),
                )
                .predict(&model, &profile)
                .unwrap();
            let fd = (bumped.after.value() - bumped.before.value()) / eps;
            assert!(
                (fd - g.d_p_mf).abs() < 1e-6,
                "{}: {} vs {}",
                g.class,
                fd,
                g.d_p_mf
            );
            // ∂/∂PHf|Mf via set_reader.
            let bumped = Scenario::new()
                .set_reader(
                    g.class.clone(),
                    cp.p_hf_given_ms(),
                    Probability::clamped(cp.p_hf_given_mf().value() + eps),
                )
                .predict(&model, &profile)
                .unwrap();
            let fd = (bumped.after.value() - bumped.before.value()) / eps;
            assert!((fd - g.d_p_hf_given_mf).abs() < 1e-6, "{}", g.class);
        }
    }

    #[test]
    fn pmf_gradient_is_design_leverage() {
        // ∂PHf/∂PMf(x) · PMf(x) = the max_benefit of the design module.
        let model = paper::example_model().unwrap();
        let profile = paper::field_profile().unwrap();
        let grads = gradients(&model, &profile).unwrap();
        let levers = crate::design::rank_improvement_targets(&model, &profile).unwrap();
        for lever in levers {
            let g = grads.iter().find(|g| g.class == lever.class).unwrap();
            assert!((g.d_p_mf * lever.p_mf - lever.max_benefit).abs() < 1e-12);
        }
    }

    #[test]
    fn dominant_parameter_identified() {
        let model = paper::example_model().unwrap();
        let profile = paper::field_profile().unwrap();
        let grads = gradients(&model, &profile).unwrap();
        // Easy class: p=0.9, PMs=0.93 → the PHf|Ms derivative (0.837)
        // dominates everything; the machine hardly matters there.
        let easy = grads.iter().find(|g| g.class.name() == "easy").unwrap();
        assert_eq!(easy.dominant().0, "PHf|Ms");
        assert!((easy.dominant().1 - 0.9 * 0.93).abs() < 1e-12);
    }

    #[test]
    fn delta_method_budget() {
        let model = paper::example_model().unwrap();
        let profile = paper::field_profile().unwrap();
        // Suppose every parameter has se = 0.02.
        let (var, contributions) = delta_method_variance(&model, &profile, |_, _| 0.02).unwrap();
        assert!(var > 0.0);
        // Contributions sorted descending and sum to the total.
        let sum: f64 = contributions.iter().map(|(_, v)| v).sum();
        assert!((sum - var).abs() < 1e-15);
        assert!(contributions[0].1 >= contributions[1].1);
        // With uniform standard errors, the frequent easy class dominates
        // the variance budget (its gradients carry weight 0.9).
        assert_eq!(contributions[0].0.name(), "easy");
    }

    #[test]
    fn zero_se_zero_variance() {
        let model = paper::example_model().unwrap();
        let profile = paper::field_profile().unwrap();
        let (var, _) = delta_method_variance(&model, &profile, |_, _| 0.0).unwrap();
        assert_eq!(var, 0.0);
    }

    #[test]
    fn missing_class_errors() {
        let model = paper::example_model().unwrap();
        let profile = DemandProfile::builder()
            .class("ghost", 1.0)
            .build()
            .unwrap();
        assert!(gradients(&model, &profile).is_err());
    }
}
