use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};

use hmdiv_prob::moments::weighted_covariance;
use hmdiv_prob::Probability;
use hmdiv_rbd::difficulty::littlewood_miller;
use hmdiv_rbd::Block;

use crate::compiled::CompiledDetectionModel;
use crate::{ClassId, DemandProfile, ModelError};

/// The paper's §3 "parallel detection" parameters for one class of demands:
///
/// * `p_mf` — machine misses all relevant features, `P(Mf)(x)`;
/// * `p_h_miss` — reader misses the relevant features in the detection
///   subtask, `P(Hmiss)(x)`;
/// * `p_h_misclass` — reader misclassifies although the relevant features
///   were identified, `P(Hmisclass)(x)`.
///
/// Within a class, machine and reader detection failures are assumed
/// *conditionally independent* (they examine the films separately), which is
/// exactly the assumption whose across-class aggregate produces the
/// covariance term of eq. (3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionParams {
    /// `P(Mf)(x)`: machine detection failure probability.
    pub p_mf: Probability,
    /// `P(Hmiss)(x)`: human detection failure probability.
    pub p_h_miss: Probability,
    /// `P(Hmisclass)(x)`: human classification failure probability.
    pub p_h_misclass: Probability,
}

impl DetectionParams {
    /// Creates the parameter triple.
    #[must_use]
    pub fn new(p_mf: Probability, p_h_miss: Probability, p_h_misclass: Probability) -> Self {
        DetectionParams {
            p_mf,
            p_h_miss,
            p_h_misclass,
        }
    }

    /// The class-conditional system failure probability, the paper's eq. (1)
    /// under within-class conditional independence:
    ///
    /// ```text
    /// P(fail)(x) = PMf(x)·PHmiss(x)
    ///            + (1 − PMf(x)·PHmiss(x))·PHmisclass(x)
    /// ```
    #[must_use]
    pub fn class_failure(&self) -> Probability {
        let p_detect_fail = self.p_mf * self.p_h_miss;
        p_detect_fail.or_independent(self.p_h_misclass)
    }

    /// The class-conditional probability that *detection* fails (both miss).
    #[must_use]
    pub fn detection_failure(&self) -> Probability {
        self.p_mf * self.p_h_miss
    }
}

impl fmt::Display for DetectionParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PMf={:.4}, PHmiss={:.4}, PHmisclass={:.4}",
            self.p_mf.value(),
            self.p_h_miss.value(),
            self.p_h_misclass.value()
        )
    }
}

/// Decomposition of the detection-failure probability into the independent
/// product and the difficulty covariance — the paper's eq. (3):
///
/// ```text
/// P(detection failure) = PMf·PHmiss + cov(pMf(x), pHmiss(x))
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionCovariance {
    /// Marginal machine failure `PMf = E[pMf(x)]`.
    pub p_mf: Probability,
    /// Marginal human miss `PHmiss = E[pHmiss(x)]`.
    pub p_h_miss: Probability,
    /// The product `PMf·PHmiss` (what independence would predict).
    pub independent_product: f64,
    /// The covariance `cov(pMf(x), pHmiss(x))` over the profile.
    pub covariance: f64,
    /// The actual detection failure probability
    /// `E[pMf(x)·pHmiss(x)] = product + covariance`.
    pub detection_failure: Probability,
}

/// The paper's §3 "parallel detection" model (Fig. 2) over classes of
/// demands.
///
/// # Example
///
/// ```
/// use hmdiv_core::{ParallelDetectionModel, DetectionParams, DemandProfile};
/// use hmdiv_prob::Probability;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = |v| Probability::new(v).unwrap();
/// let model = ParallelDetectionModel::builder()
///     .class("easy", DetectionParams::new(p(0.07), p(0.10), p(0.05)))
///     .class("difficult", DetectionParams::new(p(0.41), p(0.60), p(0.30)))
///     .build()?;
/// let profile = DemandProfile::builder()
///     .class("easy", 0.8)
///     .class("difficult", 0.2)
///     .build()?;
/// let cov = model.detection_covariance(&profile)?;
/// // Shared difficulty: the covariance term is positive, so detection
/// // fails together more often than the marginals suggest.
/// assert!(cov.covariance > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParallelDetectionModel {
    table: BTreeMap<ClassId, DetectionParams>,
    /// Lazily-compiled dense evaluation form (derived state; see
    /// [`crate::compiled`]).
    #[serde(skip)]
    compiled: OnceLock<Arc<CompiledDetectionModel>>,
}

impl PartialEq for ParallelDetectionModel {
    fn eq(&self, other: &Self) -> bool {
        self.table == other.table
    }
}

impl ParallelDetectionModel {
    /// Starts building the model.
    #[must_use]
    pub fn builder() -> ParallelDetectionModelBuilder {
        ParallelDetectionModelBuilder {
            table: BTreeMap::new(),
            duplicate: None,
        }
    }

    /// The parameters for a class.
    ///
    /// # Errors
    ///
    /// [`ModelError::MissingClass`] if the class is absent.
    pub fn class(&self, class: &ClassId) -> Result<&DetectionParams, ModelError> {
        self.table
            .get(class)
            .ok_or_else(|| ModelError::MissingClass {
                class: class.clone(),
            })
    }

    /// Number of classes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty (never true for a built model).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Iterates `(class, params)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&ClassId, &DetectionParams)> {
        self.table.iter()
    }

    /// The class-conditional system failure probability (eq. 1).
    ///
    /// # Errors
    ///
    /// [`ModelError::MissingClass`] if the class is absent.
    pub fn class_failure(&self, class: &ClassId) -> Result<Probability, ModelError> {
        Ok(self.class(class)?.class_failure())
    }

    /// The dense compiled form of this model, compiled on first use and
    /// cached.
    #[must_use]
    pub fn compiled(&self) -> &Arc<CompiledDetectionModel> {
        self.compiled
            .get_or_init(|| Arc::new(CompiledDetectionModel::compile(self)))
    }

    /// The system failure probability over a demand profile, evaluated
    /// through the compiled form.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownClass`] if the profile mentions an absent class.
    pub fn system_failure(&self, profile: &DemandProfile) -> Result<Probability, ModelError> {
        let compiled = self.compiled();
        Ok(compiled.system_failure(&compiled.bind_profile(profile)?))
    }

    /// Decomposes the detection-failure probability into independent product
    /// plus covariance (eq. 3), using the Littlewood–Miller machinery.
    ///
    /// # Errors
    ///
    /// [`ModelError::MissingClass`] if the profile mentions an absent class.
    pub fn detection_covariance(
        &self,
        profile: &DemandProfile,
    ) -> Result<DetectionCovariance, ModelError> {
        // Check coverage first so the closure below cannot miss.
        for (class, _) in profile.iter() {
            self.class(class)?;
        }
        let report = littlewood_miller(
            profile.as_categorical(),
            |c| self.table[c].p_mf,
            |c| self.table[c].p_h_miss,
        );
        // Cross-check the covariance with the direct weighted computation.
        let weights: Vec<f64> = profile.iter().map(|(_, w)| w.value()).collect();
        let a: Vec<f64> = profile
            .iter()
            .map(|(c, _)| self.table[c].p_mf.value())
            .collect();
        let b: Vec<f64> = profile
            .iter()
            .map(|(c, _)| self.table[c].p_h_miss.value())
            .collect();
        let cov = weighted_covariance(&weights, &a, &b).map_err(ModelError::from)?;
        debug_assert!((cov - report.covariance).abs() < 1e-12);
        Ok(DetectionCovariance {
            p_mf: report.p_a,
            p_h_miss: report.p_b,
            independent_product: report.independent_product,
            covariance: cov,
            detection_failure: report.p_both,
        })
    }

    /// The Fig. 2 reliability block diagram for this model, with the
    /// conventional component names `Hdetect`, `Mdetect`, `Hclassify`.
    ///
    /// Evaluating this diagram with a class's parameters reproduces
    /// [`DetectionParams::class_failure`]; exposed so the structural view
    /// (path sets, importance measures) is available.
    #[must_use]
    pub fn fig2_diagram() -> Block {
        Block::series(vec![
            Block::parallel(vec![
                Block::component("Hdetect"),
                Block::component("Mdetect"),
            ]),
            Block::component("Hclassify"),
        ])
    }
}

impl fmt::Display for ParallelDetectionModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "parallel-detection model over {} classes:",
            self.table.len()
        )?;
        for (class, params) in &self.table {
            writeln!(
                f,
                "  {class}: {params} -> P(fail)(x)={:.4}",
                params.class_failure().value()
            )?;
        }
        Ok(())
    }
}

/// Builder for [`ParallelDetectionModel`].
#[derive(Debug, Clone, Default)]
pub struct ParallelDetectionModelBuilder {
    table: BTreeMap<ClassId, DetectionParams>,
    duplicate: Option<ClassId>,
}

impl ParallelDetectionModelBuilder {
    /// Adds parameters for a class.
    #[must_use]
    pub fn class(mut self, class: impl Into<ClassId>, params: DetectionParams) -> Self {
        let class = class.into();
        if self.table.insert(class.clone(), params).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(class);
        }
        self
    }

    /// Builds the model.
    ///
    /// # Errors
    ///
    /// * [`ModelError::Empty`] if no classes were added.
    /// * [`ModelError::DuplicateClass`] if a class was added twice.
    pub fn build(self) -> Result<ParallelDetectionModel, ModelError> {
        if let Some(class) = self.duplicate {
            return Err(ModelError::DuplicateClass { class });
        }
        if self.table.is_empty() {
            return Err(ModelError::Empty {
                context: "parallel-detection parameter table",
            });
        }
        Ok(ParallelDetectionModel {
            table: self.table,
            compiled: OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmdiv_rbd::reliability::system_failure;
    use hmdiv_rbd::RbdError;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn model() -> ParallelDetectionModel {
        ParallelDetectionModel::builder()
            .class("easy", DetectionParams::new(p(0.07), p(0.10), p(0.05)))
            .class("difficult", DetectionParams::new(p(0.41), p(0.60), p(0.30)))
            .build()
            .unwrap()
    }

    fn trial() -> DemandProfile {
        DemandProfile::builder()
            .class("easy", 0.8)
            .class("difficult", 0.2)
            .build()
            .unwrap()
    }

    #[test]
    fn class_failure_matches_equation1() {
        let cp = DetectionParams::new(p(0.41), p(0.6), p(0.3));
        let detect_fail = 0.41 * 0.6;
        let expected = detect_fail + (1.0 - detect_fail) * 0.3;
        assert!((cp.class_failure().value() - expected).abs() < 1e-12);
        assert!((cp.detection_failure().value() - detect_fail).abs() < 1e-12);
    }

    #[test]
    fn class_failure_agrees_with_rbd_evaluation() {
        // The closed form must equal the Fig. 2 diagram evaluated with the
        // same probabilities — the model *is* that RBD.
        let cp = DetectionParams::new(p(0.41), p(0.6), p(0.3));
        let diagram = ParallelDetectionModel::fig2_diagram();
        let via_rbd = system_failure(&diagram, |name| -> Result<Probability, RbdError> {
            Ok(match name {
                "Mdetect" => cp.p_mf,
                "Hdetect" => cp.p_h_miss,
                "Hclassify" => cp.p_h_misclass,
                other => return Err(RbdError::UnknownComponent { name: other.into() }),
            })
        })
        .unwrap();
        assert!((via_rbd.value() - cp.class_failure().value()).abs() < 1e-12);
    }

    #[test]
    fn equation3_decomposition_reconciles() {
        let m = model();
        let cov = m.detection_covariance(&trial()).unwrap();
        assert!(
            (cov.detection_failure.value() - (cov.independent_product + cov.covariance)).abs()
                < 1e-12
        );
        // Shared difficulty → positive covariance → redundancy worth less.
        assert!(cov.covariance > 0.0);
        assert!(cov.detection_failure.value() > cov.independent_product);
    }

    #[test]
    fn diverse_machine_gives_negative_covariance() {
        // A machine tuned to be good exactly on the humanly-difficult cases.
        let m = ParallelDetectionModel::builder()
            .class("easy", DetectionParams::new(p(0.41), p(0.10), p(0.05)))
            .class("difficult", DetectionParams::new(p(0.07), p(0.60), p(0.30)))
            .build()
            .unwrap();
        let cov = m.detection_covariance(&trial()).unwrap();
        assert!(cov.covariance < 0.0);
        assert!(cov.detection_failure.value() < cov.independent_product);
    }

    #[test]
    fn system_failure_aggregates_classes() {
        let m = model();
        let expected = 0.8 * m.class_failure(&ClassId::new("easy")).unwrap().value()
            + 0.2 * m.class_failure(&ClassId::new("difficult")).unwrap().value();
        assert!((m.system_failure(&trial()).unwrap().value() - expected).abs() < 1e-12);
    }

    #[test]
    fn missing_class_errors() {
        let m = model();
        let profile = DemandProfile::builder().class("odd", 1.0).build().unwrap();
        // Compiled-layer resolution reports the unified UnknownClass…
        assert!(matches!(
            m.system_failure(&profile),
            Err(ModelError::UnknownClass { .. })
        ));
        // …while direct table lookups keep MissingClass.
        assert!(matches!(
            m.detection_covariance(&profile),
            Err(ModelError::MissingClass { .. })
        ));
    }

    #[test]
    fn builder_validation() {
        assert!(matches!(
            ParallelDetectionModel::builder().build(),
            Err(ModelError::Empty { .. })
        ));
        let dp = DetectionParams::new(p(0.1), p(0.1), p(0.1));
        assert!(matches!(
            ParallelDetectionModel::builder()
                .class("a", dp)
                .class("a", dp)
                .build(),
            Err(ModelError::DuplicateClass { .. })
        ));
    }

    #[test]
    fn zero_misclassification_reduces_to_pure_detection() {
        let cp = DetectionParams::new(p(0.2), p(0.5), Probability::ZERO);
        assert!((cp.class_failure().value() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn display_lists_classes() {
        assert!(model().to_string().contains("difficult"));
    }
}
