use std::error::Error;
use std::fmt;

use hmdiv_prob::ProbError;

use crate::ClassId;

/// Error type for model construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A class referenced by a profile or scenario has no parameters.
    MissingClass {
        /// The class without parameters.
        class: ClassId,
    },
    /// A class name could not be resolved against a [`ClassUniverse`] — the
    /// unified mismatched-universe error of the compiled evaluation layer
    /// (profile class absent from the model, or model class absent from the
    /// profile).
    ///
    /// [`ClassUniverse`]: crate::ClassUniverse
    UnknownClass {
        /// The unresolvable class.
        class: ClassId,
    },
    /// A profile mentions no classes, or a parameter table is empty.
    Empty {
        /// What was empty.
        context: &'static str,
    },
    /// Duplicate class in a builder.
    DuplicateClass {
        /// The class added twice.
        class: ClassId,
    },
    /// A serialized class universe failed its integrity check: names out of
    /// interning order, duplicated, or a content-hash mismatch between two
    /// universes that were expected to share an index space.
    UniverseMismatch {
        /// What diverged.
        detail: String,
    },
    /// An improvement factor or other scale was invalid.
    InvalidFactor {
        /// The offending value.
        value: f64,
        /// What the factor was for.
        context: &'static str,
    },
    /// An underlying probability computation failed.
    Prob(ProbError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::MissingClass { class } => {
                write!(f, "no parameters for demand class `{class}`")
            }
            ModelError::UnknownClass { class } => {
                write!(
                    f,
                    "demand class `{class}` is not in the model's class universe"
                )
            }
            ModelError::Empty { context } => write!(f, "{context} must not be empty"),
            ModelError::UniverseMismatch { detail } => {
                write!(f, "class universe mismatch: {detail}")
            }
            ModelError::DuplicateClass { class } => {
                write!(f, "demand class `{class}` specified more than once")
            }
            ModelError::InvalidFactor { value, context } => {
                write!(f, "invalid {context}: {value}")
            }
            ModelError::Prob(e) => write!(f, "probability error: {e}"),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Prob(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProbError> for ModelError {
    fn from(e: ProbError) -> Self {
        ModelError::Prob(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errors = [
            ModelError::MissingClass {
                class: ClassId::new("difficult"),
            },
            ModelError::UnknownClass {
                class: ClassId::new("odd"),
            },
            ModelError::Empty {
                context: "demand profile",
            },
            ModelError::UniverseMismatch {
                detail: "2 classes vs 1".into(),
            },
            ModelError::DuplicateClass {
                class: ClassId::new("easy"),
            },
            ModelError::InvalidFactor {
                value: -2.0,
                context: "improvement factor",
            },
            ModelError::Prob(ProbError::InvalidConfidence { level: 0.0 }),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn source_chains_prob_errors() {
        let e = ModelError::from(ProbError::Empty { context: "weights" });
        assert!(e.source().is_some());
        assert!(ModelError::Empty { context: "x" }.source().is_none());
    }
}
