//! Extrapolation-validity advice.
//!
//! The paper is explicit that its clear-box predictions are trustworthy
//! only under conditions: classes must be homogeneous, parameter changes
//! small enough not to trigger reader adaptation ("we should expect this
//! figure only to be a good guide given small changes of PMf"), and the
//! target conditions not too far from the measured ones. This module turns
//! those prose caveats into machine-checked warnings attached to a
//! prediction: an analyst gets not just a number but the list of modelling
//! assumptions the number leans on.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::extrapolate::Scenario;
use crate::{DemandProfile, ModelError, SequentialModel};

/// One warning about an extrapolation's validity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Warning {
    /// The target demand profile differs substantially from the measured
    /// one (total-variation distance above threshold): per-class parameters
    /// may not transfer if classes are not truly homogeneous (§5 item 1,
    /// §6.2 caveat).
    ProfileShift {
        /// Total-variation distance between the profiles.
        total_variation: f64,
    },
    /// A class's machine failure probability changes by a large factor:
    /// readers may adapt (complacency / distrust), invalidating the fixed
    /// conditionals (§5 item 4, §6.1 "t may not remain constant").
    LargeMachineChange {
        /// The class affected.
        class: String,
        /// Ratio `new PMf / old PMf` (0 when eliminated).
        ratio: f64,
    },
    /// A large machine change hits a class with a big coherence index: the
    /// prediction is maximally sensitive to the no-adaptation assumption
    /// there.
    AdaptationSensitive {
        /// The class affected.
        class: String,
        /// Its coherence index `t(x)`.
        coherence_index: f64,
    },
    /// The scenario changes reader parameters outright — the model cannot
    /// say where those new values would come from; they must be measured,
    /// not assumed (§5 item 2).
    ReaderChangeUnvalidated {
        /// The class affected.
        class: String,
    },
    /// A class carries extreme probability mass (`p(x)` above threshold)
    /// while its parameters were necessarily estimated from the *other*
    /// profile's case counts — estimation precision may not follow the new
    /// importance.
    WeightConcentration {
        /// The class affected.
        class: String,
        /// Its weight in the target profile.
        weight: f64,
    },
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Warning::ProfileShift { total_variation } => write!(
                f,
                "target profile is far from the measured one (TV distance {total_variation:.2}): class-homogeneity is load-bearing"
            ),
            Warning::LargeMachineChange { class, ratio } => write!(
                f,
                "machine failure probability on `{class}` changes by factor {ratio:.2}: readers may adapt"
            ),
            Warning::AdaptationSensitive { class, coherence_index } => write!(
                f,
                "`{class}` has t(x) = {coherence_index:.2} and a large machine change: prediction is sensitive to the no-adaptation assumption"
            ),
            Warning::ReaderChangeUnvalidated { class } => write!(
                f,
                "scenario sets reader conditionals on `{class}` by fiat: those values need measurement"
            ),
            Warning::WeightConcentration { class, weight } => write!(
                f,
                "`{class}` carries {:.0}% of the target profile: its estimation precision dominates",
                weight * 100.0
            ),
        }
    }
}

/// Thresholds for the checks; [`Thresholds::default`] mirrors the paper's
/// qualitative guidance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// TV distance above which a profile shift is flagged.
    pub profile_shift_tv: f64,
    /// Machine-change ratio beyond which adaptation is flagged (flags both
    /// `ratio > x` and `ratio < 1/x`).
    pub machine_change_factor: f64,
    /// Coherence-index magnitude that makes a machine change
    /// adaptation-sensitive.
    pub sensitive_coherence: f64,
    /// Target-profile weight above which concentration is flagged.
    pub concentration_weight: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            profile_shift_tv: 0.15,
            machine_change_factor: 3.0,
            sensitive_coherence: 0.3,
            concentration_weight: 0.7,
        }
    }
}

/// Audits a scenario-based extrapolation and returns the list of warnings
/// (empty = all checks passed).
///
/// `measured_profile` is where the parameters came from;
/// `target_profile` is where the prediction applies.
///
/// # Errors
///
/// * [`ModelError::MissingClass`] on model/profile mismatches.
/// * Scenario application errors.
///
/// # Example
///
/// ```
/// use hmdiv_core::advice::{audit_extrapolation, Thresholds, Warning};
/// use hmdiv_core::extrapolate::Scenario;
/// use hmdiv_core::{paper, ClassId};
///
/// # fn main() -> Result<(), hmdiv_core::ModelError> {
/// // The paper's own table-3 scenario trips the §6.1 adaptation caveat.
/// let warnings = audit_extrapolation(
///     &paper::example_model()?,
///     &Scenario::new().improve_machine(ClassId::new("difficult"), 10.0),
///     &paper::trial_profile()?,
///     &paper::field_profile()?,
///     &Thresholds::default(),
/// )?;
/// assert!(warnings.iter().any(|w| matches!(w, Warning::AdaptationSensitive { .. })));
/// # Ok(())
/// # }
/// ```
pub fn audit_extrapolation(
    base: &SequentialModel,
    scenario: &Scenario,
    measured_profile: &DemandProfile,
    target_profile: &DemandProfile,
    thresholds: &Thresholds,
) -> Result<Vec<Warning>, ModelError> {
    let mut warnings = Vec::new();
    // Profile shift (only comparable when the class sets match positionally).
    if let Ok(tv) = measured_profile.total_variation(target_profile) {
        if tv > thresholds.profile_shift_tv {
            warnings.push(Warning::ProfileShift {
                total_variation: tv,
            });
        }
    } else {
        // Different class sets are the maximal shift.
        warnings.push(Warning::ProfileShift {
            total_variation: 1.0,
        });
    }
    let after = scenario.apply(base)?;
    for (class, weight) in target_profile.iter() {
        let old = base.params().class(class)?;
        let new = after.params().class(class)?;
        let old_mf = old.p_mf().value();
        let new_mf = new.p_mf().value();
        if old_mf > 0.0 {
            let ratio = new_mf / old_mf;
            let factor = thresholds.machine_change_factor;
            if ratio > factor || ratio < 1.0 / factor {
                warnings.push(Warning::LargeMachineChange {
                    class: class.name().to_owned(),
                    ratio,
                });
                if new.coherence_index().abs() > thresholds.sensitive_coherence {
                    warnings.push(Warning::AdaptationSensitive {
                        class: class.name().to_owned(),
                        coherence_index: new.coherence_index(),
                    });
                }
            }
        }
        if old.p_hf_given_ms() != new.p_hf_given_ms() || old.p_hf_given_mf() != new.p_hf_given_mf()
        {
            warnings.push(Warning::ReaderChangeUnvalidated {
                class: class.name().to_owned(),
            });
        }
        if weight.value() > thresholds.concentration_weight {
            warnings.push(Warning::WeightConcentration {
                class: class.name().to_owned(),
                weight: weight.value(),
            });
        }
    }
    Ok(warnings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptation::AdaptationResponse;
    use crate::{paper, ClassId};
    use hmdiv_prob::Probability;

    fn defaults() -> Thresholds {
        Thresholds::default()
    }

    #[test]
    fn paper_table3_difficult_scenario_is_flagged_for_adaptation() {
        // ×10 machine improvement on a high-t class: exactly the §6.1
        // caveat.
        let base = paper::example_model().unwrap();
        let scenario = Scenario::new().improve_machine(ClassId::new("difficult"), 10.0);
        let warnings = audit_extrapolation(
            &base,
            &scenario,
            &paper::trial_profile().unwrap(),
            &paper::field_profile().unwrap(),
            &defaults(),
        )
        .unwrap();
        assert!(warnings.iter().any(
            |w| matches!(w, Warning::LargeMachineChange { class, .. } if class == "difficult")
        ));
        assert!(warnings.iter().any(
            |w| matches!(w, Warning::AdaptationSensitive { class, .. } if class == "difficult")
        ));
        // The 90%-easy field profile triggers the concentration check.
        assert!(warnings
            .iter()
            .any(|w| matches!(w, Warning::WeightConcentration { class, .. } if class == "easy")));
    }

    #[test]
    fn small_changes_pass_quietly() {
        let base = paper::example_model().unwrap();
        let scenario = Scenario::new().improve_machine(ClassId::new("easy"), 1.5);
        // Same profile both sides, easy class below concentration only if
        // threshold raised.
        let mut th = defaults();
        th.concentration_weight = 0.95;
        let warnings = audit_extrapolation(
            &base,
            &scenario,
            &paper::trial_profile().unwrap(),
            &paper::trial_profile().unwrap(),
            &th,
        )
        .unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn profile_shift_flagged_at_distance() {
        let base = paper::example_model().unwrap();
        let trial = paper::trial_profile().unwrap();
        let skewed = DemandProfile::builder()
            .class("easy", 0.5)
            .class("difficult", 0.5)
            .build()
            .unwrap();
        let warnings =
            audit_extrapolation(&base, &Scenario::new(), &trial, &skewed, &defaults()).unwrap();
        assert!(warnings.iter().any(
            |w| matches!(w, Warning::ProfileShift { total_variation } if *total_variation > 0.25)
        ));
    }

    #[test]
    fn reader_fiat_changes_flagged() {
        let base = paper::example_model().unwrap();
        let p = |v: f64| Probability::new(v).unwrap();
        let scenario = Scenario::new().set_reader(ClassId::new("easy"), p(0.1), p(0.2));
        let warnings = audit_extrapolation(
            &base,
            &scenario,
            &paper::trial_profile().unwrap(),
            &paper::trial_profile().unwrap(),
            &defaults(),
        )
        .unwrap();
        assert!(warnings
            .iter()
            .any(|w| matches!(w, Warning::ReaderChangeUnvalidated { class } if class == "easy")));
    }

    #[test]
    fn adaptation_coupled_scenarios_flag_reader_changes_too() {
        // When the scenario itself couples reader parameters to the machine
        // change, the audit reports the reader movement — by design: the
        // adapted values are a model, not a measurement.
        let base = paper::example_model().unwrap();
        let scenario = Scenario::new()
            .improve_machine(ClassId::new("difficult"), 10.0)
            .with_adaptation(AdaptationResponse::Complacency { strength: 0.5 });
        let warnings = audit_extrapolation(
            &base,
            &scenario,
            &paper::trial_profile().unwrap(),
            &paper::trial_profile().unwrap(),
            &defaults(),
        )
        .unwrap();
        assert!(warnings.iter().any(
            |w| matches!(w, Warning::ReaderChangeUnvalidated { class } if class == "difficult")
        ));
    }

    #[test]
    fn warnings_display_nonempty() {
        let all = [
            Warning::ProfileShift {
                total_variation: 0.3,
            },
            Warning::LargeMachineChange {
                class: "x".into(),
                ratio: 0.1,
            },
            Warning::AdaptationSensitive {
                class: "x".into(),
                coherence_index: 0.5,
            },
            Warning::ReaderChangeUnvalidated { class: "x".into() },
            Warning::WeightConcentration {
                class: "x".into(),
                weight: 0.9,
            },
        ];
        for w in all {
            assert!(!w.to_string().is_empty());
        }
    }

    #[test]
    fn disjoint_class_sets_are_maximal_shift() {
        let base = paper::example_model().unwrap();
        let trial = paper::trial_profile().unwrap();
        let other = DemandProfile::builder().class("easy", 1.0).build().unwrap();
        let warnings =
            audit_extrapolation(&base, &Scenario::new(), &trial, &other, &defaults()).unwrap();
        assert!(warnings.iter().any(
            |w| matches!(w, Warning::ProfileShift { total_variation } if *total_variation == 1.0)
        ));
    }
}
