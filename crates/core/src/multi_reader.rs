//! Multi-reader configurations (§7): double reading, two readers + CADT,
//! arbitration, and lower-qualified readers assisted by a CADT.
//!
//! UK screening practice uses a second reader; the paper's conclusions name
//! "two readers assisted by a CADT, or less qualified readers assisted by
//! CADTs" as the configurations to model next. Here readers fail
//! *conditionally independently given the class and the machine outcome* —
//! the same conditioning discipline as the single-reader sequential model,
//! so shared case difficulty still correlates their failures at the
//! aggregate level.
//!
//! Failure semantics are false negatives: a reader "fails" when they decide
//! not to recall a cancer case.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};

use hmdiv_prob::Probability;

use crate::compiled::CompiledProfile;
use crate::{ClassId, ClassUniverse, DemandProfile, ModelError};

/// A reader's skill: per class, the failure probabilities conditional on
/// machine success and failure.
///
/// For *unaided* configurations, conditionals are irrelevant and equal: use
/// [`ReaderSkill::unaided_from`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReaderSkill {
    table: BTreeMap<ClassId, (Probability, Probability)>,
}

impl ReaderSkill {
    /// Starts building a reader skill table.
    #[must_use]
    pub fn builder() -> ReaderSkillBuilder {
        ReaderSkillBuilder::default()
    }

    /// A reader unaffected by the machine: both conditionals equal the given
    /// per-class unaided failure probability.
    ///
    /// # Errors
    ///
    /// [`ModelError::Empty`] if no classes are given.
    pub fn unaided_from(
        classes: impl IntoIterator<Item = (ClassId, Probability)>,
    ) -> Result<Self, ModelError> {
        let table: BTreeMap<ClassId, (Probability, Probability)> =
            classes.into_iter().map(|(c, p)| (c, (p, p))).collect();
        if table.is_empty() {
            return Err(ModelError::Empty {
                context: "reader skill table",
            });
        }
        Ok(ReaderSkill { table })
    }

    /// `(PHf|Ms, PHf|Mf)` for a class.
    ///
    /// # Errors
    ///
    /// [`ModelError::MissingClass`] if the class is absent.
    pub fn conditionals(&self, class: &ClassId) -> Result<(Probability, Probability), ModelError> {
        self.table
            .get(class)
            .copied()
            .ok_or_else(|| ModelError::MissingClass {
                class: class.clone(),
            })
    }
}

/// Builder for [`ReaderSkill`].
#[derive(Debug, Clone, Default)]
pub struct ReaderSkillBuilder {
    table: BTreeMap<ClassId, (Probability, Probability)>,
}

impl ReaderSkillBuilder {
    /// Adds a class with `(PHf|Ms, PHf|Mf)`.
    #[must_use]
    pub fn class(
        mut self,
        class: impl Into<ClassId>,
        p_hf_given_ms: Probability,
        p_hf_given_mf: Probability,
    ) -> Self {
        self.table
            .insert(class.into(), (p_hf_given_ms, p_hf_given_mf));
        self
    }

    /// Builds the skill table.
    ///
    /// # Errors
    ///
    /// [`ModelError::Empty`] if no classes were added.
    pub fn build(self) -> Result<ReaderSkill, ModelError> {
        if self.table.is_empty() {
            return Err(ModelError::Empty {
                context: "reader skill table",
            });
        }
        Ok(ReaderSkill { table: self.table })
    }
}

/// How multiple readers' decisions combine into the system decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum CombinationRule {
    /// Only the first reader decides.
    Single,
    /// Recall if *any* reader recalls (UK double-reading "unilateral
    /// recall"): the system misses a cancer only if every reader misses it.
    EitherRecalls,
    /// Recall only if *all* readers recall (consensus): any single miss
    /// loses the cancer. Lowers false positives at the cost of false
    /// negatives.
    Consensus,
    /// Two readers; on disagreement a third arbiter decides. Standard UK
    /// practice variant ("arbitration"/"consensus review").
    Arbitrated {
        /// The arbiter's skill.
        arbiter: ReaderSkill,
    },
}

impl fmt::Display for CombinationRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CombinationRule::Single => write!(f, "single"),
            CombinationRule::EitherRecalls => write!(f, "either-recalls"),
            CombinationRule::Consensus => write!(f, "consensus"),
            CombinationRule::Arbitrated { .. } => write!(f, "arbitrated"),
        }
    }
}

/// A reading team: machine + one or more readers + a combination rule.
///
/// To model an *unaided* team, set every class's machine failure to
/// [`Probability::ONE`] and give readers equal conditionals (the "machine
/// failed" branch is then the readers' unaided behaviour).
///
/// # Example
///
/// ```
/// use hmdiv_core::multi_reader::{ReaderSkill, CombinationRule, TeamModel};
/// use hmdiv_core::{ClassId, DemandProfile};
/// use hmdiv_prob::Probability;
///
/// # fn main() -> Result<(), hmdiv_core::ModelError> {
/// let p = |v| Probability::new(v).unwrap();
/// let reader = ReaderSkill::builder()
///     .class("easy", p(0.14), p(0.18))
///     .class("difficult", p(0.4), p(0.9))
///     .build()?;
/// let team = TeamModel::builder()
///     .machine("easy", p(0.07))
///     .machine("difficult", p(0.41))
///     .reader(reader.clone())
///     .reader(reader)
///     .rule(CombinationRule::EitherRecalls)
///     .build()?;
/// let profile = DemandProfile::builder()
///     .class("easy", 0.9).class("difficult", 0.1).build()?;
/// // Two CADT-assisted readers beat one (0.189) by a wide margin.
/// assert!(team.system_failure(&profile)?.value() < 0.189);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TeamModel {
    machine: BTreeMap<ClassId, Probability>,
    readers: Vec<ReaderSkill>,
    rule: CombinationRule,
    /// Lazily interned machine-class universe; derived state, excluded from
    /// equality and serialisation.
    #[serde(skip)]
    universe: OnceLock<Arc<ClassUniverse>>,
}

impl PartialEq for TeamModel {
    fn eq(&self, other: &Self) -> bool {
        self.machine == other.machine && self.readers == other.readers && self.rule == other.rule
    }
}

impl TeamModel {
    /// Starts building a team.
    #[must_use]
    pub fn builder() -> TeamModelBuilder {
        TeamModelBuilder::default()
    }

    /// The interned universe of the machine table's classes. Built on first
    /// use and cached; cheap to call afterwards.
    pub fn universe(&self) -> &Arc<ClassUniverse> {
        self.universe
            .get_or_init(|| Arc::new(ClassUniverse::from_names(self.machine.keys().cloned())))
    }

    /// The class-conditional false-negative probability of the team.
    ///
    /// # Errors
    ///
    /// [`ModelError::MissingClass`] if the class is absent from the machine
    /// table or any reader's table.
    pub fn class_failure(&self, class: &ClassId) -> Result<Probability, ModelError> {
        let p_mf = self
            .machine
            .get(class)
            .copied()
            .ok_or_else(|| ModelError::MissingClass {
                class: class.clone(),
            })?;
        // Condition on the machine outcome; readers are independent given it.
        let given_mf = self.team_failure_given(class, true)?;
        let given_ms = self.team_failure_given(class, false)?;
        Ok(given_mf.mix(given_ms, p_mf))
    }

    fn team_failure_given(
        &self,
        class: &ClassId,
        machine_failed: bool,
    ) -> Result<Probability, ModelError> {
        let pick = |skill: &ReaderSkill| -> Result<f64, ModelError> {
            let (ms, mf) = skill.conditionals(class)?;
            Ok(if machine_failed {
                mf.value()
            } else {
                ms.value()
            })
        };
        let p = match &self.rule {
            CombinationRule::Single => pick(&self.readers[0])?,
            CombinationRule::EitherRecalls => {
                // FN iff all readers fail.
                self.readers.iter().map(&pick).product::<Result<f64, _>>()?
            }
            CombinationRule::Consensus => {
                // FN iff at least one reader fails.
                1.0 - self
                    .readers
                    .iter()
                    .map(|r| pick(r).map(|p| 1.0 - p))
                    .product::<Result<f64, _>>()?
            }
            CombinationRule::Arbitrated { arbiter } => {
                let p1 = pick(&self.readers[0])?;
                let p2 = pick(&self.readers[1])?;
                let pa = pick(arbiter)?;
                // FN = both miss, or they disagree and the arbiter misses.
                p1 * p2 + (p1 * (1.0 - p2) + (1.0 - p1) * p2) * pa
            }
        };
        Ok(Probability::clamped(p))
    }

    /// The team's false-negative probability over a demand profile.
    ///
    /// The profile is resolved against the machine table's interned
    /// [`ClassUniverse`] up front, so a profile/table mismatch surfaces as a
    /// typed error before any per-class arithmetic runs.
    ///
    /// # Errors
    ///
    /// * [`ModelError::UnknownClass`] if the profile mentions a class absent
    ///   from the machine table.
    /// * [`ModelError::MissingClass`] if a reader's table misses a class
    ///   (see [`TeamModel::class_failure`]).
    pub fn system_failure(&self, profile: &DemandProfile) -> Result<Probability, ModelError> {
        let universe = Arc::clone(self.universe());
        let bound = CompiledProfile::bind(&universe, profile)?;
        let mut total = 0.0;
        for (idx, weight) in bound.iter() {
            total += weight * self.class_failure(universe.class(idx))?.value();
        }
        Ok(Probability::clamped(total))
    }

    /// The combination rule.
    #[must_use]
    pub fn rule(&self) -> &CombinationRule {
        &self.rule
    }

    /// Number of readers.
    #[must_use]
    pub fn reader_count(&self) -> usize {
        self.readers.len()
    }
}

/// The probability that *both* of two readers fail, when their failures
/// have Pearson correlation `rho` at failure probabilities `p1`, `p2`:
///
/// ```text
/// P(both) = p1·p2 + rho·√(p1(1−p1)·p2(1−p2))
/// ```
///
/// The result is clamped into the Fréchet bounds
/// `[max(0, p1+p2−1), min(p1, p2)]`, so any `rho ∈ [−1, 1]` yields a valid
/// joint probability.
///
/// This models *residual* dependence within a class — the paper's framework
/// assumes classes are refined until conditionally independent, but real
/// classifications stop early, leaving shared case difficulty that
/// correlates two readers' failures on the same film.
#[must_use]
pub fn pair_failure_with_correlation(p1: Probability, p2: Probability, rho: f64) -> Probability {
    let (p1, p2) = (p1.value(), p2.value());
    let joint = p1 * p2 + rho * (p1 * (1.0 - p1) * p2 * (1.0 - p2)).sqrt();
    let lower = (p1 + p2 - 1.0).max(0.0);
    let upper = p1.min(p2);
    Probability::clamped(joint.clamp(lower, upper))
}

impl TeamModel {
    /// The team's false-negative probability over a profile when the two
    /// readers' failures are correlated with coefficient `rho` *within each
    /// (class, machine-outcome) stratum*.
    ///
    /// Supported for exactly two readers under
    /// [`CombinationRule::EitherRecalls`] or [`CombinationRule::Consensus`]
    /// (arbitration needs the full joint distribution, not just the pair
    /// probability). `rho = 0` reproduces [`TeamModel::system_failure`].
    ///
    /// # Errors
    ///
    /// * [`ModelError::InvalidFactor`] if `rho` is outside `[-1, 1]`, the
    ///   team does not have exactly two readers, or the rule is
    ///   unsupported.
    /// * [`ModelError::UnknownClass`] if the profile mentions a class absent
    ///   from the machine table; [`ModelError::MissingClass`] if a reader's
    ///   table misses a class.
    pub fn system_failure_correlated(
        &self,
        profile: &DemandProfile,
        rho: f64,
    ) -> Result<Probability, ModelError> {
        if rho.is_nan() || !(-1.0..=1.0).contains(&rho) {
            return Err(ModelError::InvalidFactor {
                value: rho,
                context: "reader correlation",
            });
        }
        if self.readers.len() != 2 {
            return Err(ModelError::InvalidFactor {
                value: self.readers.len() as f64,
                context: "reader count for correlated evaluation (needs exactly 2)",
            });
        }
        let either = match self.rule {
            CombinationRule::EitherRecalls => true,
            CombinationRule::Consensus => false,
            _ => {
                return Err(ModelError::InvalidFactor {
                    value: f64::NAN,
                    context: "combination rule for correlated evaluation",
                })
            }
        };
        let universe = Arc::clone(self.universe());
        let bound = CompiledProfile::bind(&universe, profile)?;
        let mut total = 0.0;
        for (idx, weight) in bound.iter() {
            let class = universe.class(idx);
            let p_mf =
                self.machine
                    .get(class)
                    .copied()
                    .ok_or_else(|| ModelError::MissingClass {
                        class: class.clone(),
                    })?;
            let mut class_failure = 0.0;
            for (machine_failed, p_branch) in
                [(true, p_mf.value()), (false, p_mf.complement().value())]
            {
                let (ms1, mf1) = self.readers[0].conditionals(class)?;
                let (ms2, mf2) = self.readers[1].conditionals(class)?;
                let p1 = if machine_failed { mf1 } else { ms1 };
                let p2 = if machine_failed { mf2 } else { ms2 };
                let both = pair_failure_with_correlation(p1, p2, rho).value();
                let fail = if either {
                    both // FN iff both miss
                } else {
                    // FN iff at least one misses.
                    p1.value() + p2.value() - both
                };
                class_failure += p_branch * fail;
            }
            total += weight * class_failure;
        }
        Ok(Probability::clamped(total))
    }
}

/// Builder for [`TeamModel`].
#[derive(Debug, Clone, Default)]
pub struct TeamModelBuilder {
    machine: BTreeMap<ClassId, Probability>,
    readers: Vec<ReaderSkill>,
    rule: Option<CombinationRule>,
}

impl TeamModelBuilder {
    /// Sets the machine's failure probability for a class.
    #[must_use]
    pub fn machine(mut self, class: impl Into<ClassId>, p_mf: Probability) -> Self {
        self.machine.insert(class.into(), p_mf);
        self
    }

    /// Adds a reader.
    #[must_use]
    pub fn reader(mut self, skill: ReaderSkill) -> Self {
        self.readers.push(skill);
        self
    }

    /// Sets the combination rule (default [`CombinationRule::Single`]).
    #[must_use]
    pub fn rule(mut self, rule: CombinationRule) -> Self {
        self.rule = Some(rule);
        self
    }

    /// Builds the team.
    ///
    /// # Errors
    ///
    /// * [`ModelError::Empty`] if there is no machine table or no reader.
    /// * [`ModelError::InvalidFactor`] if the rule's reader-count
    ///   requirement is violated (`Arbitrated` needs exactly 2 readers,
    ///   `Single` at least 1, the others at least 2).
    pub fn build(self) -> Result<TeamModel, ModelError> {
        if self.machine.is_empty() {
            return Err(ModelError::Empty {
                context: "team machine table",
            });
        }
        if self.readers.is_empty() {
            return Err(ModelError::Empty {
                context: "team reader list",
            });
        }
        let rule = self.rule.unwrap_or(CombinationRule::Single);
        let n = self.readers.len();
        let ok = match &rule {
            CombinationRule::Single => n >= 1,
            CombinationRule::EitherRecalls | CombinationRule::Consensus => n >= 2,
            CombinationRule::Arbitrated { .. } => n == 2,
        };
        if !ok {
            return Err(ModelError::InvalidFactor {
                value: n as f64,
                context: "reader count for the chosen combination rule",
            });
        }
        Ok(TeamModel {
            machine: self.machine,
            readers: self.readers,
            rule,
            universe: OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn paper_reader() -> ReaderSkill {
        ReaderSkill::builder()
            .class("easy", p(0.14), p(0.18))
            .class("difficult", p(0.4), p(0.9))
            .build()
            .unwrap()
    }

    fn machine_table(b: TeamModelBuilder) -> TeamModelBuilder {
        b.machine("easy", p(0.07)).machine("difficult", p(0.41))
    }

    fn profile() -> DemandProfile {
        DemandProfile::builder()
            .class("easy", 0.9)
            .class("difficult", 0.1)
            .build()
            .unwrap()
    }

    #[test]
    fn single_reader_reproduces_sequential_model() {
        let team = machine_table(TeamModel::builder())
            .reader(paper_reader())
            .rule(CombinationRule::Single)
            .build()
            .unwrap();
        // Must equal the paper's field value 0.18902.
        assert!((team.system_failure(&profile()).unwrap().value() - 0.18902).abs() < 1e-12);
    }

    #[test]
    fn double_reading_beats_single() {
        let single = machine_table(TeamModel::builder())
            .reader(paper_reader())
            .build()
            .unwrap();
        let double = machine_table(TeamModel::builder())
            .reader(paper_reader())
            .reader(paper_reader())
            .rule(CombinationRule::EitherRecalls)
            .build()
            .unwrap();
        let s = single.system_failure(&profile()).unwrap();
        let d = double.system_failure(&profile()).unwrap();
        assert!(d < s, "{} vs {}", d.value(), s.value());
    }

    #[test]
    fn consensus_is_worse_than_single_for_fn() {
        // Consensus reduces FPs but *raises* FNs: any miss loses the case.
        let single = machine_table(TeamModel::builder())
            .reader(paper_reader())
            .build()
            .unwrap();
        let consensus = machine_table(TeamModel::builder())
            .reader(paper_reader())
            .reader(paper_reader())
            .rule(CombinationRule::Consensus)
            .build()
            .unwrap();
        assert!(
            consensus.system_failure(&profile()).unwrap()
                > single.system_failure(&profile()).unwrap()
        );
    }

    #[test]
    fn arbitration_between_either_and_consensus() {
        let either = machine_table(TeamModel::builder())
            .reader(paper_reader())
            .reader(paper_reader())
            .rule(CombinationRule::EitherRecalls)
            .build()
            .unwrap();
        let consensus = machine_table(TeamModel::builder())
            .reader(paper_reader())
            .reader(paper_reader())
            .rule(CombinationRule::Consensus)
            .build()
            .unwrap();
        let arbitrated = machine_table(TeamModel::builder())
            .reader(paper_reader())
            .reader(paper_reader())
            .rule(CombinationRule::Arbitrated {
                arbiter: paper_reader(),
            })
            .build()
            .unwrap();
        let e = either.system_failure(&profile()).unwrap();
        let c = consensus.system_failure(&profile()).unwrap();
        let a = arbitrated.system_failure(&profile()).unwrap();
        assert!(
            e <= a && a <= c,
            "{} <= {} <= {}",
            e.value(),
            a.value(),
            c.value()
        );
    }

    #[test]
    fn lower_qualified_pair_can_beat_one_expert() {
        // §7: "less qualified readers assisted by CADTs". Two weaker readers
        // with unilateral recall can beat one expert.
        let expert = paper_reader();
        let weaker = ReaderSkill::builder()
            .class("easy", p(0.25), p(0.32))
            .class("difficult", p(0.55), p(0.95))
            .build()
            .unwrap();
        let one_expert = machine_table(TeamModel::builder())
            .reader(expert)
            .build()
            .unwrap();
        let two_weaker = machine_table(TeamModel::builder())
            .reader(weaker.clone())
            .reader(weaker)
            .rule(CombinationRule::EitherRecalls)
            .build()
            .unwrap();
        assert!(
            two_weaker.system_failure(&profile()).unwrap()
                < one_expert.system_failure(&profile()).unwrap()
        );
    }

    #[test]
    fn unaided_team_via_machine_always_fails() {
        // Model an unaided reader: PMf = 1 everywhere, so only the |Mf
        // branch matters; set it to the unaided failure probability.
        let unaided = ReaderSkill::unaided_from([
            (ClassId::new("easy"), p(0.2)),
            (ClassId::new("difficult"), p(0.6)),
        ])
        .unwrap();
        let team = TeamModel::builder()
            .machine("easy", Probability::ONE)
            .machine("difficult", Probability::ONE)
            .reader(unaided)
            .build()
            .unwrap();
        let expected = 0.9 * 0.2 + 0.1 * 0.6;
        assert!((team.system_failure(&profile()).unwrap().value() - expected).abs() < 1e-12);
    }

    #[test]
    fn builder_validation() {
        assert!(TeamModel::builder().build().is_err());
        assert!(machine_table(TeamModel::builder()).build().is_err()); // no reader
                                                                       // Arbitrated needs exactly two readers.
        assert!(machine_table(TeamModel::builder())
            .reader(paper_reader())
            .rule(CombinationRule::Arbitrated {
                arbiter: paper_reader()
            })
            .build()
            .is_err());
        assert!(machine_table(TeamModel::builder())
            .reader(paper_reader())
            .rule(CombinationRule::EitherRecalls)
            .build()
            .is_err());
        assert!(ReaderSkill::builder().build().is_err());
        assert!(ReaderSkill::unaided_from([]).is_err());
    }

    #[test]
    fn missing_class_surfaces() {
        let team = machine_table(TeamModel::builder())
            .reader(paper_reader())
            .build()
            .unwrap();
        let bad = DemandProfile::builder()
            .class("ghost", 1.0)
            .build()
            .unwrap();
        // A profile class outside the machine table's universe is an
        // UnknownClass (the compiled-layer resolution error).
        assert!(matches!(
            team.system_failure(&bad),
            Err(ModelError::UnknownClass { .. })
        ));
        assert!(team.universe().contains("easy"));
        assert!(!team.universe().contains("ghost"));
    }

    #[test]
    fn pair_correlation_brackets_and_reduces() {
        let p1 = p(0.3);
        let p2 = p(0.5);
        // rho = 0 is independence.
        assert!((pair_failure_with_correlation(p1, p2, 0.0).value() - 0.15).abs() < 1e-12);
        // rho = 1 is the Fréchet upper bound min(p1, p2) when feasible.
        assert!((pair_failure_with_correlation(p1, p1, 1.0).value() - 0.3).abs() < 1e-12);
        // rho = −1 at complementary marginals reaches the lower bound.
        assert_eq!(
            pair_failure_with_correlation(p(0.5), p(0.5), -1.0),
            Probability::ZERO
        );
        // Monotone in rho.
        let lo = pair_failure_with_correlation(p1, p2, -0.5);
        let hi = pair_failure_with_correlation(p1, p2, 0.5);
        assert!(lo < hi);
    }

    #[test]
    fn correlated_zero_matches_independent_evaluation() {
        let team = machine_table(TeamModel::builder())
            .reader(paper_reader())
            .reader(paper_reader())
            .rule(CombinationRule::EitherRecalls)
            .build()
            .unwrap();
        let a = team.system_failure(&profile()).unwrap();
        let b = team.system_failure_correlated(&profile(), 0.0).unwrap();
        assert!((a.value() - b.value()).abs() < 1e-12);
    }

    #[test]
    fn positive_correlation_erodes_double_reading() {
        // Correlated misses are the enemy of 1-of-2 redundancy: the benefit
        // of the second reader shrinks as rho grows.
        let team = machine_table(TeamModel::builder())
            .reader(paper_reader())
            .reader(paper_reader())
            .rule(CombinationRule::EitherRecalls)
            .build()
            .unwrap();
        let mut last = 0.0;
        for rho in [0.0, 0.2, 0.5, 0.9] {
            let v = team
                .system_failure_correlated(&profile(), rho)
                .unwrap()
                .value();
            assert!(v >= last - 1e-12, "rho={rho}");
            last = v;
        }
        // At rho = 1 with identical readers, the pair degenerates to one
        // reader: the redundancy is worthless.
        let single = machine_table(TeamModel::builder())
            .reader(paper_reader())
            .build()
            .unwrap();
        let degenerate = team.system_failure_correlated(&profile(), 1.0).unwrap();
        assert!(
            (degenerate.value() - single.system_failure(&profile()).unwrap().value()).abs() < 1e-12
        );
    }

    #[test]
    fn correlation_helps_consensus() {
        // For consensus (all must recall), correlated failures REDUCE the FN
        // rate: P(at least one fails) shrinks as failures co-occur.
        let team = machine_table(TeamModel::builder())
            .reader(paper_reader())
            .reader(paper_reader())
            .rule(CombinationRule::Consensus)
            .build()
            .unwrap();
        let indep = team.system_failure_correlated(&profile(), 0.0).unwrap();
        let corr = team.system_failure_correlated(&profile(), 0.7).unwrap();
        assert!(corr < indep);
    }

    #[test]
    fn correlated_evaluation_validation() {
        let pair = machine_table(TeamModel::builder())
            .reader(paper_reader())
            .reader(paper_reader())
            .rule(CombinationRule::EitherRecalls)
            .build()
            .unwrap();
        assert!(pair.system_failure_correlated(&profile(), 1.5).is_err());
        assert!(pair
            .system_failure_correlated(&profile(), f64::NAN)
            .is_err());
        let single = machine_table(TeamModel::builder())
            .reader(paper_reader())
            .build()
            .unwrap();
        assert!(single.system_failure_correlated(&profile(), 0.2).is_err());
        let arbitrated = machine_table(TeamModel::builder())
            .reader(paper_reader())
            .reader(paper_reader())
            .rule(CombinationRule::Arbitrated {
                arbiter: paper_reader(),
            })
            .build()
            .unwrap();
        assert!(arbitrated
            .system_failure_correlated(&profile(), 0.2)
            .is_err());
    }

    #[test]
    fn rule_display() {
        assert_eq!(CombinationRule::Single.to_string(), "single");
        assert_eq!(CombinationRule::EitherRecalls.to_string(), "either-recalls");
    }
}
