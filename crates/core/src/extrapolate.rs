//! Trial-to-field extrapolation and what-if scenarios (§5).
//!
//! Eq. (8) "is the key to this kind of extrapolation": once per-class
//! parameters are estimated, changes in the conditions of use are
//! represented by changing parameter values —
//!
//! 1. a different demand profile (`p(x)`),
//! 2. different reader ability (`PHf|Ms(x)`, `PHf|Mf(x)`),
//! 3. reader behaviour evolving with experience of the CADT
//!    ([`AdaptationResponse`]),
//! 4. different machine reliability (`PMf(x)`): maintenance, film quality,
//!    algorithm tuning.
//!
//! A [`Scenario`] composes any of these changes; [`Scenario::apply`] yields
//! the predicted model, and [`Prediction`] packages the before/after system
//! failure probabilities.

use std::fmt;

use hmdiv_prob::Probability;

use crate::adaptation::AdaptationResponse;
use crate::{ClassId, DemandProfile, ModelError, SequentialModel};

/// One change to apply to a model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Change {
    /// Divide `PMf(x)` by `factor >= 1` for one class (the paper's
    /// "reduction by 10 of the failure probability").
    ImproveMachine {
        /// The class to improve.
        class: ClassId,
        /// The division factor.
        factor: f64,
    },
    /// Divide `PMf(x)` by `factor >= 1` for every class.
    ImproveMachineEverywhere {
        /// The division factor.
        factor: f64,
    },
    /// Set `PMf(x)` for one class outright (e.g. re-tuned algorithm).
    SetMachineFailure {
        /// The class to change.
        class: ClassId,
        /// The new machine failure probability.
        p_mf: Probability,
    },
    /// Replace the reader conditionals for one class (e.g. different
    /// training or a different reader population).
    SetReader {
        /// The class to change.
        class: ClassId,
        /// New `PHf|Ms(x)`.
        p_hf_given_ms: Probability,
        /// New `PHf|Mf(x)`.
        p_hf_given_mf: Probability,
    },
    /// Scale both reader conditionals for every class by `factor`
    /// (crude "better/worse reader cohort" knob); results are clamped to
    /// `[0, 1]`.
    ScaleReaderEverywhere {
        /// Multiplier on both conditionals.
        factor: f64,
    },
}

/// A composite what-if scenario: an ordered list of [`Change`]s plus an
/// optional [`AdaptationResponse`] applied after all machine changes.
///
/// # Example
///
/// The paper's table 3, right half (improve the CADT ×10 on difficult
/// cases), evaluated under the field profile:
///
/// ```
/// use hmdiv_core::{paper, extrapolate::Scenario, ClassId};
///
/// # fn main() -> Result<(), hmdiv_core::ModelError> {
/// let base = paper::example_model()?;
/// let field = paper::field_profile()?;
/// let prediction = Scenario::new()
///     .improve_machine(ClassId::new("difficult"), 10.0)
///     .predict(&base, &field)?;
/// assert!((prediction.after.value() - 0.17057).abs() < 1e-9);
/// assert!(prediction.improvement() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scenario {
    changes: Vec<Change>,
    adaptation: AdaptationResponse,
}

impl Scenario {
    /// An empty scenario (no changes).
    #[must_use]
    pub fn new() -> Self {
        Scenario::default()
    }

    /// Adds a machine improvement on one class.
    #[must_use]
    pub fn improve_machine(mut self, class: ClassId, factor: f64) -> Self {
        self.changes.push(Change::ImproveMachine { class, factor });
        self
    }

    /// Adds a uniform machine improvement.
    #[must_use]
    pub fn improve_machine_everywhere(mut self, factor: f64) -> Self {
        self.changes
            .push(Change::ImproveMachineEverywhere { factor });
        self
    }

    /// Sets the machine failure probability for one class.
    #[must_use]
    pub fn set_machine_failure(mut self, class: ClassId, p_mf: Probability) -> Self {
        self.changes.push(Change::SetMachineFailure { class, p_mf });
        self
    }

    /// Replaces the reader conditionals for one class.
    #[must_use]
    pub fn set_reader(
        mut self,
        class: ClassId,
        p_hf_given_ms: Probability,
        p_hf_given_mf: Probability,
    ) -> Self {
        self.changes.push(Change::SetReader {
            class,
            p_hf_given_ms,
            p_hf_given_mf,
        });
        self
    }

    /// Scales both reader conditionals everywhere.
    #[must_use]
    pub fn scale_reader_everywhere(mut self, factor: f64) -> Self {
        self.changes.push(Change::ScaleReaderEverywhere { factor });
        self
    }

    /// Sets the reader-adaptation response applied after machine changes.
    #[must_use]
    pub fn with_adaptation(mut self, adaptation: AdaptationResponse) -> Self {
        self.adaptation = adaptation;
        self
    }

    /// The changes in application order.
    #[must_use]
    pub fn changes(&self) -> &[Change] {
        &self.changes
    }

    /// The reader-adaptation response applied after the changes.
    #[must_use]
    pub fn adaptation(&self) -> &AdaptationResponse {
        &self.adaptation
    }

    /// Applies the scenario to a model, producing the predicted model.
    ///
    /// # Errors
    ///
    /// * [`ModelError::MissingClass`] if a change targets an absent class.
    /// * [`ModelError::InvalidFactor`] for invalid factors/strengths.
    pub fn apply(&self, base: &SequentialModel) -> Result<SequentialModel, ModelError> {
        self.adaptation.validate()?;
        let mut params = base.params().clone();
        for change in &self.changes {
            params = match change {
                Change::ImproveMachine { class, factor } => {
                    params.with_class_updated(class, |cp| cp.with_machine_improved(*factor))?
                }
                Change::ImproveMachineEverywhere { factor } => {
                    params.map_classes(|_, cp| cp.with_machine_improved(*factor))?
                }
                Change::SetMachineFailure { class, p_mf } => {
                    params.with_class_updated(class, |cp| Ok(cp.with_p_mf(*p_mf)))?
                }
                Change::SetReader {
                    class,
                    p_hf_given_ms,
                    p_hf_given_mf,
                } => params.with_class_updated(class, |cp| {
                    Ok(cp.with_reader(*p_hf_given_ms, *p_hf_given_mf))
                })?,
                Change::ScaleReaderEverywhere { factor } => {
                    if factor.is_nan() || *factor < 0.0 || factor.is_infinite() {
                        return Err(ModelError::InvalidFactor {
                            value: *factor,
                            context: "reader scale factor",
                        });
                    }
                    params.map_classes(|_, cp| {
                        Ok(cp.with_reader(
                            Probability::clamped(cp.p_hf_given_ms().value() * factor),
                            Probability::clamped(cp.p_hf_given_mf().value() * factor),
                        ))
                    })?
                }
            };
        }
        // Indirect effects: the reader adapts to the machine change.
        let adapted = params.map_classes(|class, cp| {
            let old = base.params().class(class)?;
            self.adaptation.apply(old.p_mf(), cp)
        })?;
        Ok(SequentialModel::new(adapted))
    }

    /// Applies the scenario and evaluates before/after failure probabilities
    /// under a profile.
    ///
    /// # Errors
    ///
    /// As [`Scenario::apply`], plus profile-coverage errors from evaluation.
    pub fn predict(
        &self,
        base: &SequentialModel,
        profile: &DemandProfile,
    ) -> Result<Prediction, ModelError> {
        let model = self.apply(base)?;
        let before = base.system_failure(profile)?;
        let after = model.system_failure(profile)?;
        Ok(Prediction {
            before,
            after,
            model,
        })
    }
}

/// The outcome of a scenario evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// System failure probability before the change.
    pub before: Probability,
    /// System failure probability after the change.
    pub after: Probability,
    /// The full predicted model (for further analysis).
    pub model: SequentialModel,
}

impl Prediction {
    /// Absolute reduction in failure probability (positive = better).
    #[must_use]
    pub fn improvement(&self) -> f64 {
        self.before.value() - self.after.value()
    }

    /// Relative reduction, `improvement / before`; `None` if `before` is 0.
    #[must_use]
    pub fn relative_improvement(&self) -> Option<f64> {
        (!self.before.is_zero()).then(|| self.improvement() / self.before.value())
    }
}

impl fmt::Display for Prediction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PHf {:.5} -> {:.5} (improvement {:+.5})",
            self.before.value(),
            self.after.value(),
            self.improvement()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    #[test]
    fn empty_scenario_is_identity() {
        let base = paper::example_model().unwrap();
        let field = paper::field_profile().unwrap();
        let pred = Scenario::new().predict(&base, &field).unwrap();
        assert_eq!(pred.before, pred.after);
        assert_eq!(pred.improvement(), 0.0);
    }

    #[test]
    fn paper_table3_via_scenarios() {
        let base = paper::example_model().unwrap();
        let trial = paper::trial_profile().unwrap();
        let field = paper::field_profile().unwrap();
        let easy = Scenario::new().improve_machine(ClassId::new("easy"), 10.0);
        let difficult = Scenario::new().improve_machine(ClassId::new("difficult"), 10.0);
        assert!(
            (easy.predict(&base, &trial).unwrap().after.value()
                - paper::published::TRIAL_FAILURE_IMPROVED_EASY)
                .abs()
                < 1e-9
        );
        assert!(
            (easy.predict(&base, &field).unwrap().after.value()
                - paper::published::FIELD_FAILURE_IMPROVED_EASY)
                .abs()
                < 1e-9
        );
        assert!(
            (difficult.predict(&base, &trial).unwrap().after.value()
                - paper::published::TRIAL_FAILURE_IMPROVED_DIFFICULT)
                .abs()
                < 1e-9
        );
        assert!(
            (difficult.predict(&base, &field).unwrap().after.value()
                - paper::published::FIELD_FAILURE_IMPROVED_DIFFICULT)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn changes_compose_in_order() {
        let base = paper::example_model().unwrap();
        let scenario = Scenario::new()
            .set_machine_failure(ClassId::new("easy"), p(0.5))
            .improve_machine(ClassId::new("easy"), 5.0);
        let model = scenario.apply(&base).unwrap();
        assert!((model.params().class_by_name("easy").unwrap().p_mf().value() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn set_reader_changes_conditionals() {
        let base = paper::example_model().unwrap();
        let scenario = Scenario::new().set_reader(ClassId::new("difficult"), p(0.3), p(0.7));
        let model = scenario.apply(&base).unwrap();
        let cp = model.params().class_by_name("difficult").unwrap();
        assert_eq!(cp.p_hf_given_ms(), p(0.3));
        assert_eq!(cp.p_hf_given_mf(), p(0.7));
        // Machine untouched.
        assert_eq!(cp.p_mf(), p(0.41));
    }

    #[test]
    fn scale_reader_everywhere_clamps() {
        let base = paper::example_model().unwrap();
        let model = Scenario::new()
            .scale_reader_everywhere(2.0)
            .apply(&base)
            .unwrap();
        let cp = model.params().class_by_name("difficult").unwrap();
        assert_eq!(cp.p_hf_given_mf(), Probability::ONE); // 1.8 clamped
        assert!((cp.p_hf_given_ms().value() - 0.8).abs() < 1e-12);
        assert!(Scenario::new()
            .scale_reader_everywhere(-1.0)
            .apply(&base)
            .is_err());
    }

    #[test]
    fn missing_class_rejected() {
        let base = paper::example_model().unwrap();
        let scenario = Scenario::new().improve_machine(ClassId::new("ghost"), 10.0);
        assert!(matches!(
            scenario.apply(&base),
            Err(ModelError::MissingClass { .. })
        ));
    }

    #[test]
    fn complacency_erodes_the_predicted_benefit() {
        // The paper's §6.1 caveat, quantified: with a complacent reader the
        // ×10 improvement on difficult cases buys less than the naive model
        // predicts.
        let base = paper::example_model().unwrap();
        let field = paper::field_profile().unwrap();
        let naive = Scenario::new()
            .improve_machine(ClassId::new("difficult"), 10.0)
            .predict(&base, &field)
            .unwrap();
        let complacent = Scenario::new()
            .improve_machine(ClassId::new("difficult"), 10.0)
            .with_adaptation(AdaptationResponse::Complacency { strength: 0.5 })
            .predict(&base, &field)
            .unwrap();
        assert!(complacent.improvement() < naive.improvement());
        assert!(
            complacent.improvement() > 0.0,
            "still an improvement, just smaller"
        );
    }

    #[test]
    fn vigilance_softens_a_degradation() {
        let base = paper::example_model().unwrap();
        let field = paper::field_profile().unwrap();
        let naive = Scenario::new()
            .set_machine_failure(ClassId::new("difficult"), p(0.8))
            .predict(&base, &field)
            .unwrap();
        let vigilant = Scenario::new()
            .set_machine_failure(ClassId::new("difficult"), p(0.8))
            .with_adaptation(AdaptationResponse::Vigilance { strength: 0.5 })
            .predict(&base, &field)
            .unwrap();
        assert!(naive.after > naive.before, "degradation hurts");
        assert!(
            vigilant.after < naive.after,
            "vigilance recovers part of it"
        );
    }

    #[test]
    fn relative_improvement_and_display() {
        let base = paper::example_model().unwrap();
        let field = paper::field_profile().unwrap();
        let pred = Scenario::new()
            .improve_machine(ClassId::new("difficult"), 10.0)
            .predict(&base, &field)
            .unwrap();
        let rel = pred.relative_improvement().unwrap();
        assert!(rel > 0.0 && rel < 1.0);
        assert!(pred.to_string().contains("->"));
    }
}
