//! The coherence / importance index `t(x)` and the Fig. 4 analysis (§6.1).
//!
//! Rewriting eq. (8) per class as eq. (9),
//!
//! ```text
//! PHf(x) = PHf|Ms(x) + PMf(x)·t(x),     t(x) = PHf|Mf(x) − PHf|Ms(x)
//! ```
//!
//! the class failure probability is *linear in the machine failure
//! probability*, with intercept `PHf|Ms(x)` and slope `t(x)`. Fig. 4 plots
//! this line; its two lessons are (a) the slope is Birnbaum's importance of
//! the machine for the system, and (b) the intercept is a hard floor — no
//! machine improvement alone can push system failure below `PHf|Ms(x)`.

use serde::{Deserialize, Serialize};

use hmdiv_prob::Probability;

use crate::{ClassId, DemandProfile, ModelError, SequentialModel};

/// The Fig. 4 line for one class: system failure as a function of machine
/// failure probability, holding the reader's conditional behaviour fixed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineResponseLine {
    class: ClassId,
    intercept: Probability,
    slope: f64,
    current_p_mf: Probability,
}

impl MachineResponseLine {
    /// The class this line describes.
    #[must_use]
    pub fn class(&self) -> &ClassId {
        &self.class
    }

    /// The intercept `PHf|Ms(x)` — the floor no machine improvement can
    /// break (§6.1: "No improvement in the machine will reduce this failure
    /// probability, unless we also change the reader's skills").
    #[must_use]
    pub fn lower_bound(&self) -> Probability {
        self.intercept
    }

    /// The slope `t(x)`: the coherence / importance index.
    #[must_use]
    pub fn coherence_index(&self) -> f64 {
        self.slope
    }

    /// The machine failure probability at which the model currently sits.
    #[must_use]
    pub fn current_p_mf(&self) -> Probability {
        self.current_p_mf
    }

    /// The class failure probability at a hypothetical machine failure
    /// probability `p_mf` (a point on the Fig. 4 line).
    #[must_use]
    pub fn failure_at(&self, p_mf: Probability) -> Probability {
        Probability::clamped(self.intercept.value() + p_mf.value() * self.slope)
    }

    /// Sweeps the line over `points` evenly spaced machine failure
    /// probabilities in `[0, 1]`, returning `(p_mf, p_system_failure)`
    /// pairs — the series plotted in Fig. 4.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidFactor`] if `points < 2` (a line needs two
    /// points).
    pub fn sweep(&self, points: usize) -> Result<Vec<(f64, f64)>, ModelError> {
        if points < 2 {
            return Err(ModelError::InvalidFactor {
                value: points as f64,
                context: "sweep point count (need at least 2)",
            });
        }
        Ok((0..points)
            .map(|i| {
                let p_mf = i as f64 / (points - 1) as f64;
                (p_mf, self.failure_at(Probability::clamped(p_mf)).value())
            })
            .collect())
    }
}

/// Builds the Fig. 4 line for one class of the model.
///
/// # Errors
///
/// [`ModelError::MissingClass`] if the class has no parameters.
///
/// # Example
///
/// ```
/// use hmdiv_core::{paper, importance::machine_response_line, ClassId};
///
/// # fn main() -> Result<(), hmdiv_core::ModelError> {
/// let model = paper::example_model()?;
/// let line = machine_response_line(&model, &ClassId::new("difficult"))?;
/// assert!((line.coherence_index() - 0.5).abs() < 1e-12);
/// assert!((line.lower_bound().value() - 0.4).abs() < 1e-12);
/// // A perfect machine leaves 0.4; a useless one gives 0.9.
/// # Ok(())
/// # }
/// ```
pub fn machine_response_line(
    model: &SequentialModel,
    class: &ClassId,
) -> Result<MachineResponseLine, ModelError> {
    let cp = model.params().class(class)?;
    Ok(MachineResponseLine {
        class: class.clone(),
        intercept: cp.p_hf_given_ms(),
        slope: cp.coherence_index(),
        current_p_mf: cp.p_mf(),
    })
}

/// Builds the Fig. 4 lines for every class of the model, in class order.
#[must_use]
pub fn machine_response_lines(model: &SequentialModel) -> Vec<MachineResponseLine> {
    model
        .params()
        .iter()
        .map(|(class, cp)| MachineResponseLine {
            class: class.clone(),
            intercept: cp.p_hf_given_ms(),
            slope: cp.coherence_index(),
            current_p_mf: cp.p_mf(),
        })
        .collect()
}

/// The profile-level floor on system failure achievable by machine
/// improvement alone: `Σ p(x)·PHf|Ms(x)` (every class at its intercept).
///
/// # Errors
///
/// [`ModelError::UnknownClass`] if the profile mentions an absent class.
pub fn system_lower_bound(
    model: &SequentialModel,
    profile: &DemandProfile,
) -> Result<Probability, ModelError> {
    let compiled = model.compiled();
    let bound = compiled.bind_profile(profile)?;
    let mut total = 0.0;
    for (idx, w) in bound.iter() {
        total += w * compiled.p_hf_given_ms_slice()[idx as usize];
    }
    Ok(Probability::clamped(total))
}

/// Scales every class's machine failure probability by `scale ∈ [0, 1]` and
/// returns the resulting system failure probability — the system-level
/// Fig. 4 trajectory as the machine is improved uniformly.
///
/// # Errors
///
/// * [`ModelError::InvalidFactor`] if `scale` is not in `[0, 1]`.
/// * [`ModelError::UnknownClass`] if the profile mentions an absent class.
pub fn system_failure_with_machine_scaled(
    model: &SequentialModel,
    profile: &DemandProfile,
    scale: f64,
) -> Result<Probability, ModelError> {
    let compiled = model.compiled();
    let bound = compiled.bind_profile(profile)?;
    system_failure_scaled_compiled(compiled, &bound, scale)
}

/// The compiled-form core of [`system_failure_with_machine_scaled`]: reuse a
/// bound profile across the points of a sweep.
///
/// # Errors
///
/// [`ModelError::InvalidFactor`] if `scale` is not in `[0, 1]`.
pub fn system_failure_scaled_compiled(
    compiled: &crate::CompiledModel,
    bound: &crate::CompiledProfile,
    scale: f64,
) -> Result<Probability, ModelError> {
    if scale.is_nan() || !(0.0..=1.0).contains(&scale) {
        return Err(ModelError::InvalidFactor {
            value: scale,
            context: "machine failure scale",
        });
    }
    let mut total = 0.0;
    for (idx, w) in bound.iter() {
        let cp = compiled.params_at(idx);
        let scaled_pmf = cp.p_mf().value() * scale;
        total += w * (cp.p_hf_given_ms().value() + scaled_pmf * cp.coherence_index());
    }
    Ok(Probability::clamped(total))
}

/// [`system_failure_scaled_compiled`] for a batch of scale points:
/// [`crate::compiled::SCENARIO_LANES`] independent scale evaluations
/// advance per profile entry, each lane computing the exact scalar
/// expression tree in the exact scalar entry order — bit-identical to
/// calling the scalar form per point (which the remainder tail does). The
/// per-entry profile weight, intercept, machine failure and coherence
/// index are gathered once for the whole batch.
///
/// # Errors
///
/// [`ModelError::InvalidFactor`] for the lowest-indexed scale outside
/// `[0, 1]`, matching the scalar sweep's fail-fast order.
pub fn system_failure_scaled_batch(
    compiled: &crate::CompiledModel,
    bound: &crate::CompiledProfile,
    scales: &[f64],
) -> Result<Vec<Probability>, ModelError> {
    for &scale in scales {
        if scale.is_nan() || !(0.0..=1.0).contains(&scale) {
            return Err(ModelError::InvalidFactor {
                value: scale,
                context: "machine failure scale",
            });
        }
    }
    const LANES: usize = crate::compiled::SCENARIO_LANES;
    let entries: Vec<(f64, f64, f64, f64)> = bound
        .iter()
        .map(|(idx, w)| {
            let cp = compiled.params_at(idx);
            (
                w,
                cp.p_hf_given_ms().value(),
                cp.p_mf().value(),
                cp.coherence_index(),
            )
        })
        .collect();
    let mut out = Vec::with_capacity(scales.len());
    let mut blocks = scales.chunks_exact(LANES);
    for block in &mut blocks {
        let mut acc = [0.0_f64; LANES];
        for &(w, hf_ms, p_mf, t) in &entries {
            for (a, &scale) in acc.iter_mut().zip(block) {
                *a += w * (hf_ms + (p_mf * scale) * t);
            }
        }
        out.extend(acc.map(Probability::clamped));
    }
    for &scale in blocks.remainder() {
        out.push(system_failure_scaled_compiled(compiled, bound, scale)?);
    }
    Ok(out)
}

/// Sweeps the system-level Fig. 4 trajectory: `points` values of the
/// uniform machine-failure scale in `[0, 1]`, returning
/// `(scale, p_system_failure)` pairs. The left end is the §6.1 floor, the
/// right end the current system failure. Evaluated through the
/// lane-blocked [`system_failure_scaled_batch`] kernel.
///
/// # Errors
///
/// As [`system_failure_with_machine_scaled`], plus
/// [`ModelError::InvalidFactor`] if `points < 2`.
pub fn system_machine_sweep(
    model: &SequentialModel,
    profile: &DemandProfile,
    points: usize,
) -> Result<Vec<(f64, f64)>, ModelError> {
    if points < 2 {
        return Err(ModelError::InvalidFactor {
            value: points as f64,
            context: "sweep point count (need at least 2)",
        });
    }
    // Compile and bind once; the per-point evaluation is pure slice work.
    let compiled = model.compiled();
    let bound = compiled.bind_profile(profile)?;
    let scales: Vec<f64> = (0..points)
        .map(|i| i as f64 / (points - 1) as f64)
        .collect();
    let failures = system_failure_scaled_batch(compiled, &bound, &scales)?;
    Ok(scales
        .into_iter()
        .zip(failures)
        .map(|(scale, p)| (scale, p.value()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassParams, ModelParams};

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn model() -> SequentialModel {
        SequentialModel::new(
            ModelParams::builder()
                .class("easy", ClassParams::new(p(0.07), p(0.14), p(0.18)))
                .class("difficult", ClassParams::new(p(0.41), p(0.4), p(0.9)))
                .build()
                .unwrap(),
        )
    }

    fn trial() -> DemandProfile {
        DemandProfile::builder()
            .class("easy", 0.8)
            .class("difficult", 0.2)
            .build()
            .unwrap()
    }

    #[test]
    fn line_reproduces_class_failure_at_current_pmf() {
        let m = model();
        for class in ["easy", "difficult"] {
            let id = ClassId::new(class);
            let line = machine_response_line(&m, &id).unwrap();
            let at_current = line.failure_at(line.current_p_mf());
            assert!(
                (at_current.value() - m.class_failure(&id).unwrap().value()).abs() < 1e-12,
                "{class}"
            );
        }
    }

    #[test]
    fn line_endpoints_are_the_conditionals() {
        let line = machine_response_line(&model(), &ClassId::new("difficult")).unwrap();
        assert!((line.failure_at(Probability::ZERO).value() - 0.4).abs() < 1e-12);
        assert!((line.failure_at(Probability::ONE).value() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn sweep_is_monotone_for_positive_t() {
        let line = machine_response_line(&model(), &ClassId::new("easy")).unwrap();
        let series = line.sweep(11).unwrap();
        assert_eq!(series.len(), 11);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert!((series[0].1 - 0.14).abs() < 1e-12);
        assert!((series[10].1 - 0.18).abs() < 1e-12);
    }

    #[test]
    fn sweep_rejects_single_point() {
        let line = machine_response_line(&model(), &ClassId::new("easy")).unwrap();
        assert!(matches!(
            line.sweep(1),
            Err(ModelError::InvalidFactor { .. })
        ));
        assert!(matches!(
            system_machine_sweep(&model(), &trial(), 0),
            Err(ModelError::InvalidFactor { .. })
        ));
    }

    #[test]
    fn lines_for_all_classes() {
        let lines = machine_response_lines(&model());
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].class().name(), "difficult");
    }

    #[test]
    fn lower_bound_is_weighted_intercepts() {
        let lb = system_lower_bound(&model(), &trial()).unwrap();
        assert!((lb.value() - (0.8 * 0.14 + 0.2 * 0.4)).abs() < 1e-12);
        // The floor is below the current failure probability.
        assert!(lb.value() < model().system_failure(&trial()).unwrap().value());
    }

    #[test]
    fn scaling_machine_interpolates_between_bound_and_current() {
        let m = model();
        let profile = trial();
        let at_one = system_failure_with_machine_scaled(&m, &profile, 1.0).unwrap();
        let at_zero = system_failure_with_machine_scaled(&m, &profile, 0.0).unwrap();
        assert!((at_one.value() - m.system_failure(&profile).unwrap().value()).abs() < 1e-12);
        assert!(
            (at_zero.value() - system_lower_bound(&m, &profile).unwrap().value()).abs() < 1e-12
        );
        let mid = system_failure_with_machine_scaled(&m, &profile, 0.5).unwrap();
        assert!(at_zero < mid && mid < at_one);
    }

    #[test]
    fn scale_validated() {
        let m = model();
        assert!(system_failure_with_machine_scaled(&m, &trial(), -0.1).is_err());
        assert!(system_failure_with_machine_scaled(&m, &trial(), 1.1).is_err());
        assert!(system_failure_with_machine_scaled(&m, &trial(), f64::NAN).is_err());
    }

    #[test]
    fn system_sweep_endpoints() {
        let m = model();
        let series = system_machine_sweep(&m, &trial(), 5).unwrap();
        assert_eq!(series.len(), 5);
        assert!((series[0].1 - system_lower_bound(&m, &trial()).unwrap().value()).abs() < 1e-12);
        assert!((series[4].1 - m.system_failure(&trial()).unwrap().value()).abs() < 1e-12);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn negative_t_line_decreases() {
        // Reader does better when machine fails (extra scrutiny).
        let m = SequentialModel::new(
            ModelParams::builder()
                .class("odd", ClassParams::new(p(0.3), p(0.5), p(0.2)))
                .build()
                .unwrap(),
        );
        let line = machine_response_line(&m, &ClassId::new("odd")).unwrap();
        assert!(line.coherence_index() < 0.0);
        let series = line.sweep(5).unwrap();
        assert!(series[4].1 < series[0].1);
    }
}
