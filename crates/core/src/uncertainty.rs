//! Propagation of parameter uncertainty into system predictions.
//!
//! The paper assumes "narrow enough confidence intervals can be obtained for
//! all parameters" for its worked example, and notes that in reality "the
//! equation will show the corresponding ranges of uncertainty in the
//! predicted probability of system failure". This module does exactly that:
//! each per-class parameter is a Beta posterior (from trial counts via
//! conjugate updating), and the system failure probability's posterior is
//! obtained by Monte-Carlo: draw a parameter table, evaluate eq. (8),
//! repeat.

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::Rng;

use hmdiv_prob::bayes::Beta;
use hmdiv_prob::Probability;

use crate::compiled::CompiledProfile;
use crate::{
    ClassId, ClassParams, ClassUniverse, DemandProfile, ModelError, ModelParams, SequentialModel,
};

/// Beta posteriors for one class's parameter triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassPosterior {
    /// Posterior for `PMf(x)`.
    pub p_mf: Beta,
    /// Posterior for `PHf|Ms(x)`.
    pub p_hf_given_ms: Beta,
    /// Posterior for `PHf|Mf(x)`.
    pub p_hf_given_mf: Beta,
}

impl ClassPosterior {
    /// Builds a posterior triple from trial counts with a Jeffreys prior:
    /// `machine (k, n)` = machine failures out of cases, `hf_ms (k, n)` =
    /// human failures out of machine-success cases, `hf_mf (k, n)` likewise
    /// for machine-failure cases.
    ///
    /// # Errors
    ///
    /// [`ModelError::Prob`] if any count pair has `k > n` (zero `n` is
    /// allowed and yields the bare prior).
    pub fn from_counts(
        machine: (u64, u64),
        hf_ms: (u64, u64),
        hf_mf: (u64, u64),
    ) -> Result<Self, ModelError> {
        let post = |(k, n): (u64, u64)| -> Result<Beta, ModelError> {
            if k > n {
                return Err(ModelError::Prob(hmdiv_prob::ProbError::InvalidCounts {
                    successes: k,
                    trials: n,
                }));
            }
            Ok(Beta::jeffreys().updated(k, n - k))
        };
        Ok(ClassPosterior {
            p_mf: post(machine)?,
            p_hf_given_ms: post(hf_ms)?,
            p_hf_given_mf: post(hf_mf)?,
        })
    }

    /// Draws one [`ClassParams`] from the posterior.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> ClassParams {
        ClassParams::new(
            self.p_mf.sample(rng),
            self.p_hf_given_ms.sample(rng),
            self.p_hf_given_mf.sample(rng),
        )
    }

    /// The posterior-mean [`ClassParams`].
    #[must_use]
    pub fn mean(&self) -> ClassParams {
        ClassParams::new(
            self.p_mf.mean(),
            self.p_hf_given_ms.mean(),
            self.p_hf_given_mf.mean(),
        )
    }
}

/// Posteriors for every class.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ModelPosterior {
    table: BTreeMap<ClassId, ClassPosterior>,
}

impl ModelPosterior {
    /// An empty posterior set (add classes with
    /// [`ModelPosterior::with_class`]).
    #[must_use]
    pub fn new() -> Self {
        ModelPosterior::default()
    }

    /// Adds (or replaces) a class's posterior.
    #[must_use]
    pub fn with_class(mut self, class: impl Into<ClassId>, posterior: ClassPosterior) -> Self {
        self.table.insert(class.into(), posterior);
        self
    }

    /// Number of classes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether no class has a posterior.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Draws one full [`SequentialModel`] from the posteriors.
    ///
    /// # Errors
    ///
    /// [`ModelError::Empty`] if no classes have posteriors.
    pub fn sample_model<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Result<SequentialModel, ModelError> {
        if self.table.is_empty() {
            return Err(ModelError::Empty {
                context: "model posterior",
            });
        }
        let mut builder = ModelParams::builder();
        for (class, post) in &self.table {
            builder = builder.class(class.clone(), post.sample(rng));
        }
        Ok(SequentialModel::new(builder.build()?))
    }

    /// The sampling plan of the posterior set: the interned universe plus
    /// the per-class posteriors laid out in universe (sorted-name) order —
    /// the same order [`ModelPosterior::sample_model`] consumes the RNG in,
    /// which is what keeps the compiled Monte-Carlo bit-identical.
    fn sampling_plan(&self) -> (Arc<ClassUniverse>, Vec<ClassPosterior>) {
        let universe = Arc::new(ClassUniverse::from_names(self.table.keys().cloned()));
        let posts = self.table.values().copied().collect();
        (universe, posts)
    }

    /// The posterior-mean model.
    ///
    /// # Errors
    ///
    /// [`ModelError::Empty`] if no classes have posteriors.
    pub fn mean_model(&self) -> Result<SequentialModel, ModelError> {
        if self.table.is_empty() {
            return Err(ModelError::Empty {
                context: "model posterior",
            });
        }
        let mut builder = ModelParams::builder();
        for (class, post) in &self.table {
            builder = builder.class(class.clone(), post.mean());
        }
        Ok(SequentialModel::new(builder.build()?))
    }
}

/// The Monte-Carlo posterior of a system prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct UncertainPrediction {
    samples: Vec<f64>,
}

impl UncertainPrediction {
    /// The posterior mean of the system failure probability.
    #[must_use]
    pub fn mean(&self) -> Probability {
        Probability::clamped(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
    }

    /// The posterior standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        let mean = self.mean().value();
        (self
            .samples
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / self.samples.len() as f64)
            .sqrt()
    }

    /// An equal-tailed credible interval at `level`.
    ///
    /// # Errors
    ///
    /// [`ModelError::Prob`] if `level` is not strictly inside `(0, 1)`.
    pub fn credible_interval(&self, level: f64) -> Result<(Probability, Probability), ModelError> {
        if !(level > 0.0 && level < 1.0) {
            return Err(ModelError::Prob(hmdiv_prob::ProbError::InvalidConfidence {
                level,
            }));
        }
        let alpha = (1.0 - level) / 2.0;
        Ok((self.quantile(alpha), self.quantile(1.0 - alpha)))
    }

    /// The `q`-th quantile of the posterior samples (linear interpolation).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Probability {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile order must be in [0,1], got {q}"
        );
        let n = self.samples.len();
        if n == 1 {
            return Probability::clamped(self.samples[0]);
        }
        let pos = q * (n - 1) as f64;
        let idx = pos.floor() as usize;
        let frac = pos - idx as f64;
        let v = if idx + 1 >= n {
            self.samples[n - 1]
        } else {
            self.samples[idx] * (1.0 - frac) + self.samples[idx + 1] * frac
        };
        Probability::clamped(v)
    }

    /// Number of Monte-Carlo draws.
    #[must_use]
    pub fn draws(&self) -> usize {
        self.samples.len()
    }
}

/// Propagates posterior parameter uncertainty into the system failure
/// probability under a profile, by `draws` Monte-Carlo evaluations of
/// eq. (8).
///
/// Each draw samples the per-class parameters directly into a dense scratch
/// buffer laid out over the posterior's class universe and evaluates eq. (8)
/// through the bound profile — no per-draw `BTreeMap` model is built. The
/// RNG consumption order (classes in sorted order) and the summation order
/// (profile insertion order) match the naive sample-a-model loop exactly, so
/// the samples are bit-identical to it.
///
/// # Errors
///
/// * [`ModelError::Empty`] if `draws == 0` or the posterior is empty.
/// * [`ModelError::UnknownClass`] if the profile mentions a class without a
///   posterior.
///
/// # Example
///
/// ```
/// use hmdiv_core::uncertainty::{ClassPosterior, ModelPosterior, propagate};
/// use hmdiv_core::DemandProfile;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), hmdiv_core::ModelError> {
/// let posterior = ModelPosterior::new()
///     .with_class("easy", ClassPosterior::from_counts((14, 200), (26, 186), (3, 14))?)
///     .with_class("difficult", ClassPosterior::from_counts((82, 200), (47, 118), (74, 82))?);
/// let field = DemandProfile::builder().class("easy", 0.9).class("difficult", 0.1).build()?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let prediction = propagate(&posterior, &field, 2000, &mut rng)?;
/// let (lo, hi) = prediction.credible_interval(0.95)?;
/// assert!(lo < prediction.mean() && prediction.mean() < hi);
/// # Ok(())
/// # }
/// ```
pub fn propagate<R: Rng + ?Sized>(
    posterior: &ModelPosterior,
    profile: &DemandProfile,
    draws: usize,
    rng: &mut R,
) -> Result<UncertainPrediction, ModelError> {
    if draws == 0 {
        return Err(ModelError::Empty {
            context: "monte-carlo draw count",
        });
    }
    if posterior.is_empty() {
        return Err(ModelError::Empty {
            context: "model posterior",
        });
    }
    // Coverage resolves once through the interned universe.
    let (universe, posts) = posterior.sampling_plan();
    let bound = CompiledProfile::bind(&universe, profile)?;
    let _span = hmdiv_obs::span("core.uncertainty.propagate");
    let mut samples = Vec::with_capacity(draws);
    let mut scratch: Vec<ClassParams> = Vec::with_capacity(posts.len());
    for _ in 0..draws {
        scratch.clear();
        scratch.extend(posts.iter().map(|post| post.sample(rng)));
        samples.push(failure_of_draw(&scratch, &bound));
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    Ok(UncertainPrediction { samples })
}

/// Eq. (8) over one posterior draw laid out in universe order — the same
/// accumulation order and [`ClassParams`] calls as
/// [`SequentialModel::system_failure`] on the equivalent sampled model.
fn failure_of_draw(params: &[ClassParams], bound: &CompiledProfile) -> f64 {
    let mut total = 0.0;
    for (idx, w) in bound.iter() {
        total += w * params[idx as usize].class_failure().value();
    }
    Probability::clamped(total).value()
}

/// Parallel [`propagate`]: deterministic for `(seed, draws)` and identical
/// at any `threads` value.
///
/// Each draw samples from its own `(seed, draw id)` RNG stream (see
/// [`hmdiv_prob::par::stream_rng`]), so the thread count only decides which
/// worker evaluates which draw. The sample set differs numerically from a
/// sequential [`propagate`] with a single caller-provided stream, but has
/// the same distribution.
///
/// # Errors
///
/// As [`propagate`]; coverage errors surface before any draw runs.
pub fn propagate_par(
    posterior: &ModelPosterior,
    profile: &DemandProfile,
    draws: usize,
    seed: u64,
    threads: usize,
) -> Result<UncertainPrediction, ModelError> {
    if draws == 0 {
        return Err(ModelError::Empty {
            context: "monte-carlo draw count",
        });
    }
    if posterior.is_empty() {
        return Err(ModelError::Empty {
            context: "model posterior",
        });
    }
    // Coverage resolves once through the interned universe; per-draw
    // evaluation is then infallible dense work.
    let (universe, posts) = posterior.sampling_plan();
    let bound = CompiledProfile::bind(&universe, profile)?;
    // Accumulator: per-draw failure probabilities (in-order concatenation)
    // plus a per-worker scratch buffer reused across its draws.
    struct Acc {
        values: Vec<f64>,
        scratch: Vec<ClassParams>,
    }
    impl hmdiv_prob::par::Merge for Acc {
        fn merge(&mut self, later: Self) {
            hmdiv_prob::par::Merge::merge(&mut self.values, later.values);
        }
    }
    // The "core.uncertainty" scope reports replicate (draw) throughput as
    // `core.uncertainty.tasks_per_sec` (one task = one posterior draw).
    let acc = hmdiv_prob::par::run_tasks_scoped(
        "core.uncertainty",
        seed,
        draws as u64,
        threads,
        || Acc {
            values: Vec::new(),
            scratch: Vec::with_capacity(posts.len()),
        },
        |_id, rng, acc: &mut Acc| {
            acc.scratch.clear();
            let scratch = &mut acc.scratch;
            scratch.extend(posts.iter().map(|post| post.sample(rng)));
            acc.values.push(failure_of_draw(scratch, &bound));
        },
    );
    let mut samples = acc.values;
    samples.sort_by(|a, b| a.total_cmp(b));
    Ok(UncertainPrediction { samples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_like_posterior(scale: u64) -> ModelPosterior {
        // Counts matching the paper's parameters at sample size ~200·scale.
        let s = scale;
        ModelPosterior::new()
            .with_class(
                "easy",
                ClassPosterior::from_counts((14 * s, 200 * s), (26 * s, 186 * s), (3 * s, 14 * s))
                    .unwrap(),
            )
            .with_class(
                "difficult",
                ClassPosterior::from_counts((82 * s, 200 * s), (47 * s, 118 * s), (74 * s, 82 * s))
                    .unwrap(),
            )
    }

    fn field() -> DemandProfile {
        DemandProfile::builder()
            .class("easy", 0.9)
            .class("difficult", 0.1)
            .build()
            .unwrap()
    }

    #[test]
    fn posterior_mean_near_trial_rates() {
        let post = paper_like_posterior(1);
        let mean_model = post.mean_model().unwrap();
        let cp = mean_model.params().class_by_name("easy").unwrap();
        assert!((cp.p_mf().value() - 0.07).abs() < 0.01);
    }

    #[test]
    fn interval_brackets_point_prediction() {
        let post = paper_like_posterior(1);
        let mut rng = StdRng::seed_from_u64(7);
        let pred = propagate(&post, &field(), 3000, &mut rng).unwrap();
        let point = post.mean_model().unwrap().system_failure(&field()).unwrap();
        let (lo, hi) = pred.credible_interval(0.95).unwrap();
        assert!(
            lo <= point && point <= hi,
            "[{}, {}] vs {}",
            lo.value(),
            hi.value(),
            point.value()
        );
        assert_eq!(pred.draws(), 3000);
        assert!(pred.std_dev() > 0.0);
    }

    #[test]
    fn more_data_narrows_the_interval() {
        let mut rng = StdRng::seed_from_u64(42);
        let small = propagate(&paper_like_posterior(1), &field(), 2000, &mut rng).unwrap();
        let large = propagate(&paper_like_posterior(20), &field(), 2000, &mut rng).unwrap();
        let (lo_s, hi_s) = small.credible_interval(0.95).unwrap();
        let (lo_l, hi_l) = large.credible_interval(0.95).unwrap();
        assert!(
            hi_l.value() - lo_l.value() < hi_s.value() - lo_s.value(),
            "20x data should narrow the interval"
        );
    }

    #[test]
    fn quantiles_monotone() {
        let mut rng = StdRng::seed_from_u64(3);
        let pred = propagate(&paper_like_posterior(1), &field(), 500, &mut rng).unwrap();
        assert!(pred.quantile(0.1) <= pred.quantile(0.5));
        assert!(pred.quantile(0.5) <= pred.quantile(0.9));
    }

    #[test]
    fn validation_errors() {
        let mut rng = StdRng::seed_from_u64(0);
        let post = paper_like_posterior(1);
        assert!(propagate(&post, &field(), 0, &mut rng).is_err());
        let empty = ModelPosterior::new();
        assert!(empty.is_empty());
        assert!(propagate(&empty, &field(), 10, &mut rng).is_err());
        let missing = DemandProfile::builder()
            .class("ghost", 1.0)
            .build()
            .unwrap();
        assert!(matches!(
            propagate(&post, &missing, 10, &mut rng),
            Err(ModelError::UnknownClass { .. })
        ));
        assert!(ClassPosterior::from_counts((5, 3), (0, 0), (0, 0)).is_err());
        // Zero-trial counts fall back to the prior.
        assert!(ClassPosterior::from_counts((0, 0), (0, 0), (0, 0)).is_ok());
        let pred = propagate(&post, &field(), 100, &mut rng).unwrap();
        assert!(pred.credible_interval(0.0).is_err());
        assert!(pred.credible_interval(1.0).is_err());
    }

    #[test]
    fn propagate_par_is_thread_count_invariant() {
        let post = paper_like_posterior(1);
        let reference = propagate_par(&post, &field(), 600, 13, 1).unwrap();
        for threads in [2usize, 3, 7, 16] {
            let pred = propagate_par(&post, &field(), 600, 13, threads).unwrap();
            assert_eq!(pred, reference, "threads={threads}");
        }
    }

    #[test]
    fn propagate_par_interval_brackets_point_prediction() {
        let post = paper_like_posterior(1);
        let pred = propagate_par(&post, &field(), 3000, 7, 4).unwrap();
        let point = post.mean_model().unwrap().system_failure(&field()).unwrap();
        let (lo, hi) = pred.credible_interval(0.95).unwrap();
        assert!(
            lo <= point && point <= hi,
            "[{}, {}] vs {}",
            lo.value(),
            hi.value(),
            point.value()
        );
        assert_eq!(pred.draws(), 3000);
    }

    #[test]
    fn propagate_par_validation_errors() {
        let post = paper_like_posterior(1);
        assert!(propagate_par(&post, &field(), 0, 1, 4).is_err());
        assert!(propagate_par(&ModelPosterior::new(), &field(), 10, 1, 4).is_err());
        let missing = DemandProfile::builder()
            .class("ghost", 1.0)
            .build()
            .unwrap();
        assert!(matches!(
            propagate_par(&post, &missing, 10, 1, 4),
            Err(ModelError::UnknownClass { .. })
        ));
    }
}
