//! Design exploration: where should CADT improvement effort go? (§6.2)
//!
//! For a small reduction `ΔPMf(x)` of the machine's failure probability on
//! class `x`, eq. (9) gives the system-level benefit
//!
//! ```text
//! ΔPHf = p(x) · t(x) · ΔPMf(x)
//! ```
//!
//! so the *leverage* of a class is `p(x)·t(x)·PMf(x)` for a proportional
//! improvement — not its frequency alone. The §5 example's point is exactly
//! this: improving the machine ×10 on the frequent easy cases (leverage
//! 0.9·0.04·0.07 ≈ 0.0025 under the field profile) buys far less than the
//! same improvement on the rare difficult ones (0.1·0.5·0.41 ≈ 0.021).

use serde::{Deserialize, Serialize};

use crate::compiled::CompiledModel;
use crate::extrapolate::Scenario;
use crate::{ClassId, ClassParams, DemandProfile, ModelError, SequentialModel};

/// The improvement leverage of one class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassLeverage {
    /// The class.
    pub class: ClassId,
    /// Its profile weight `p(x)`.
    pub weight: f64,
    /// Its coherence index `t(x)`.
    pub coherence_index: f64,
    /// Its current machine failure probability `PMf(x)`.
    pub p_mf: f64,
    /// The reduction in system failure from *eliminating* machine failure
    /// on this class: `p(x)·t(x)·PMf(x)`.
    pub max_benefit: f64,
}

/// Ranks classes by the system-level benefit of improving the machine on
/// them, descending (§6.2: "concentrate any improvements on cases for which
/// readers have a high t(x) (and that are somewhat frequent)").
///
/// # Errors
///
/// [`ModelError::UnknownClass`] if the profile mentions a class without
/// parameters.
///
/// # Example
///
/// ```
/// use hmdiv_core::{paper, design::rank_improvement_targets};
///
/// # fn main() -> Result<(), hmdiv_core::ModelError> {
/// let model = paper::example_model()?;
/// let field = paper::field_profile()?;
/// let ranked = rank_improvement_targets(&model, &field)?;
/// // Despite being 9× rarer, "difficult" dominates.
/// assert_eq!(ranked[0].class.name(), "difficult");
/// # Ok(())
/// # }
/// ```
pub fn rank_improvement_targets(
    model: &SequentialModel,
    profile: &DemandProfile,
) -> Result<Vec<ClassLeverage>, ModelError> {
    let compiled = model.compiled();
    let bound = compiled.bind_profile(profile)?;
    let mut out = Vec::with_capacity(bound.len());
    for (idx, weight) in bound.iter() {
        let cp = compiled.params_at(idx);
        let t = cp.coherence_index();
        let p_mf = cp.p_mf().value();
        out.push(ClassLeverage {
            class: compiled.universe().class(idx).clone(),
            weight,
            coherence_index: t,
            p_mf,
            max_benefit: weight * t * p_mf,
        });
    }
    out.sort_by(|a, b| {
        b.max_benefit
            .total_cmp(&a.max_benefit)
            .then_with(|| a.class.cmp(&b.class))
    });
    Ok(out)
}

/// The exact system-failure reduction from improving the machine by
/// `factor` on one class (a convenience around [`Scenario`]).
///
/// # Errors
///
/// As [`Scenario::predict`].
pub fn improvement_benefit(
    model: &SequentialModel,
    profile: &DemandProfile,
    class: &ClassId,
    factor: f64,
) -> Result<f64, ModelError> {
    let pred = Scenario::new()
        .improve_machine(class.clone(), factor)
        .predict(model, profile)?;
    Ok(pred.improvement())
}

/// Greedy allocation of a limited improvement budget.
///
/// The budget is a number of "improvement units"; spending one unit on a
/// class divides its `PMf(x)` by `step_factor`. Units are spent one at a
/// time on whichever class currently yields the largest exact reduction in
/// system failure. Returns the per-class unit counts and the final model.
///
/// This greedy policy is optimal here because each unit's benefit on a class
/// — `p(x)·t(x)·PMf(x)·(1 − 1/step)` — strictly decreases as units
/// accumulate on that class (diminishing returns), which makes the marginal
/// benefit matroid-greedy-friendly.
///
/// # Errors
///
/// * [`ModelError::InvalidFactor`] if `step_factor <= 1` or `budget == 0`.
/// * Coverage errors from evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetAllocation {
    /// `(class, units spent)` pairs, in class order.
    pub allocation: Vec<(ClassId, usize)>,
    /// System failure before any spending.
    pub before: f64,
    /// System failure after the full budget.
    pub after: f64,
    /// The improved model.
    pub model: SequentialModel,
}

/// See [`BudgetAllocation`].
///
/// # Errors
///
/// * [`ModelError::InvalidFactor`] if `step_factor <= 1` or `budget == 0`.
/// * Coverage errors from evaluation.
pub fn allocate_improvement_budget(
    model: &SequentialModel,
    profile: &DemandProfile,
    budget: usize,
    step_factor: f64,
) -> Result<BudgetAllocation, ModelError> {
    if step_factor.is_nan() || step_factor <= 1.0 || step_factor.is_infinite() {
        return Err(ModelError::InvalidFactor {
            value: step_factor,
            context: "step factor",
        });
    }
    if budget == 0 {
        return Err(ModelError::InvalidFactor {
            value: 0.0,
            context: "improvement budget",
        });
    }
    // Compile once; candidates are evaluated by patching one class slot
    // instead of cloning a map-based model per candidate per unit.
    let bound = model.compiled().bind_profile(profile)?;
    let mut compiled = CompiledModel::clone(model.compiled());
    let before = compiled.system_failure(&bound).value();
    let mut spent: std::collections::BTreeMap<ClassId, usize> = Default::default();
    let mut candidates: Vec<(u32, ClassParams)> = Vec::with_capacity(bound.len());
    for _ in 0..budget {
        let baseline = compiled.system_failure(&bound).value();
        // One candidate slot-patch per profile class, evaluated through the
        // lane-blocked batch kernel (bit-identical to the per-candidate
        // `system_failure_patched` loop it replaces).
        candidates.clear();
        for (idx, _) in bound.iter() {
            candidates.push((
                idx,
                compiled.params_at(idx).with_machine_improved(step_factor)?,
            ));
        }
        let patched = compiled.system_failure_patched_batch(&bound, &candidates);
        let mut best: Option<(u32, f64)> = None;
        for ((idx, _), failure) in candidates.iter().zip(&patched) {
            let benefit = baseline - failure.value();
            match &best {
                Some((_, b)) if *b >= benefit => {}
                _ => best = Some((*idx, benefit)),
            }
        }
        let (idx, _) = best.ok_or(ModelError::Empty {
            context: "demand profile",
        })?;
        let improved = compiled.params_at(idx).with_machine_improved(step_factor)?;
        compiled.patch(idx, improved);
        *spent
            .entry(compiled.universe().class(idx).clone())
            .or_insert(0) += 1;
    }
    let after = compiled.system_failure(&bound).value();
    Ok(BudgetAllocation {
        allocation: spent.into_iter().collect(),
        before,
        after,
        model: SequentialModel::new(compiled.to_model_params()),
    })
}

/// Evaluation counts from one run of
/// [`allocate_improvement_budget_pruned`]: how much compiled work the
/// certified pre-pruning stage saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneStats {
    /// Greedy rounds executed (= the budget).
    pub rounds: usize,
    /// Candidate patches considered across all rounds.
    pub candidates: usize,
    /// Candidates actually sent to the compiled batch evaluator.
    pub evaluated: usize,
    /// Candidates discarded by the static bound — never evaluated.
    pub pruned: usize,
}

/// Absolute slack added around each candidate's closed-form benefit
/// bound. One greedy step's exact benefit is `p(x)·t(x)·PMf(x)·(1−1/s)`
/// in real arithmetic (eq. (8) is linear in `PMf`); both that closed
/// form and the evaluator's `baseline − patched` difference round to
/// within a few n·ε of it (n = class count, magnitudes ≤ 1), so a fixed
/// `1e-12` plus `1e-15` per class over-covers the float divergence by
/// orders of magnitude while staying far below any real benefit gap.
fn prune_slop(classes: usize) -> f64 {
    1e-12 + 1e-15 * classes as f64
}

/// [`allocate_improvement_budget`] with a certified static pre-pruning
/// stage in front of the compiled evaluator.
///
/// Each greedy round first bounds every candidate's benefit with the
/// closed-form derivative certificate (the same eq.-(8) sensitivity
/// `hmdiv-analyze` certifies: benefit `= p(x)·t(x)·PMf(x)·(1−1/s)`,
/// bracketed by [`prune_slop`]); candidates whose upper bound cannot
/// reach the best lower bound are discarded *without* evaluation. Every
/// possible argmax survives — the bound brackets the exact benefit — and
/// survivors keep their original order, so running the unpruned
/// selection rule over them picks the **bit-identical** winner; only the
/// evaluation count changes (see [`PruneStats`]).
///
/// `threads > 1` evaluates survivors in contiguous chunks across that
/// many OS threads; the batch kernel is bit-identical per candidate
/// regardless of batch composition, so the result does not depend on
/// `threads`.
///
/// # Errors
///
/// As [`allocate_improvement_budget`].
pub fn allocate_improvement_budget_pruned(
    model: &SequentialModel,
    profile: &DemandProfile,
    budget: usize,
    step_factor: f64,
    threads: usize,
) -> Result<(BudgetAllocation, PruneStats), ModelError> {
    if step_factor.is_nan() || step_factor <= 1.0 || step_factor.is_infinite() {
        return Err(ModelError::InvalidFactor {
            value: step_factor,
            context: "step factor",
        });
    }
    if budget == 0 {
        return Err(ModelError::InvalidFactor {
            value: 0.0,
            context: "improvement budget",
        });
    }
    let threads = threads.max(1);
    let bound = model.compiled().bind_profile(profile)?;
    let mut compiled = CompiledModel::clone(model.compiled());
    let before = compiled.system_failure(&bound).value();
    let slop = prune_slop(compiled.len());
    let mut stats = PruneStats::default();
    let mut spent: std::collections::BTreeMap<ClassId, usize> = Default::default();
    let mut survivors: Vec<(u32, ClassParams)> = Vec::with_capacity(bound.len());
    for _ in 0..budget {
        stats.rounds += 1;
        let baseline = compiled.system_failure(&bound).value();
        // Static stage: closed-form benefit brackets, best lower bound.
        survivors.clear();
        let mut frontier = f64::NEG_INFINITY;
        let mut bounds: Vec<(u32, f64)> = Vec::with_capacity(bound.len());
        for (idx, weight) in bound.iter() {
            let cp = compiled.params_at(idx);
            let benefit =
                weight * cp.coherence_index() * cp.p_mf().value() * (1.0 - 1.0 / step_factor);
            frontier = frontier.max(benefit - slop);
            bounds.push((idx, benefit));
        }
        stats.candidates += bounds.len();
        // Survivors in original (bound-iteration) order: everything whose
        // certified best case reaches the frontier.
        for (idx, benefit) in bounds {
            if benefit + slop >= frontier {
                survivors.push((
                    idx,
                    compiled.params_at(idx).with_machine_improved(step_factor)?,
                ));
            }
        }
        stats.evaluated += survivors.len();
        let patched = evaluate_chunked(&compiled, &bound, &survivors, threads);
        // The unpruned selection rule over the surviving subsequence: the
        // first maximizer of the full list survives and stays first.
        let mut best: Option<(u32, f64)> = None;
        for ((idx, _), failure) in survivors.iter().zip(&patched) {
            let benefit = baseline - failure.value();
            match &best {
                Some((_, b)) if *b >= benefit => {}
                _ => best = Some((*idx, benefit)),
            }
        }
        let (idx, _) = best.ok_or(ModelError::Empty {
            context: "demand profile",
        })?;
        let improved = compiled.params_at(idx).with_machine_improved(step_factor)?;
        compiled.patch(idx, improved);
        *spent
            .entry(compiled.universe().class(idx).clone())
            .or_insert(0) += 1;
    }
    stats.pruned = stats.candidates - stats.evaluated;
    let after = compiled.system_failure(&bound).value();
    Ok((
        BudgetAllocation {
            allocation: spent.into_iter().collect(),
            before,
            after,
            model: SequentialModel::new(compiled.to_model_params()),
        },
        stats,
    ))
}

/// Evaluates candidate patches through the lane-blocked batch kernel,
/// split into contiguous chunks across `threads` OS threads. Per-candidate
/// results are independent of batch composition, so the concatenation is
/// bit-identical to a single-threaded call.
fn evaluate_chunked(
    compiled: &CompiledModel,
    bound: &crate::compiled::CompiledProfile,
    candidates: &[(u32, ClassParams)],
    threads: usize,
) -> Vec<hmdiv_prob::Probability> {
    if threads <= 1 || candidates.len() < 2 {
        return compiled.system_failure_patched_batch(bound, candidates);
    }
    let chunk = candidates.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = candidates
            .chunks(chunk)
            .map(|part| scope.spawn(move || compiled.system_failure_patched_batch(bound, part)))
            .collect();
        let mut out = Vec::with_capacity(candidates.len());
        for handle in handles {
            out.extend(handle.join().expect("prune evaluation worker panicked"));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{paper, ModelParams};

    #[test]
    fn difficult_class_dominates_both_profiles() {
        let model = paper::example_model().unwrap();
        for profile in [
            paper::trial_profile().unwrap(),
            paper::field_profile().unwrap(),
        ] {
            let ranked = rank_improvement_targets(&model, &profile).unwrap();
            assert_eq!(ranked[0].class.name(), "difficult");
            assert!(ranked[0].max_benefit > ranked[1].max_benefit);
        }
    }

    #[test]
    fn leverage_formula_matches_exact_benefit_for_full_elimination() {
        // Eliminating machine failure on a class (factor → ∞ approximated
        // by setting PMf = 0) reduces system failure by exactly
        // p(x)·t(x)·PMf(x).
        let model = paper::example_model().unwrap();
        let field = paper::field_profile().unwrap();
        let ranked = rank_improvement_targets(&model, &field).unwrap();
        for lever in &ranked {
            let pred = Scenario::new()
                .set_machine_failure(lever.class.clone(), hmdiv_prob::Probability::ZERO)
                .predict(&model, &field)
                .unwrap();
            assert!(
                (pred.improvement() - lever.max_benefit).abs() < 1e-12,
                "{}: {} vs {}",
                lever.class,
                pred.improvement(),
                lever.max_benefit
            );
        }
    }

    #[test]
    fn finite_factor_benefit_is_fraction_of_max() {
        let model = paper::example_model().unwrap();
        let field = paper::field_profile().unwrap();
        let class = ClassId::new("difficult");
        let benefit10 = improvement_benefit(&model, &field, &class, 10.0).unwrap();
        let ranked = rank_improvement_targets(&model, &field).unwrap();
        let max = ranked
            .iter()
            .find(|l| l.class == class)
            .unwrap()
            .max_benefit;
        // Factor 10 removes 90% of PMf, hence 90% of the max benefit.
        assert!((benefit10 - 0.9 * max).abs() < 1e-12);
    }

    #[test]
    fn budget_goes_to_difficult_first() {
        let model = paper::example_model().unwrap();
        let field = paper::field_profile().unwrap();
        let alloc = allocate_improvement_budget(&model, &field, 3, 2.0).unwrap();
        let difficult_units = alloc
            .allocation
            .iter()
            .find(|(c, _)| c.name() == "difficult")
            .map(|(_, u)| *u)
            .unwrap_or(0);
        assert!(difficult_units >= 2, "{:?}", alloc.allocation);
        assert!(alloc.after < alloc.before);
        let total: usize = alloc.allocation.iter().map(|(_, u)| u).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn budget_validation() {
        let model = paper::example_model().unwrap();
        let field = paper::field_profile().unwrap();
        assert!(allocate_improvement_budget(&model, &field, 0, 2.0).is_err());
        assert!(allocate_improvement_budget(&model, &field, 1, 1.0).is_err());
        assert!(allocate_improvement_budget(&model, &field, 1, 0.5).is_err());
    }

    #[test]
    fn greedy_matches_exhaustive_for_tiny_budget() {
        // With budget 2, enumerate all allocations and check greedy's final
        // failure probability is minimal.
        let model = paper::example_model().unwrap();
        let field = paper::field_profile().unwrap();
        let greedy = allocate_improvement_budget(&model, &field, 2, 3.0).unwrap();
        let classes = ["easy", "difficult"];
        let mut best = f64::INFINITY;
        for a in classes {
            for b in classes {
                let m = Scenario::new()
                    .improve_machine(ClassId::new(a), 3.0)
                    .improve_machine(ClassId::new(b), 3.0)
                    .apply(&model)
                    .unwrap();
                best = best.min(m.system_failure(&field).unwrap().value());
            }
        }
        assert!(
            (greedy.after - best).abs() < 1e-12,
            "{} vs {}",
            greedy.after,
            best
        );
    }

    fn synthetic(n: usize) -> (SequentialModel, DemandProfile) {
        let p = |v: f64| hmdiv_prob::Probability::new(v).unwrap();
        let mut params = ModelParams::builder();
        let mut profile = DemandProfile::builder();
        for i in 0..n {
            let f = i as f64 / n as f64;
            params = params.class(
                format!("class{i:03}"),
                ClassParams::new(p(0.05 + 0.4 * f), p(0.1 + 0.3 * f), p(0.2 + 0.7 * f)),
            );
            profile = profile.class(format!("class{i:03}"), 1.0 + f);
        }
        (
            SequentialModel::new(params.build().unwrap()),
            profile.build().unwrap(),
        )
    }

    #[test]
    fn pruned_allocation_is_bit_identical_at_any_thread_count() {
        for (model, profile, budget, step) in [
            (
                paper::example_model().unwrap(),
                paper::field_profile().unwrap(),
                6,
                2.0,
            ),
            {
                let (m, p) = synthetic(23);
                (m, p, 9, 3.0)
            },
        ] {
            let plain = allocate_improvement_budget(&model, &profile, budget, step).unwrap();
            for threads in [1, 2, 7] {
                let (pruned, stats) =
                    allocate_improvement_budget_pruned(&model, &profile, budget, step, threads)
                        .unwrap();
                assert_eq!(pruned.allocation, plain.allocation, "threads={threads}");
                assert_eq!(pruned.before.to_bits(), plain.before.to_bits());
                assert_eq!(pruned.after.to_bits(), plain.after.to_bits());
                assert_eq!(
                    pruned.model.params(),
                    plain.model.params(),
                    "threads={threads}"
                );
                assert_eq!(stats.rounds, budget);
                assert_eq!(stats.candidates, stats.evaluated + stats.pruned);
                assert!(
                    stats.evaluated < stats.candidates,
                    "pruning never fired: {stats:?}"
                );
            }
        }
    }

    #[test]
    fn pruning_saves_most_evaluations_on_a_wide_model() {
        let (model, profile) = synthetic(64);
        let (_, stats) = allocate_improvement_budget_pruned(&model, &profile, 16, 2.0, 1).unwrap();
        // The certified bound should discard the bulk of the 64 candidates
        // per round, not just a sliver.
        assert!(
            (stats.pruned as f64) >= 0.25 * stats.candidates as f64,
            "{stats:?}"
        );
    }

    #[test]
    fn pruned_budget_validation_matches_unpruned() {
        let model = paper::example_model().unwrap();
        let field = paper::field_profile().unwrap();
        assert!(allocate_improvement_budget_pruned(&model, &field, 0, 2.0, 1).is_err());
        assert!(allocate_improvement_budget_pruned(&model, &field, 1, 1.0, 1).is_err());
        assert!(allocate_improvement_budget_pruned(&model, &field, 1, 0.5, 2).is_err());
    }

    #[test]
    fn leverage_fields_consistent() {
        let model = paper::example_model().unwrap();
        let field = paper::field_profile().unwrap();
        for lever in rank_improvement_targets(&model, &field).unwrap() {
            assert!(
                (lever.max_benefit - lever.weight * lever.coherence_index * lever.p_mf).abs()
                    < 1e-15
            );
        }
    }
}
