//! Reader cohorts: variability between humans (§5 item 2).
//!
//! "The readers have varying levels of ability … the trial data can indicate
//! the range of these abilities, show whether there are strong discrepancies
//! between humans, and if these affect different categories of demands
//! differently (as is believed to be the case)." A [`ReaderCohort`] holds a
//! weighted set of per-reader parameter tables over the *same* machine and
//! classes; it answers the programme-level questions: what is the average
//! system failure over the reader pool, how wide is the spread, who is the
//! weakest link, and does the improvement-targeting advice (§6.2) change
//! from reader to reader?

use std::fmt;

use serde::{Deserialize, Serialize};

use hmdiv_prob::Probability;

use crate::{ClassId, DemandProfile, ModelError, SequentialModel};

/// One reader's entry in a cohort.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortMember {
    /// Reader label (e.g. an anonymised ID).
    pub name: String,
    /// This reader's full sequential model (machine parameters included,
    /// shared across the cohort by construction convention).
    pub model: SequentialModel,
    /// The reader's share of the caseload (unnormalised weight).
    pub weight: f64,
}

/// A weighted pool of readers.
///
/// # Example
///
/// ```
/// use hmdiv_core::cohort::{CohortMember, ReaderCohort};
/// use hmdiv_core::paper;
///
/// # fn main() -> Result<(), hmdiv_core::ModelError> {
/// let cohort = ReaderCohort::new(vec![CohortMember {
///     name: "R1".into(),
///     model: paper::example_model()?,
///     weight: 1.0,
/// }])?;
/// let summary = cohort.evaluate(&paper::field_profile()?)?;
/// assert!((summary.mean.value() - 0.18902).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReaderCohort {
    members: Vec<CohortMember>,
}

/// Per-reader evaluation row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortRow {
    /// Reader label.
    pub name: String,
    /// Caseload share (normalised).
    pub share: f64,
    /// This reader's system failure probability under the profile.
    pub failure: Probability,
}

/// Cohort-level summary under a demand profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortSummary {
    /// Per-reader rows, worst (highest failure) first.
    pub rows: Vec<CohortRow>,
    /// Caseload-weighted mean failure probability (what the programme sees).
    pub mean: Probability,
    /// The best (lowest) individual failure probability.
    pub best: Probability,
    /// The worst (highest) individual failure probability.
    pub worst: Probability,
}

impl CohortSummary {
    /// The spread `worst − best`: the §5 "range of these abilities".
    #[must_use]
    pub fn spread(&self) -> f64 {
        self.worst.value() - self.best.value()
    }
}

impl ReaderCohort {
    /// Builds a cohort from members.
    ///
    /// # Errors
    ///
    /// * [`ModelError::Empty`] if no members are given.
    /// * [`ModelError::InvalidFactor`] for non-positive or non-finite
    ///   weights.
    pub fn new(members: Vec<CohortMember>) -> Result<Self, ModelError> {
        if members.is_empty() {
            return Err(ModelError::Empty {
                context: "reader cohort",
            });
        }
        for m in &members {
            if m.weight.is_nan() || m.weight <= 0.0 || m.weight.is_infinite() {
                return Err(ModelError::InvalidFactor {
                    value: m.weight,
                    context: "cohort member weight",
                });
            }
        }
        Ok(ReaderCohort { members })
    }

    /// Number of readers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cohort is empty (never true after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The members.
    #[must_use]
    pub fn members(&self) -> &[CohortMember] {
        &self.members
    }

    /// Evaluates the cohort under a profile. Each member's model is
    /// evaluated through its compiled dense representation (compiled lazily
    /// on first use, then cached on the member's [`SequentialModel`]).
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownClass`] if the profile mentions a class outside
    /// any member's class universe.
    pub fn evaluate(&self, profile: &DemandProfile) -> Result<CohortSummary, ModelError> {
        self.evaluate_par(profile, 1)
    }

    /// [`ReaderCohort::evaluate`] sharded across the `hmdiv_prob::par`
    /// executor: reader index is the task id and per-reader failure
    /// probabilities ride the in-order merge, so thousand-reader programmes
    /// evaluate in parallel while the summary — every bit of it — matches
    /// the sequential walk at any thread count.
    ///
    /// # Errors
    ///
    /// As [`ReaderCohort::evaluate`]; with several failing members, the
    /// lowest-indexed member's error is returned.
    pub fn evaluate_par(
        &self,
        profile: &DemandProfile,
        threads: usize,
    ) -> Result<CohortSummary, ModelError> {
        let failures: Vec<Result<Probability, ModelError>> = hmdiv_prob::par::run_tasks_scoped(
            "core.cohort",
            0,
            self.members.len() as u64,
            threads,
            Vec::new,
            |id, _rng, acc: &mut Vec<Result<Probability, ModelError>>| {
                let compiled = self.members[id as usize].model.compiled();
                acc.push(
                    compiled
                        .bind_profile(profile)
                        .map(|bound| compiled.system_failure(&bound)),
                );
            },
        );
        let failures = failures.into_iter().collect::<Result<Vec<_>, _>>()?;
        self.summarise(&failures)
    }

    /// Assembles a summary from per-member failures in member order — the
    /// accumulation order shared by the sequential and sharded paths.
    fn summarise(&self, failures: &[Probability]) -> Result<CohortSummary, ModelError> {
        let total_w: f64 = self.members.iter().map(|m| m.weight).sum();
        let mut rows = Vec::with_capacity(self.members.len());
        let mut mean = 0.0;
        for (m, &failure) in self.members.iter().zip(failures) {
            let share = m.weight / total_w;
            mean += share * failure.value();
            rows.push(CohortRow {
                name: m.name.clone(),
                share,
                failure,
            });
        }
        rows.sort_by(|a, b| {
            b.failure
                .value()
                .total_cmp(&a.failure.value())
                .then_with(|| a.name.cmp(&b.name))
        });
        // `new` rejects empty cohorts, so rows is non-empty; keep the error
        // typed anyway rather than panicking on an impossible state.
        let empty = || ModelError::Empty {
            context: "reader cohort",
        };
        let best = rows.last().map(|r| r.failure).ok_or_else(empty)?;
        let worst = rows.first().map(|r| r.failure).ok_or_else(empty)?;
        Ok(CohortSummary {
            rows,
            mean: Probability::clamped(mean),
            best,
            worst,
        })
    }

    /// For each reader, the class whose machine improvement would benefit
    /// them most (§6.2 per reader). Readers can disagree: a heavily biased
    /// reader may gain most from improving a class that barely matters to a
    /// careful one.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownClass`] on profile/universe mismatch;
    /// [`ModelError::Empty`] if the ranking comes back empty.
    pub fn preferred_targets(
        &self,
        profile: &DemandProfile,
    ) -> Result<Vec<(String, ClassId)>, ModelError> {
        let mut out = Vec::with_capacity(self.members.len());
        for m in &self.members {
            let ranked = crate::design::rank_improvement_targets(&m.model, profile)?;
            let top = ranked
                .first()
                .ok_or(ModelError::Empty {
                    context: "demand profile",
                })?
                .class
                .clone();
            out.push((m.name.clone(), top));
        }
        Ok(out)
    }
}

impl fmt::Display for ReaderCohort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cohort of {} readers", self.members.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{paper, ClassParams, ModelParams};

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn reader_model(
        hf_ms_easy: f64,
        hf_mf_easy: f64,
        hf_ms_diff: f64,
        hf_mf_diff: f64,
    ) -> SequentialModel {
        SequentialModel::new(
            ModelParams::builder()
                .class(
                    "easy",
                    ClassParams::new(p(0.07), p(hf_ms_easy), p(hf_mf_easy)),
                )
                .class(
                    "difficult",
                    ClassParams::new(p(0.41), p(hf_ms_diff), p(hf_mf_diff)),
                )
                .build()
                .unwrap(),
        )
    }

    fn cohort() -> ReaderCohort {
        ReaderCohort::new(vec![
            CohortMember {
                name: "careful".into(),
                model: reader_model(0.10, 0.12, 0.30, 0.55),
                weight: 1.0,
            },
            CohortMember {
                name: "paper-average".into(),
                model: paper::example_model().unwrap(),
                weight: 2.0,
            },
            CohortMember {
                name: "bias-prone".into(),
                model: reader_model(0.14, 0.40, 0.40, 0.98),
                weight: 1.0,
            },
        ])
        .unwrap()
    }

    #[test]
    fn evaluation_orders_and_averages() {
        let field = paper::field_profile().unwrap();
        let summary = cohort().evaluate(&field).unwrap();
        assert_eq!(summary.rows.len(), 3);
        assert_eq!(summary.rows[0].name, "bias-prone");
        assert_eq!(summary.rows[2].name, "careful");
        assert!(summary.best < summary.mean && summary.mean < summary.worst);
        assert!(summary.spread() > 0.05);
        // Weighted mean respects caseload shares (paper-average has half).
        let manual: f64 = summary
            .rows
            .iter()
            .map(|r| r.share * r.failure.value())
            .sum();
        assert!((summary.mean.value() - manual).abs() < 1e-12);
        let shares: f64 = summary.rows.iter().map(|r| r.share).sum();
        assert!((shares - 1.0).abs() < 1e-12);
    }

    #[test]
    fn targets_can_differ_between_readers() {
        // Give the careful reader a machine-insensitive difficult class but
        // a machine-sensitive easy class, so their best target flips.
        let contrarian = ReaderCohort::new(vec![
            CohortMember {
                name: "standard".into(),
                model: paper::example_model().unwrap(),
                weight: 1.0,
            },
            CohortMember {
                name: "easy-coupled".into(),
                model: reader_model(0.10, 0.60, 0.40, 0.42),
                weight: 1.0,
            },
        ])
        .unwrap();
        let field = paper::field_profile().unwrap();
        let targets = contrarian.preferred_targets(&field).unwrap();
        let of = |name: &str| {
            targets
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, c)| c.name().to_owned())
                .unwrap()
        };
        assert_eq!(of("standard"), "difficult");
        assert_eq!(of("easy-coupled"), "easy");
    }

    #[test]
    fn sharded_evaluation_is_thread_count_invariant() {
        let big = ReaderCohort::new(
            (0..37)
                .map(|i| {
                    let f = f64::from(i) / 40.0;
                    CohortMember {
                        name: format!("r{i:02}"),
                        model: reader_model(
                            0.08 + f * 0.2,
                            0.1 + f * 0.3,
                            0.3 + f * 0.2,
                            0.5 + f * 0.4,
                        ),
                        weight: 1.0 + f,
                    }
                })
                .collect(),
        )
        .unwrap();
        let field = paper::field_profile().unwrap();
        let reference = big.evaluate(&field).unwrap();
        for threads in [2usize, 7] {
            let sharded = big.evaluate_par(&field, threads).unwrap();
            assert_eq!(sharded, reference, "threads={threads}");
            assert_eq!(
                sharded.mean.value().to_bits(),
                reference.mean.value().to_bits()
            );
        }
    }

    #[test]
    fn sharded_evaluation_surfaces_typed_errors() {
        let c = cohort();
        let odd = DemandProfile::builder().class("odd", 1.0).build().unwrap();
        for threads in [1usize, 3] {
            assert!(matches!(
                c.evaluate_par(&odd, threads),
                Err(ModelError::UnknownClass { ref class }) if class.name() == "odd"
            ));
        }
    }

    #[test]
    fn validation() {
        assert!(matches!(
            ReaderCohort::new(vec![]),
            Err(ModelError::Empty { .. })
        ));
        let bad = ReaderCohort::new(vec![CohortMember {
            name: "zero".into(),
            model: paper::example_model().unwrap(),
            weight: 0.0,
        }]);
        assert!(matches!(bad, Err(ModelError::InvalidFactor { .. })));
    }

    #[test]
    fn single_reader_cohort_degenerates() {
        let solo = ReaderCohort::new(vec![CohortMember {
            name: "only".into(),
            model: paper::example_model().unwrap(),
            weight: 3.0,
        }])
        .unwrap();
        let field = paper::field_profile().unwrap();
        let summary = solo.evaluate(&field).unwrap();
        assert_eq!(summary.best, summary.worst);
        assert!((summary.mean.value() - 0.18902).abs() < 1e-9);
        assert_eq!(summary.spread(), 0.0);
        assert_eq!(solo.len(), 1);
        assert!(!solo.is_empty());
    }
}
