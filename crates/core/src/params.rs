use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use hmdiv_prob::Probability;

use crate::{ClassId, ModelError};

/// The sequential model's parameters for one class of demands (paper §4):
///
/// * `p_mf` — probability of machine (CADT) false-negative failure,
///   `PMf(x)`;
/// * `p_hf_given_ms` — probability of reader failure given the machine
///   succeeded, `PHf|Ms(x)`;
/// * `p_hf_given_mf` — probability of reader failure given the machine
///   failed, `PHf|Mf(x)`.
///
/// # Example
///
/// The paper's "difficult" class (§5 table 1):
///
/// ```
/// use hmdiv_core::ClassParams;
/// use hmdiv_prob::Probability;
///
/// # fn main() -> Result<(), hmdiv_prob::ProbError> {
/// let difficult = ClassParams::new(
///     Probability::new(0.41)?,
///     Probability::new(0.4)?,
///     Probability::new(0.9)?,
/// );
/// // Per-class failure: 0.4·0.59 + 0.9·0.41 = 0.605 (paper table 2).
/// assert!((difficult.class_failure().value() - 0.605).abs() < 1e-12);
/// // Coherence index t(x) = 0.9 − 0.4 = 0.5.
/// assert!((difficult.coherence_index() - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassParams {
    p_mf: Probability,
    p_hf_given_ms: Probability,
    p_hf_given_mf: Probability,
}

impl ClassParams {
    /// Creates the parameter triple for a class.
    #[must_use]
    pub fn new(p_mf: Probability, p_hf_given_ms: Probability, p_hf_given_mf: Probability) -> Self {
        ClassParams {
            p_mf,
            p_hf_given_ms,
            p_hf_given_mf,
        }
    }

    /// `PMf(x)`: machine false-negative probability.
    #[must_use]
    pub fn p_mf(&self) -> Probability {
        self.p_mf
    }

    /// `PMs(x) = 1 − PMf(x)`: machine success probability.
    #[must_use]
    pub fn p_ms(&self) -> Probability {
        self.p_mf.complement()
    }

    /// `PHf|Ms(x)`: reader failure probability when the machine succeeds.
    #[must_use]
    pub fn p_hf_given_ms(&self) -> Probability {
        self.p_hf_given_ms
    }

    /// `PHf|Mf(x)`: reader failure probability when the machine fails.
    #[must_use]
    pub fn p_hf_given_mf(&self) -> Probability {
        self.p_hf_given_mf
    }

    /// The class-conditional system failure probability (the bracket of the
    /// paper's eq. 7):
    ///
    /// ```text
    /// PHf(x) = PHf|Ms(x)·PMs(x) + PHf|Mf(x)·PMf(x)
    /// ```
    #[must_use]
    pub fn class_failure(&self) -> Probability {
        self.p_hf_given_mf.mix(self.p_hf_given_ms, self.p_mf)
    }

    /// The coherence / importance index `t(x) = PHf|Mf(x) − PHf|Ms(x)`
    /// (eq. 9): how much a machine failure raises the reader's failure
    /// probability. Signed, in `[-1, 1]`; negative values mean the reader
    /// does *better* when the machine fails (e.g. distrust-driven extra
    /// scrutiny).
    #[must_use]
    pub fn coherence_index(&self) -> f64 {
        self.p_hf_given_mf.value() - self.p_hf_given_ms.value()
    }

    /// The probability of the joint event "machine fails and human fails"
    /// for this class, `PMf(x)·PHf|Mf(x)`.
    #[must_use]
    pub fn p_both_fail(&self) -> Probability {
        self.p_mf * self.p_hf_given_mf
    }

    /// Returns a copy with the machine failure probability replaced.
    #[must_use]
    pub fn with_p_mf(&self, p_mf: Probability) -> Self {
        ClassParams { p_mf, ..*self }
    }

    /// Returns a copy with the machine failure probability divided by
    /// `factor` (the paper's "reduction by 10").
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidFactor`] if `factor < 1.0` is not a
    /// genuine improvement, or is NaN/zero.
    pub fn with_machine_improved(&self, factor: f64) -> Result<Self, ModelError> {
        if factor.is_nan() || factor < 1.0 || factor.is_infinite() {
            return Err(ModelError::InvalidFactor {
                value: factor,
                context: "improvement factor",
            });
        }
        Ok(ClassParams {
            p_mf: Probability::clamped(self.p_mf.value() / factor),
            ..*self
        })
    }

    /// Returns a copy with both reader conditionals replaced.
    #[must_use]
    pub fn with_reader(&self, p_hf_given_ms: Probability, p_hf_given_mf: Probability) -> Self {
        ClassParams {
            p_hf_given_ms,
            p_hf_given_mf,
            ..*self
        }
    }
}

impl fmt::Display for ClassParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PMf={:.4}, PHf|Ms={:.4}, PHf|Mf={:.4}",
            self.p_mf.value(),
            self.p_hf_given_ms.value(),
            self.p_hf_given_mf.value()
        )
    }
}

/// A table of [`ClassParams`] per demand class — everything the sequential
/// model knows about the human–machine pair.
///
/// # Example
///
/// ```
/// use hmdiv_core::{ModelParams, ClassParams};
/// use hmdiv_prob::Probability;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = |v| Probability::new(v).unwrap();
/// let params = ModelParams::builder()
///     .class("easy", ClassParams::new(p(0.07), p(0.14), p(0.18)))
///     .class("difficult", ClassParams::new(p(0.41), p(0.4), p(0.9)))
///     .build()?;
/// assert_eq!(params.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    table: BTreeMap<ClassId, ClassParams>,
}

impl ModelParams {
    /// Starts building a parameter table.
    #[must_use]
    pub fn builder() -> ModelParamsBuilder {
        ModelParamsBuilder {
            table: BTreeMap::new(),
            duplicate: None,
        }
    }

    /// Number of classes with parameters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty (never true for a built table).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The parameters for a class.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MissingClass`] if the class is absent.
    pub fn class(&self, class: &ClassId) -> Result<&ClassParams, ModelError> {
        self.table
            .get(class)
            .ok_or_else(|| ModelError::MissingClass {
                class: class.clone(),
            })
    }

    /// The parameters for a class by name.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MissingClass`] if the class is absent.
    pub fn class_by_name(&self, name: &str) -> Result<&ClassParams, ModelError> {
        self.table
            .get(name)
            .ok_or_else(|| ModelError::MissingClass {
                class: ClassId::new(name),
            })
    }

    /// Iterates `(class, params)` pairs in class order.
    pub fn iter(&self) -> impl Iterator<Item = (&ClassId, &ClassParams)> {
        self.table.iter()
    }

    /// The classes in the table, in order.
    pub fn classes(&self) -> impl Iterator<Item = &ClassId> {
        self.table.keys()
    }

    /// Returns a copy with one class's parameters transformed.
    ///
    /// # Errors
    ///
    /// * [`ModelError::MissingClass`] if the class is absent.
    /// * Any error returned by `update`.
    pub fn with_class_updated(
        &self,
        class: &ClassId,
        update: impl FnOnce(&ClassParams) -> Result<ClassParams, ModelError>,
    ) -> Result<Self, ModelError> {
        let current = *self.class(class)?;
        let mut table = self.table.clone();
        table.insert(class.clone(), update(&current)?);
        Ok(ModelParams { table })
    }

    /// Returns a copy with every class's parameters transformed.
    ///
    /// # Errors
    ///
    /// Any error returned by `update`.
    pub fn map_classes(
        &self,
        mut update: impl FnMut(&ClassId, &ClassParams) -> Result<ClassParams, ModelError>,
    ) -> Result<Self, ModelError> {
        let mut table = BTreeMap::new();
        for (class, params) in &self.table {
            table.insert(class.clone(), update(class, params)?);
        }
        Ok(ModelParams { table })
    }
}

/// Builder for [`ModelParams`].
#[derive(Debug, Clone, Default)]
pub struct ModelParamsBuilder {
    table: BTreeMap<ClassId, ClassParams>,
    duplicate: Option<ClassId>,
}

impl ModelParamsBuilder {
    /// Adds parameters for a class.
    #[must_use]
    pub fn class(mut self, class: impl Into<ClassId>, params: ClassParams) -> Self {
        let class = class.into();
        if self.table.insert(class.clone(), params).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(class);
        }
        self
    }

    /// Builds the table.
    ///
    /// # Errors
    ///
    /// * [`ModelError::Empty`] if no classes were added.
    /// * [`ModelError::DuplicateClass`] if a class was added twice.
    pub fn build(self) -> Result<ModelParams, ModelError> {
        if let Some(class) = self.duplicate {
            return Err(ModelError::DuplicateClass { class });
        }
        if self.table.is_empty() {
            return Err(ModelError::Empty {
                context: "model parameter table",
            });
        }
        Ok(ModelParams { table: self.table })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn easy() -> ClassParams {
        ClassParams::new(p(0.07), p(0.14), p(0.18))
    }

    fn difficult() -> ClassParams {
        ClassParams::new(p(0.41), p(0.4), p(0.9))
    }

    #[test]
    fn class_failure_matches_paper_table2() {
        assert!((easy().class_failure().value() - 0.1428).abs() < 1e-12);
        assert!((difficult().class_failure().value() - 0.605).abs() < 1e-12);
    }

    #[test]
    fn coherence_index_matches_paper() {
        assert!((easy().coherence_index() - 0.04).abs() < 1e-12);
        assert!((difficult().coherence_index() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn coherence_index_can_be_negative() {
        // A reader who scrutinises harder when the machine (visibly) fails.
        let cp = ClassParams::new(p(0.3), p(0.5), p(0.2));
        assert!(cp.coherence_index() < 0.0);
    }

    #[test]
    fn machine_improvement_divides_p_mf() {
        let improved = easy().with_machine_improved(10.0).unwrap();
        assert!((improved.p_mf().value() - 0.007).abs() < 1e-12);
        // Reader behaviour unchanged (the paper's stated assumption).
        assert_eq!(improved.p_hf_given_ms(), easy().p_hf_given_ms());
        assert_eq!(improved.p_hf_given_mf(), easy().p_hf_given_mf());
    }

    #[test]
    fn improvement_factor_validated() {
        assert!(easy().with_machine_improved(0.5).is_err());
        assert!(easy().with_machine_improved(f64::NAN).is_err());
        assert!(easy().with_machine_improved(f64::INFINITY).is_err());
        assert!(easy().with_machine_improved(1.0).is_ok());
    }

    #[test]
    fn class_failure_is_mixture_bounds() {
        let cp = difficult();
        let f = cp.class_failure();
        assert!(f >= cp.p_hf_given_ms().min(cp.p_hf_given_mf()));
        assert!(f <= cp.p_hf_given_ms().max(cp.p_hf_given_mf()));
    }

    #[test]
    fn table_lookup_and_missing() {
        let params = ModelParams::builder()
            .class("easy", easy())
            .class("difficult", difficult())
            .build()
            .unwrap();
        assert_eq!(params.len(), 2);
        assert!(params.class_by_name("easy").is_ok());
        assert!(matches!(
            params.class_by_name("weird"),
            Err(ModelError::MissingClass { .. })
        ));
        assert!(matches!(
            params.class(&ClassId::new("weird")),
            Err(ModelError::MissingClass { .. })
        ));
    }

    #[test]
    fn builder_rejects_duplicates_and_empty() {
        assert!(matches!(
            ModelParams::builder()
                .class("a", easy())
                .class("a", easy())
                .build(),
            Err(ModelError::DuplicateClass { .. })
        ));
        assert!(matches!(
            ModelParams::builder().build(),
            Err(ModelError::Empty { .. })
        ));
    }

    #[test]
    fn with_class_updated_targets_one_class() {
        let params = ModelParams::builder()
            .class("easy", easy())
            .class("difficult", difficult())
            .build()
            .unwrap();
        let improved = params
            .with_class_updated(&ClassId::new("difficult"), |cp| {
                cp.with_machine_improved(10.0)
            })
            .unwrap();
        assert!(
            (improved.class_by_name("difficult").unwrap().p_mf().value() - 0.041).abs() < 1e-12
        );
        assert_eq!(improved.class_by_name("easy").unwrap(), &easy());
    }

    #[test]
    fn map_classes_applies_everywhere() {
        let params = ModelParams::builder()
            .class("easy", easy())
            .class("difficult", difficult())
            .build()
            .unwrap();
        let all_improved = params
            .map_classes(|_, cp| cp.with_machine_improved(2.0))
            .unwrap();
        assert!((all_improved.class_by_name("easy").unwrap().p_mf().value() - 0.035).abs() < 1e-12);
        assert!(
            (all_improved
                .class_by_name("difficult")
                .unwrap()
                .p_mf()
                .value()
                - 0.205)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn displays_read_well() {
        let s = easy().to_string();
        assert!(s.contains("PMf=0.0700"), "{s}");
    }
}
