//! The paper's §5 worked example, as ready-made constructors and the
//! published numbers as constants.
//!
//! The example has two classes of cases, "easy" and "difficult", with the
//! parameter table (paper table 1):
//!
//! | class     | trial p(x) | field p(x) | PMf  | PHf\|Mf | PHf\|Ms |
//! |-----------|-----------|------------|------|---------|---------|
//! | easy      | 0.8       | 0.9        | 0.07 | 0.18    | 0.14    |
//! | difficult | 0.2       | 0.1        | 0.41 | 0.90    | 0.40    |
//!
//! and reports (tables 2–3, values rounded to three decimals in the paper):
//!
//! * baseline: easy 0.143, difficult 0.605, trial 0.235, field 0.189;
//! * CADT improved ×10 on easy: easy 0.140, trial 0.233, field 0.187;
//! * CADT improved ×10 on difficult: difficult 0.421, trial 0.198,
//!   field 0.171.

use hmdiv_prob::Probability;

use crate::{ClassId, ClassParams, DemandProfile, ModelError, ModelParams, SequentialModel};

/// Name of the "easy" class.
pub const EASY: &str = "easy";
/// Name of the "difficult" class.
pub const DIFFICULT: &str = "difficult";

/// Paper table 1 parameters for the easy class: `PMf = 0.07`,
/// `PHf|Ms = 0.14`, `PHf|Mf = 0.18`.
///
/// # Errors
///
/// Never fails in practice; returns `Result` for uniformity with the
/// composite constructors.
pub fn easy_params() -> Result<ClassParams, ModelError> {
    Ok(ClassParams::new(
        Probability::new(0.07)?,
        Probability::new(0.14)?,
        Probability::new(0.18)?,
    ))
}

/// Paper table 1 parameters for the difficult class: `PMf = 0.41`,
/// `PHf|Ms = 0.40`, `PHf|Mf = 0.90`.
///
/// # Errors
///
/// Never fails in practice; returns `Result` for uniformity.
pub fn difficult_params() -> Result<ClassParams, ModelError> {
    Ok(ClassParams::new(
        Probability::new(0.41)?,
        Probability::new(0.40)?,
        Probability::new(0.90)?,
    ))
}

/// The complete §5 example model.
///
/// # Errors
///
/// Never fails in practice; returns `Result` for uniformity.
pub fn example_model() -> Result<SequentialModel, ModelError> {
    Ok(SequentialModel::new(
        ModelParams::builder()
            .class(EASY, easy_params()?)
            .class(DIFFICULT, difficult_params()?)
            .build()?,
    ))
}

/// The trial demand profile: 80% easy, 20% difficult.
///
/// # Errors
///
/// Never fails in practice; returns `Result` for uniformity.
pub fn trial_profile() -> Result<DemandProfile, ModelError> {
    DemandProfile::builder()
        .class(EASY, 0.8)
        .class(DIFFICULT, 0.2)
        .build()
}

/// The field demand profile: 90% easy, 10% difficult.
///
/// # Errors
///
/// Never fails in practice; returns `Result` for uniformity.
pub fn field_profile() -> Result<DemandProfile, ModelError> {
    DemandProfile::builder()
        .class(EASY, 0.9)
        .class(DIFFICULT, 0.1)
        .build()
}

/// The model with the CADT improved by a factor of 10 on the easy class
/// (table 3, left half).
///
/// # Errors
///
/// Never fails in practice; returns `Result` for uniformity.
pub fn model_improved_on_easy() -> Result<SequentialModel, ModelError> {
    let base = example_model()?;
    let params = base
        .params()
        .with_class_updated(&ClassId::new(EASY), |cp| cp.with_machine_improved(10.0))?;
    Ok(SequentialModel::new(params))
}

/// The model with the CADT improved by a factor of 10 on the difficult
/// class (table 3, right half).
///
/// # Errors
///
/// Never fails in practice; returns `Result` for uniformity.
pub fn model_improved_on_difficult() -> Result<SequentialModel, ModelError> {
    let base = example_model()?;
    let params = base
        .params()
        .with_class_updated(&ClassId::new(DIFFICULT), |cp| {
            cp.with_machine_improved(10.0)
        })?;
    Ok(SequentialModel::new(params))
}

/// The published values, exact where the arithmetic is exact and as printed
/// (3 decimals) where the paper rounds.
pub mod published {
    /// Table 2: failure probability on easy cases (paper prints 0.143).
    pub const EASY_FAILURE: f64 = 0.1428;
    /// Table 2: failure probability on difficult cases.
    pub const DIFFICULT_FAILURE: f64 = 0.605;
    /// Table 2: all cases, trial profile (paper prints 0.235).
    pub const TRIAL_FAILURE: f64 = 0.23524;
    /// Table 2: all cases, field profile (paper prints 0.189).
    pub const FIELD_FAILURE: f64 = 0.18902;
    /// Table 3: easy cases with CADT improved on easy (paper prints 0.140).
    pub const EASY_FAILURE_IMPROVED_EASY: f64 = 0.14028;
    /// Table 3: all cases, trial profile, improved on easy (prints 0.233).
    pub const TRIAL_FAILURE_IMPROVED_EASY: f64 = 0.233_224;
    /// Table 3: all cases, field profile, improved on easy (prints 0.187).
    pub const FIELD_FAILURE_IMPROVED_EASY: f64 = 0.186_752;
    /// Table 3: difficult cases with CADT improved on difficult (prints 0.421).
    pub const DIFFICULT_FAILURE_IMPROVED_DIFFICULT: f64 = 0.4205;
    /// Table 3: all cases, trial profile, improved on difficult (prints 0.198).
    pub const TRIAL_FAILURE_IMPROVED_DIFFICULT: f64 = 0.198_34;
    /// Table 3: all cases, field profile, improved on difficult (prints 0.171).
    pub const FIELD_FAILURE_IMPROVED_DIFFICULT: f64 = 0.170_57;
    /// §6.1: coherence index of the easy class, `0.18 − 0.14`.
    pub const EASY_T: f64 = 0.04;
    /// §6.1: coherence index of the difficult class, `0.90 − 0.40`.
    pub const DIFFICULT_T: f64 = 0.5;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reproduced() {
        let m = example_model().unwrap();
        assert!(
            (m.class_failure(&ClassId::new(EASY)).unwrap().value() - published::EASY_FAILURE).abs()
                < 1e-12
        );
        assert!(
            (m.class_failure(&ClassId::new(DIFFICULT)).unwrap().value()
                - published::DIFFICULT_FAILURE)
                .abs()
                < 1e-12
        );
        assert!(
            (m.system_failure(&trial_profile().unwrap()).unwrap().value()
                - published::TRIAL_FAILURE)
                .abs()
                < 1e-12
        );
        assert!(
            (m.system_failure(&field_profile().unwrap()).unwrap().value()
                - published::FIELD_FAILURE)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn table3_improved_on_easy_reproduced() {
        let m = model_improved_on_easy().unwrap();
        assert!(
            (m.class_failure(&ClassId::new(EASY)).unwrap().value()
                - published::EASY_FAILURE_IMPROVED_EASY)
                .abs()
                < 1e-12
        );
        // Difficult class untouched.
        assert!(
            (m.class_failure(&ClassId::new(DIFFICULT)).unwrap().value()
                - published::DIFFICULT_FAILURE)
                .abs()
                < 1e-12
        );
        assert!(
            (m.system_failure(&trial_profile().unwrap()).unwrap().value()
                - published::TRIAL_FAILURE_IMPROVED_EASY)
                .abs()
                < 1e-9
        );
        assert!(
            (m.system_failure(&field_profile().unwrap()).unwrap().value()
                - published::FIELD_FAILURE_IMPROVED_EASY)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn table3_improved_on_difficult_reproduced() {
        let m = model_improved_on_difficult().unwrap();
        assert!(
            (m.class_failure(&ClassId::new(DIFFICULT)).unwrap().value()
                - published::DIFFICULT_FAILURE_IMPROVED_DIFFICULT)
                .abs()
                < 1e-12
        );
        assert!(
            (m.system_failure(&trial_profile().unwrap()).unwrap().value()
                - published::TRIAL_FAILURE_IMPROVED_DIFFICULT)
                .abs()
                < 1e-9
        );
        assert!(
            (m.system_failure(&field_profile().unwrap()).unwrap().value()
                - published::FIELD_FAILURE_IMPROVED_DIFFICULT)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn paper_headline_conclusion_holds() {
        // Improving the CADT on the rare difficult cases beats improving it
        // on the common easy cases, under both profiles — the §5 punchline.
        let field = field_profile().unwrap();
        let trial = trial_profile().unwrap();
        let easy_improved = model_improved_on_easy().unwrap();
        let difficult_improved = model_improved_on_difficult().unwrap();
        assert!(
            difficult_improved.system_failure(&field).unwrap()
                < easy_improved.system_failure(&field).unwrap()
        );
        assert!(
            difficult_improved.system_failure(&trial).unwrap()
                < easy_improved.system_failure(&trial).unwrap()
        );
    }

    #[test]
    fn published_values_round_to_paper_print() {
        // The paper prints 3 decimals; our exact values must round to them.
        let rounds_to = |x: f64, printed: f64| (x * 1000.0).round() / 1000.0 == printed;
        assert!(rounds_to(published::EASY_FAILURE, 0.143));
        assert!(rounds_to(published::TRIAL_FAILURE, 0.235));
        assert!(rounds_to(published::FIELD_FAILURE, 0.189));
        assert!(rounds_to(published::EASY_FAILURE_IMPROVED_EASY, 0.140));
        assert!(rounds_to(published::TRIAL_FAILURE_IMPROVED_EASY, 0.233));
        assert!(rounds_to(published::FIELD_FAILURE_IMPROVED_EASY, 0.187));
        assert!(rounds_to(
            published::DIFFICULT_FAILURE_IMPROVED_DIFFICULT,
            0.421
        ));
        assert!(rounds_to(
            published::TRIAL_FAILURE_IMPROVED_DIFFICULT,
            0.198
        ));
        assert!(rounds_to(
            published::FIELD_FAILURE_IMPROVED_DIFFICULT,
            0.171
        ));
    }
}
