//! Dense compiled evaluation of the core models.
//!
//! Every hot path in the reproduction — eq. (8) `system_failure`, §5
//! scenario sweeps, §6.2 design ranking, uncertainty Monte-Carlo — used to
//! re-walk `BTreeMap<ClassId, _>` tables keyed by `Arc<str>` and clone whole
//! models per candidate. This module applies the compile-then-evaluate
//! architecture proven on RBDs (`hmdiv_rbd::compiled`) to the sequential and
//! parallel-detection models:
//!
//! * class names are interned once into a [`ClassUniverse`] of dense `u32`
//!   indices (sorted-name order — the order a `BTreeMap` iterates);
//! * a [`CompiledModel`] stores per-class parameters in parallel vectors
//!   over those indices (struct-of-arrays: `p_mf`, `p_hf_given_ms`,
//!   `p_hf_given_mf` as `Vec<f64>` mirrors of the exact `ClassParams`);
//! * a [`CompiledProfile`] resolves a [`DemandProfile`]'s classes to indices
//!   once, keeping weights in **profile insertion order** so summation
//!   order — and therefore every result bit — matches the map-based path;
//! * [`CompiledModel::patch`]/[`CompiledModel::restore`] mutate one class
//!   slot in place, so design ranking, budget allocation and importance
//!   sweeps evaluate candidates without cloning a model per candidate.
//!
//! Evaluation calls the *same* [`ClassParams`] methods as the map-based
//! reference (never algebraically-equivalent reformulations), which is what
//! makes compiled results bit-identical — pinned by
//! `crates/core/tests/compiled_equivalence.rs`.
//!
//! The batch entry points are **lane-blocked**: [`SCENARIO_LANES`] (or
//! [`PROFILE_LANES`]) *independent* evaluations advance per inner-loop
//! iteration over the dense slots, with fixed-width lane arrays the
//! compiler can autovectorize on stable rustc and a scalar remainder tail.
//! Lanes are whole evaluations, never pieces of one — each lane's
//! floating-point accumulation order is exactly the scalar order, so the
//! bit-identity contract survives the blocking. A lane block of scenarios
//! is patched into a strided scratch region (`[class][lane]` layout) by one
//! multi-patch sweep, then evaluated by one fused pass over the profile.
//!
//! Class-resolution failures surface uniformly as
//! [`ModelError::UnknownClass`].

use std::sync::Arc;

use hmdiv_prob::Probability;

use crate::adaptation::AdaptationResponse;
use crate::extrapolate::{Change, Scenario};
use crate::{
    ClassParams, ClassUniverse, DemandProfile, DetectionParams, ModelError, ModelParams,
    ParallelDetectionModel,
};

/// Independent scenario evaluations advanced per lane-blocked inner-loop
/// iteration. Eight `f64` lanes fill one 512-bit (or two 256-bit) vector
/// register rows, and a scenario block's strided scratch region stays small
/// (`classes × 8` values).
pub const SCENARIO_LANES: usize = 8;

/// Independent profile evaluations advanced per lane-blocked inner-loop
/// iteration. Profile lanes gather through per-lane index vectors (no
/// shared scratch rows), so a narrower width keeps the working set of
/// four index/weight slice pairs in registers.
pub const PROFILE_LANES: usize = 4;

/// A demand profile resolved against a [`ClassUniverse`]: dense indices plus
/// weights, in the profile's insertion order.
///
/// Binding is the only string work left on an evaluation path; once bound, a
/// profile can be evaluated against any patched state of the same compiled
/// model with pure slice indexing.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProfile {
    universe: Arc<ClassUniverse>,
    indices: Vec<u32>,
    weights: Vec<f64>,
}

impl CompiledProfile {
    /// Resolves a profile's classes against a universe.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownClass`] if the profile mentions a class the
    /// universe does not contain.
    pub fn bind(
        universe: &Arc<ClassUniverse>,
        profile: &DemandProfile,
    ) -> Result<Self, ModelError> {
        let mut indices = Vec::with_capacity(profile.len());
        let mut weights = Vec::with_capacity(profile.len());
        for (class, weight) in profile.iter() {
            indices.push(universe.resolve(class.name())?);
            weights.push(weight.value());
        }
        Ok(CompiledProfile {
            universe: Arc::clone(universe),
            indices,
            weights,
        })
    }

    /// The universe this profile is bound to.
    #[must_use]
    pub fn universe(&self) -> &Arc<ClassUniverse> {
        &self.universe
    }

    /// The dense class indices, in profile insertion order.
    #[must_use]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The profile weights, parallel to [`CompiledProfile::indices`].
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of profile entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the profile has no entries (never true for a bound profile).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Iterates `(index, weight)` pairs in profile insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.weights.iter().copied())
    }
}

/// The sequential model compiled to dense per-class storage.
///
/// Holds the exact [`ClassParams`] per universe index (evaluation reuses
/// their methods verbatim) plus struct-of-arrays `f64` mirrors for analyses
/// that consume raw columns (sensitivity gradients, decomposition,
/// importance sweeps).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledModel {
    universe: Arc<ClassUniverse>,
    params: Vec<ClassParams>,
    p_mf: Vec<f64>,
    p_hf_given_ms: Vec<f64>,
    p_hf_given_mf: Vec<f64>,
    /// `PHf(x)` per universe index: exactly the value
    /// `params[i].class_failure().value()` would produce, kept in sync by
    /// [`CompiledModel::patch`]. The lane kernels read this column instead
    /// of re-mixing the conditionals per evaluation.
    class_failure: Vec<f64>,
}

impl CompiledModel {
    /// Compiles a parameter table: interns the class names and lays the
    /// parameters out densely in universe (sorted-name) order.
    ///
    /// Recorded under the `core.compile` span with a
    /// `core.compile.classes` counter when observability is enabled.
    #[must_use]
    pub fn compile(params: &ModelParams) -> Self {
        let span = hmdiv_obs::span("core.compile");
        let universe = Arc::new(ClassUniverse::from_names(params.classes().cloned()));
        let mut dense = Vec::with_capacity(params.len());
        let mut p_mf = Vec::with_capacity(params.len());
        let mut p_hf_given_ms = Vec::with_capacity(params.len());
        let mut p_hf_given_mf = Vec::with_capacity(params.len());
        let mut class_failure = Vec::with_capacity(params.len());
        // `ModelParams::iter` walks the BTreeMap in sorted order, which is
        // exactly the universe's index order — the vectors stay aligned.
        for (_, cp) in params.iter() {
            dense.push(*cp);
            p_mf.push(cp.p_mf().value());
            p_hf_given_ms.push(cp.p_hf_given_ms().value());
            p_hf_given_mf.push(cp.p_hf_given_mf().value());
            class_failure.push(cp.class_failure().value());
        }
        hmdiv_obs::counter_add("core.compile.classes", params.len() as u64);
        drop(span);
        CompiledModel {
            universe,
            params: dense,
            p_mf,
            p_hf_given_ms,
            p_hf_given_mf,
            class_failure,
        }
    }

    /// The interned class universe.
    #[must_use]
    pub fn universe(&self) -> &Arc<ClassUniverse> {
        &self.universe
    }

    /// Number of classes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the model has no classes (never true for a compiled table).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// The parameters at a universe index.
    #[must_use]
    pub fn params_at(&self, index: u32) -> ClassParams {
        self.params[index as usize]
    }

    /// The dense parameter slots in universe order.
    #[must_use]
    pub fn params_slice(&self) -> &[ClassParams] {
        &self.params
    }

    /// `PMf(x)` per universe index.
    #[must_use]
    pub fn p_mf_slice(&self) -> &[f64] {
        &self.p_mf
    }

    /// `PHf|Ms(x)` per universe index.
    #[must_use]
    pub fn p_hf_given_ms_slice(&self) -> &[f64] {
        &self.p_hf_given_ms
    }

    /// `PHf|Mf(x)` per universe index.
    #[must_use]
    pub fn p_hf_given_mf_slice(&self) -> &[f64] {
        &self.p_hf_given_mf
    }

    /// `PHf(x)` per universe index — the class-failure column the lane
    /// kernels read (bit-for-bit `params_at(i).class_failure().value()`).
    #[must_use]
    pub fn class_failure_slice(&self) -> &[f64] {
        &self.class_failure
    }

    /// Binds a demand profile to this model's universe.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownClass`] if the profile mentions a class the
    /// model does not cover.
    pub fn bind_profile(&self, profile: &DemandProfile) -> Result<CompiledProfile, ModelError> {
        CompiledProfile::bind(&self.universe, profile)
    }

    /// Eq. (8) over a bound profile — the same sum, in the same order, as
    /// the map-based [`crate::SequentialModel::system_failure`], reading the
    /// precomputed class-failure column.
    #[must_use]
    pub fn system_failure(&self, profile: &CompiledProfile) -> Probability {
        let mut total = 0.0;
        for (idx, w) in profile.iter() {
            total += w * self.class_failure[idx as usize];
        }
        Probability::clamped(total)
    }

    /// The marginal machine failure `PMf = E_x[PMf(x)]` over a bound
    /// profile.
    #[must_use]
    pub fn machine_failure(&self, profile: &CompiledProfile) -> Probability {
        let mut total = 0.0;
        for (idx, w) in profile.iter() {
            total += w * self.params[idx as usize].p_mf().value();
        }
        Probability::clamped(total)
    }

    /// The Bayes-weighted marginal `P(Hf|Ms)` over a bound profile.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidFactor`] if `P(Ms) = 0` under the profile.
    pub fn human_failure_given_machine_success(
        &self,
        profile: &CompiledProfile,
    ) -> Result<Probability, ModelError> {
        let mut joint = 0.0;
        let mut marginal = 0.0;
        for (idx, w) in profile.iter() {
            let cp = &self.params[idx as usize];
            joint += w * cp.p_ms().value() * cp.p_hf_given_ms().value();
            marginal += w * cp.p_ms().value();
        }
        if marginal <= 0.0 {
            return Err(ModelError::InvalidFactor {
                value: marginal,
                context: "P(Ms) for conditioning (machine never succeeds under this profile)",
            });
        }
        Ok(Probability::clamped(joint / marginal))
    }

    /// The Bayes-weighted marginal `P(Hf|Mf)` over a bound profile.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidFactor`] if `P(Mf) = 0` under the profile.
    pub fn human_failure_given_machine_failure(
        &self,
        profile: &CompiledProfile,
    ) -> Result<Probability, ModelError> {
        let mut joint = 0.0;
        let mut marginal = 0.0;
        for (idx, w) in profile.iter() {
            let cp = &self.params[idx as usize];
            joint += w * cp.p_mf().value() * cp.p_hf_given_mf().value();
            marginal += w * cp.p_mf().value();
        }
        if marginal <= 0.0 {
            return Err(ModelError::InvalidFactor {
                value: marginal,
                context: "P(Mf) for conditioning (machine never fails under this profile)",
            });
        }
        Ok(Probability::clamped(joint / marginal))
    }

    /// Batch evaluation: eq. (8) for each bound profile, lane-blocked
    /// [`PROFILE_LANES`] evaluations at a time with a scalar tail.
    ///
    /// Records `core.compiled.profile_evals` plus the
    /// `core.compiled.lane_blocks` / `core.compiled.lane_tail` kernel
    /// dispatch counters (once per batch).
    #[must_use]
    pub fn evaluate_profiles(&self, profiles: &[CompiledProfile]) -> Vec<Probability> {
        let mut out = Vec::with_capacity(profiles.len());
        let mut blocks = profiles.chunks_exact(PROFILE_LANES);
        for block in &mut blocks {
            out.extend(self.profile_block_failures(block));
        }
        let tail = blocks.remainder();
        out.extend(tail.iter().map(|p| self.system_failure(p)));
        hmdiv_obs::counter_add(
            "core.compiled.lane_blocks",
            (profiles.len() / PROFILE_LANES) as u64,
        );
        hmdiv_obs::counter_add("core.compiled.lane_tail", tail.len() as u64);
        hmdiv_obs::counter_add("core.compiled.profile_evals", profiles.len() as u64);
        out
    }

    /// One full lane block of bound profiles: the first `min(len)` entries
    /// of all lanes advance in a joint loop (one multiply-add per lane per
    /// iteration), then each lane finishes its remaining entries alone.
    /// Every lane accumulates its own entries in its own insertion order —
    /// exactly the scalar [`CompiledModel::system_failure`] order — so the
    /// block is bit-identical to four scalar calls.
    fn profile_block_failures(&self, block: &[CompiledProfile]) -> [Probability; PROFILE_LANES] {
        debug_assert_eq!(block.len(), PROFILE_LANES);
        let joint = block.iter().map(CompiledProfile::len).min().unwrap_or(0);
        let mut acc = [0.0_f64; PROFILE_LANES];
        for j in 0..joint {
            for (a, p) in acc.iter_mut().zip(block) {
                *a += p.weights[j] * self.class_failure[p.indices[j] as usize];
            }
        }
        for (a, p) in acc.iter_mut().zip(block) {
            for j in joint..p.len() {
                *a += p.weights[j] * self.class_failure[p.indices[j] as usize];
            }
        }
        acc.map(Probability::clamped)
    }

    /// [`CompiledModel::evaluate_profiles`] sharded across the
    /// `hmdiv_prob::par` executor: the lane-block index is the task id and
    /// dense result vectors ride the in-order merge, so results are
    /// bit-identical to the sequential batch at every thread count.
    ///
    /// `threads <= 1` (or a batch of fewer than two profiles) falls back to
    /// the sequential path.
    #[must_use]
    pub fn evaluate_profiles_par(
        &self,
        profiles: &[CompiledProfile],
        threads: usize,
    ) -> Vec<Probability> {
        if threads <= 1 || profiles.len() < 2 {
            return self.evaluate_profiles(profiles);
        }
        let blocks = profiles.len().div_ceil(PROFILE_LANES);
        // Pre-size each worker's results for its contiguous share of the
        // batch, so pushes never reallocate mid-run.
        let per_worker = blocks.div_ceil(threads) * PROFILE_LANES;
        let out = hmdiv_prob::par::run_tasks_scoped(
            "core.compiled.batch",
            0,
            blocks as u64,
            threads,
            || Vec::with_capacity(per_worker),
            |id, _rng, acc: &mut Vec<Probability>| {
                let start = id as usize * PROFILE_LANES;
                let block = &profiles[start..profiles.len().min(start + PROFILE_LANES)];
                if block.len() == PROFILE_LANES {
                    acc.extend(self.profile_block_failures(block));
                } else {
                    acc.extend(block.iter().map(|p| self.system_failure(p)));
                }
            },
        );
        hmdiv_obs::counter_add(
            "core.compiled.lane_blocks",
            (profiles.len() / PROFILE_LANES) as u64,
        );
        hmdiv_obs::counter_add(
            "core.compiled.lane_tail",
            (profiles.len() % PROFILE_LANES) as u64,
        );
        hmdiv_obs::counter_add("core.compiled.profile_evals", profiles.len() as u64);
        out
    }

    /// Batch evaluation: applies each scenario to the dense slots (batch
    /// patch/restore — the baseline is never cloned as a map) and evaluates
    /// eq. (8) under the bound profile, lane-blocked [`SCENARIO_LANES`]
    /// scenarios at a time with a scalar tail. A block's scenarios are
    /// multi-patched into a strided scratch region and evaluated by one
    /// fused pass; see [`LaneScratch`].
    ///
    /// Records `core.compiled.scenario_evals` plus the
    /// `core.compiled.lane_blocks` / `core.compiled.lane_tail` kernel
    /// dispatch counters (once per batch, on success).
    ///
    /// # Errors
    ///
    /// * [`ModelError::UnknownClass`] if a change targets a class outside
    ///   the universe.
    /// * [`ModelError::InvalidFactor`] for invalid factors/strengths.
    pub fn evaluate_scenarios(
        &self,
        scenarios: &[Scenario],
        profile: &CompiledProfile,
    ) -> Result<Vec<Probability>, ModelError> {
        let mut lanes = LaneScratch::for_model(self);
        let mut out = Vec::with_capacity(scenarios.len());
        let mut blocks = scenarios.chunks_exact(SCENARIO_LANES);
        for block in &mut blocks {
            out.extend(self.scenario_block_failures(block, profile, &mut lanes)?);
        }
        let tail = blocks.remainder();
        for scenario in tail {
            self.apply_scenario_into(scenario, &mut lanes.scratch)?;
            out.push(failure_over(&lanes.scratch, profile));
        }
        hmdiv_obs::counter_add(
            "core.compiled.lane_blocks",
            (scenarios.len() / SCENARIO_LANES) as u64,
        );
        hmdiv_obs::counter_add("core.compiled.lane_tail", tail.len() as u64);
        hmdiv_obs::counter_add("core.compiled.scenario_evals", scenarios.len() as u64);
        Ok(out)
    }

    /// Evaluates one full lane block of scenarios against a bound profile.
    ///
    /// The multi-patch sweep first broadcasts the baseline class-failure
    /// column across every lane of the rows the profile reads, then each
    /// lane overwrites only the cells its scenario changes: targeted-change
    /// scenarios without adaptation go through a sparse overlay (no
    /// baseline copy, no per-slot adaptation pass), everything else through
    /// the general [`CompiledModel::apply_scenario_into`] path. One fused
    /// pass then walks the profile once, advancing all lanes per entry.
    ///
    /// Lanes are independent evaluations: each lane's additions happen in
    /// its own profile order, so every lane is bit-identical to the scalar
    /// path.
    ///
    /// # Errors
    ///
    /// The lowest-indexed lane's error, matching sequential fail-fast
    /// order.
    fn scenario_block_failures(
        &self,
        block: &[Scenario],
        profile: &CompiledProfile,
        lanes: &mut LaneScratch,
    ) -> Result<[Probability; SCENARIO_LANES], ModelError> {
        debug_assert_eq!(block.len(), SCENARIO_LANES);
        if lanes.cf_block.len() != self.params.len() * SCENARIO_LANES {
            lanes
                .cf_block
                .resize(self.params.len() * SCENARIO_LANES, 0.0);
        }
        for &idx in profile.indices() {
            let i = idx as usize;
            lanes.cf_block[i * SCENARIO_LANES..][..SCENARIO_LANES].fill(self.class_failure[i]);
        }
        for (lane, scenario) in block.iter().enumerate() {
            if self.try_overlay(scenario, &mut lanes.overlay)? {
                for &(i, cp) in &lanes.overlay {
                    lanes.cf_block[i * SCENARIO_LANES + lane] = cp.class_failure().value();
                }
            } else {
                self.apply_scenario_into(scenario, &mut lanes.scratch)?;
                for &idx in profile.indices() {
                    let i = idx as usize;
                    lanes.cf_block[i * SCENARIO_LANES + lane] =
                        lanes.scratch[i].class_failure().value();
                }
            }
        }
        let mut acc = [0.0_f64; SCENARIO_LANES];
        for (idx, w) in profile.iter() {
            let row = &lanes.cf_block[idx as usize * SCENARIO_LANES..][..SCENARIO_LANES];
            for (a, &cf) in acc.iter_mut().zip(row) {
                *a += w * cf;
            }
        }
        Ok(acc.map(Probability::clamped))
    }

    /// Tries to express a scenario as a sparse overlay of targeted slot
    /// updates on the baseline: possible exactly when the adaptation is
    /// [`AdaptationResponse::None`] (a proven identity, so skipping the
    /// per-slot pass is bit-exact) and every change addresses a single
    /// class. Returns `Ok(false)` — overlay contents unspecified — when the
    /// scenario needs the general path. Validation errors surface in change
    /// order, exactly as [`CompiledModel::apply_scenario_into`] raises
    /// them; a whole-table change aborts to the general path *before*
    /// validating later changes, so the general pass re-raises errors in
    /// the original order.
    fn try_overlay(
        &self,
        scenario: &Scenario,
        overlay: &mut Vec<(usize, ClassParams)>,
    ) -> Result<bool, ModelError> {
        if !matches!(scenario.adaptation(), AdaptationResponse::None) {
            return Ok(false);
        }
        overlay.clear();
        for change in scenario.changes() {
            let (i, updated) = match change {
                Change::ImproveMachine { class, factor } => {
                    let i = self.universe.resolve(class.name())? as usize;
                    (
                        i,
                        self.overlay_base(overlay, i)
                            .with_machine_improved(*factor)?,
                    )
                }
                Change::SetMachineFailure { class, p_mf } => {
                    let i = self.universe.resolve(class.name())? as usize;
                    (i, self.overlay_base(overlay, i).with_p_mf(*p_mf))
                }
                Change::SetReader {
                    class,
                    p_hf_given_ms,
                    p_hf_given_mf,
                } => {
                    let i = self.universe.resolve(class.name())? as usize;
                    (
                        i,
                        self.overlay_base(overlay, i)
                            .with_reader(*p_hf_given_ms, *p_hf_given_mf),
                    )
                }
                Change::ImproveMachineEverywhere { .. } | Change::ScaleReaderEverywhere { .. } => {
                    return Ok(false)
                }
            };
            match overlay.iter_mut().find(|(j, _)| *j == i) {
                Some(slot) => slot.1 = updated,
                None => overlay.push((i, updated)),
            }
        }
        Ok(true)
    }

    /// The current value of slot `i` under a partially-built overlay —
    /// successive changes to one class compose, as they do on the scratch
    /// copy in the general path.
    fn overlay_base(&self, overlay: &[(usize, ClassParams)], i: usize) -> ClassParams {
        overlay
            .iter()
            .find(|(j, _)| *j == i)
            .map_or(self.params[i], |(_, cp)| *cp)
    }

    /// [`CompiledModel::evaluate_scenarios`] sharded across the
    /// `hmdiv_prob::par` executor: the lane-block index is the task id,
    /// each worker keeps one private [`LaneScratch`], and per-scenario
    /// results ride the in-order merge — bit-identical to the sequential
    /// batch at every thread count, including which error surfaces first
    /// (blocks run in task order; lanes within a block in scenario order).
    ///
    /// `threads <= 1` (or a batch of fewer than two scenarios) falls back
    /// to the sequential path.
    ///
    /// # Errors
    ///
    /// As [`CompiledModel::evaluate_scenarios`]; when several scenarios are
    /// invalid, the error of the lowest-indexed one is returned, matching
    /// the sequential fail-fast order.
    pub fn evaluate_scenarios_par(
        &self,
        scenarios: &[Scenario],
        profile: &CompiledProfile,
        threads: usize,
    ) -> Result<Vec<Probability>, ModelError> {
        if threads <= 1 || scenarios.len() < 2 {
            return self.evaluate_scenarios(scenarios, profile);
        }
        let blocks = scenarios.len().div_ceil(SCENARIO_LANES);
        // Pre-size each worker's shard: the scratch covers every slot and
        // the results its contiguous share of the batch.
        let per_worker = blocks.div_ceil(threads) * SCENARIO_LANES;
        /// Per-worker accumulator: the lane scratch is worker-private
        /// working state and deliberately not merged; only the in-order
        /// per-scenario results are.
        struct Shard {
            lanes: LaneScratch,
            out: Vec<Result<Probability, ModelError>>,
        }
        impl hmdiv_prob::par::Merge for Shard {
            fn merge(&mut self, later: Self) {
                self.out.merge(later.out);
            }
        }
        let shard = hmdiv_prob::par::run_tasks_scoped(
            "core.compiled.batch",
            0,
            blocks as u64,
            threads,
            || Shard {
                lanes: LaneScratch::for_model(self),
                out: Vec::with_capacity(per_worker),
            },
            |id, _rng, acc| {
                let start = id as usize * SCENARIO_LANES;
                let block = &scenarios[start..scenarios.len().min(start + SCENARIO_LANES)];
                if block.len() == SCENARIO_LANES {
                    match self.scenario_block_failures(block, profile, &mut acc.lanes) {
                        Ok(vals) => acc.out.extend(vals.into_iter().map(Ok)),
                        // One entry suffices: the batch surfaces the first
                        // error in merge order, and within the block this
                        // is already the lowest-indexed lane's.
                        Err(e) => acc.out.push(Err(e)),
                    }
                } else {
                    // Scalar remainder tail (always the last task).
                    for scenario in block {
                        let result = self
                            .apply_scenario_into(scenario, &mut acc.lanes.scratch)
                            .map(|()| failure_over(&acc.lanes.scratch, profile));
                        acc.out.push(result);
                    }
                }
            },
        );
        hmdiv_obs::counter_add(
            "core.compiled.lane_blocks",
            (scenarios.len() / SCENARIO_LANES) as u64,
        );
        hmdiv_obs::counter_add(
            "core.compiled.lane_tail",
            (scenarios.len() % SCENARIO_LANES) as u64,
        );
        hmdiv_obs::counter_add("core.compiled.scenario_evals", scenarios.len() as u64);
        shard.out.into_iter().collect()
    }

    /// Applies a scenario's changes (and adaptation) to `scratch`, which is
    /// reset to this model's baseline first. Slot-for-slot the same
    /// transformations as [`Scenario::apply`], without building maps.
    ///
    /// # Errors
    ///
    /// As [`CompiledModel::evaluate_scenarios`].
    pub fn apply_scenario_into(
        &self,
        scenario: &Scenario,
        scratch: &mut Vec<ClassParams>,
    ) -> Result<(), ModelError> {
        scenario.adaptation().validate()?;
        scratch.clear();
        scratch.extend_from_slice(&self.params);
        for change in scenario.changes() {
            match change {
                Change::ImproveMachine { class, factor } => {
                    let i = self.universe.resolve(class.name())? as usize;
                    scratch[i] = scratch[i].with_machine_improved(*factor)?;
                }
                Change::ImproveMachineEverywhere { factor } => {
                    for cp in scratch.iter_mut() {
                        *cp = cp.with_machine_improved(*factor)?;
                    }
                }
                Change::SetMachineFailure { class, p_mf } => {
                    let i = self.universe.resolve(class.name())? as usize;
                    scratch[i] = scratch[i].with_p_mf(*p_mf);
                }
                Change::SetReader {
                    class,
                    p_hf_given_ms,
                    p_hf_given_mf,
                } => {
                    let i = self.universe.resolve(class.name())? as usize;
                    scratch[i] = scratch[i].with_reader(*p_hf_given_ms, *p_hf_given_mf);
                }
                Change::ScaleReaderEverywhere { factor } => {
                    if factor.is_nan() || *factor < 0.0 || factor.is_infinite() {
                        return Err(ModelError::InvalidFactor {
                            value: *factor,
                            context: "reader scale factor",
                        });
                    }
                    for cp in scratch.iter_mut() {
                        *cp = cp.with_reader(
                            Probability::clamped(cp.p_hf_given_ms().value() * factor),
                            Probability::clamped(cp.p_hf_given_mf().value() * factor),
                        );
                    }
                }
            }
        }
        // Indirect effects: the reader adapts to the machine change,
        // referenced against the *baseline* machine parameters — the same
        // pass `Scenario::apply` makes over the map in sorted order.
        for (i, cp) in scratch.iter_mut().enumerate() {
            *cp = scenario.adaptation().apply(self.params[i].p_mf(), cp)?;
        }
        Ok(())
    }

    /// Replaces one class slot in place, returning the previous parameters
    /// (hand them back to [`CompiledModel::restore`] to undo). Keeps the
    /// struct-of-arrays mirrors in sync.
    pub fn patch(&mut self, index: u32, params: ClassParams) -> ClassParams {
        let i = index as usize;
        let old = self.params[i];
        self.params[i] = params;
        self.p_mf[i] = params.p_mf().value();
        self.p_hf_given_ms[i] = params.p_hf_given_ms().value();
        self.p_hf_given_mf[i] = params.p_hf_given_mf().value();
        self.class_failure[i] = params.class_failure().value();
        old
    }

    /// Undoes a [`CompiledModel::patch`] by re-patching the saved slot.
    pub fn restore(&mut self, index: u32, params: ClassParams) {
        self.patch(index, params);
    }

    /// Eq. (8) with one class slot temporarily replaced — patch, evaluate,
    /// restore, without mutating `self` (the override is applied inline).
    #[must_use]
    pub fn system_failure_patched(
        &self,
        profile: &CompiledProfile,
        index: u32,
        params: ClassParams,
    ) -> Probability {
        let patched = params.class_failure().value();
        let mut total = 0.0;
        for (idx, w) in profile.iter() {
            let cf = if idx == index {
                patched
            } else {
                self.class_failure[idx as usize]
            };
            total += w * cf;
        }
        Probability::clamped(total)
    }

    /// Eq. (8) for a batch of single-slot candidate patches — the design
    /// sweep's inner loop, lane-blocked [`SCENARIO_LANES`] candidates at a
    /// time. Each lane selects between its candidate's class-failure value
    /// and the baseline column per profile entry, so every lane is
    /// bit-identical to [`CompiledModel::system_failure_patched`] (the
    /// scalar tail).
    ///
    /// Records the `core.compiled.lane_blocks` / `core.compiled.lane_tail`
    /// kernel dispatch counters (once per batch).
    #[must_use]
    pub fn system_failure_patched_batch(
        &self,
        profile: &CompiledProfile,
        candidates: &[(u32, ClassParams)],
    ) -> Vec<Probability> {
        let mut out = Vec::with_capacity(candidates.len());
        let mut blocks = candidates.chunks_exact(SCENARIO_LANES);
        for block in &mut blocks {
            let mut cand_idx = [0_u32; SCENARIO_LANES];
            let mut cand_cf = [0.0_f64; SCENARIO_LANES];
            for (lane, (i, cp)) in block.iter().enumerate() {
                cand_idx[lane] = *i;
                cand_cf[lane] = cp.class_failure().value();
            }
            let mut acc = [0.0_f64; SCENARIO_LANES];
            for (idx, w) in profile.iter() {
                let base = self.class_failure[idx as usize];
                for lane in 0..SCENARIO_LANES {
                    let cf = if cand_idx[lane] == idx {
                        cand_cf[lane]
                    } else {
                        base
                    };
                    acc[lane] += w * cf;
                }
            }
            out.extend(acc.map(Probability::clamped));
        }
        let tail = blocks.remainder();
        out.extend(
            tail.iter()
                .map(|(i, cp)| self.system_failure_patched(profile, *i, *cp)),
        );
        hmdiv_obs::counter_add(
            "core.compiled.lane_blocks",
            (candidates.len() / SCENARIO_LANES) as u64,
        );
        hmdiv_obs::counter_add("core.compiled.lane_tail", tail.len() as u64);
        out
    }

    /// Materialises the current slots back into a map-based table (e.g. to
    /// hand a patched model to serde-facing callers).
    #[must_use]
    pub fn to_model_params(&self) -> ModelParams {
        let mut builder = ModelParams::builder();
        for (class, cp) in self.universe.iter().zip(&self.params) {
            builder = builder.class(class.clone(), *cp);
        }
        builder
            .build()
            .expect("a compiled model is non-empty with unique interned classes")
    }
}

/// Reusable scratch for the lane-blocked scenario kernels.
///
/// `cf_block` is the strided multi-patch region: `classes ×
/// SCENARIO_LANES` class-failure values laid out `[class][lane]`, so the
/// fused evaluation pass loads one contiguous lane-wide row per profile
/// entry. `scratch` holds a full baseline copy for general-path lanes
/// (whole-table changes or adaptation); `overlay` the `(slot, params)`
/// pairs of sparse-path lanes.
struct LaneScratch {
    scratch: Vec<ClassParams>,
    overlay: Vec<(usize, ClassParams)>,
    cf_block: Vec<f64>,
}

impl LaneScratch {
    fn for_model(model: &CompiledModel) -> Self {
        LaneScratch {
            scratch: Vec::with_capacity(model.params.len()),
            overlay: Vec::new(),
            cf_block: vec![0.0; model.params.len() * SCENARIO_LANES],
        }
    }
}

/// Eq. (8) over arbitrary parameter slots — shared by the baseline and
/// scratch (scenario-patched) paths. Same accumulation order and the same
/// `ClassParams::class_failure` calls as the map-based reference.
fn failure_over(params: &[ClassParams], profile: &CompiledProfile) -> Probability {
    let mut total = 0.0;
    for (idx, w) in profile.iter() {
        total += w * params[idx as usize].class_failure().value();
    }
    Probability::clamped(total)
}

/// The §3 parallel-detection model compiled to dense per-class storage.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledDetectionModel {
    universe: Arc<ClassUniverse>,
    params: Vec<DetectionParams>,
}

impl CompiledDetectionModel {
    /// Compiles a parallel-detection table (see [`CompiledModel::compile`]).
    #[must_use]
    pub fn compile(model: &ParallelDetectionModel) -> Self {
        let span = hmdiv_obs::span("core.compile");
        let universe = Arc::new(ClassUniverse::from_names(
            model.iter().map(|(c, _)| c.clone()),
        ));
        let params = model.iter().map(|(_, dp)| *dp).collect();
        hmdiv_obs::counter_add("core.compile.classes", model.len() as u64);
        drop(span);
        CompiledDetectionModel { universe, params }
    }

    /// The interned class universe.
    #[must_use]
    pub fn universe(&self) -> &Arc<ClassUniverse> {
        &self.universe
    }

    /// The parameters at a universe index.
    #[must_use]
    pub fn params_at(&self, index: u32) -> DetectionParams {
        self.params[index as usize]
    }

    /// Binds a demand profile to this model's universe.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownClass`] if the profile mentions a class the
    /// model does not cover.
    pub fn bind_profile(&self, profile: &DemandProfile) -> Result<CompiledProfile, ModelError> {
        CompiledProfile::bind(&self.universe, profile)
    }

    /// Eq. (1) aggregated over a bound profile — same order and the same
    /// `DetectionParams::class_failure` calls as the map-based path.
    #[must_use]
    pub fn system_failure(&self, profile: &CompiledProfile) -> Probability {
        let mut total = 0.0;
        for (idx, w) in profile.iter() {
            total += w * self.params[idx as usize].class_failure().value();
        }
        Probability::clamped(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use crate::ClassId;

    #[test]
    fn compile_aligns_universe_and_slots() {
        let model = paper::example_model().unwrap();
        let compiled = CompiledModel::compile(model.params());
        assert_eq!(compiled.len(), 2);
        for (i, class) in compiled.universe().iter().enumerate() {
            let cp = model.params().class(class).unwrap();
            assert_eq!(compiled.params_at(i as u32), *cp);
            assert_eq!(compiled.p_mf_slice()[i], cp.p_mf().value());
            assert_eq!(
                compiled.p_hf_given_ms_slice()[i],
                cp.p_hf_given_ms().value()
            );
            assert_eq!(
                compiled.p_hf_given_mf_slice()[i],
                cp.p_hf_given_mf().value()
            );
            assert_eq!(
                compiled.class_failure_slice()[i],
                cp.class_failure().value()
            );
        }
    }

    #[test]
    fn system_failure_bit_identical_to_map_walk() {
        let model = paper::example_model().unwrap();
        let compiled = CompiledModel::compile(model.params());
        for profile in [
            paper::trial_profile().unwrap(),
            paper::field_profile().unwrap(),
        ] {
            let bound = compiled.bind_profile(&profile).unwrap();
            // The pre-compilation reference: walk the map in profile order.
            let mut total = 0.0;
            for (class, weight) in profile.iter() {
                total +=
                    weight.value() * model.params().class(class).unwrap().class_failure().value();
            }
            let reference = Probability::clamped(total);
            assert_eq!(
                compiled.system_failure(&bound).value().to_bits(),
                reference.value().to_bits()
            );
        }
    }

    #[test]
    fn bind_rejects_unknown_class() {
        let model = paper::example_model().unwrap();
        let compiled = CompiledModel::compile(model.params());
        let odd = DemandProfile::builder().class("odd", 1.0).build().unwrap();
        assert!(matches!(
            compiled.bind_profile(&odd),
            Err(ModelError::UnknownClass { class }) if class.name() == "odd"
        ));
    }

    #[test]
    fn patch_restore_round_trips() {
        let model = paper::example_model().unwrap();
        let mut compiled = CompiledModel::compile(model.params());
        let pristine = compiled.clone();
        let field = paper::field_profile().unwrap();
        let bound = compiled.bind_profile(&field).unwrap();
        let baseline = compiled.system_failure(&bound);

        let idx = compiled.universe().resolve("difficult").unwrap();
        let improved = compiled.params_at(idx).with_machine_improved(10.0).unwrap();
        let old = compiled.patch(idx, improved);
        let patched = compiled.system_failure(&bound);
        assert!(patched < baseline);
        assert!(
            (patched.value() - paper::published::FIELD_FAILURE_IMPROVED_DIFFICULT).abs() < 1e-9
        );
        compiled.restore(idx, old);
        assert_eq!(compiled, pristine);
        assert_eq!(
            compiled.system_failure(&bound).value().to_bits(),
            baseline.value().to_bits()
        );
        // The non-mutating variant agrees with patch/evaluate/restore.
        assert_eq!(
            compiled
                .system_failure_patched(&bound, idx, improved)
                .value()
                .to_bits(),
            patched.value().to_bits()
        );
    }

    #[test]
    fn scenario_batch_matches_map_based_apply() {
        let model = paper::example_model().unwrap();
        let compiled = CompiledModel::compile(model.params());
        let field = paper::field_profile().unwrap();
        let bound = compiled.bind_profile(&field).unwrap();
        let scenarios = vec![
            Scenario::new(),
            Scenario::new().improve_machine(ClassId::new("easy"), 10.0),
            Scenario::new().improve_machine(ClassId::new("difficult"), 10.0),
            Scenario::new().improve_machine_everywhere(2.0),
            Scenario::new().scale_reader_everywhere(1.5),
        ];
        let batch = compiled.evaluate_scenarios(&scenarios, &bound).unwrap();
        for (scenario, got) in scenarios.iter().zip(&batch) {
            let reference = scenario
                .apply(&model)
                .unwrap()
                .system_failure(&field)
                .unwrap();
            assert_eq!(got.value().to_bits(), reference.value().to_bits());
        }
    }

    #[test]
    fn scenario_unknown_class_is_typed() {
        let model = paper::example_model().unwrap();
        let compiled = CompiledModel::compile(model.params());
        let field = paper::field_profile().unwrap();
        let bound = compiled.bind_profile(&field).unwrap();
        let ghost = vec![Scenario::new().improve_machine(ClassId::new("ghost"), 10.0)];
        assert!(matches!(
            compiled.evaluate_scenarios(&ghost, &bound),
            Err(ModelError::UnknownClass { class }) if class.name() == "ghost"
        ));
    }

    #[test]
    fn evaluate_profiles_batches() {
        let model = paper::example_model().unwrap();
        let compiled = CompiledModel::compile(model.params());
        let bound: Vec<CompiledProfile> = [
            paper::trial_profile().unwrap(),
            paper::field_profile().unwrap(),
        ]
        .iter()
        .map(|p| compiled.bind_profile(p).unwrap())
        .collect();
        let out = compiled.evaluate_profiles(&bound);
        assert!((out[0].value() - 0.23524).abs() < 1e-9);
        assert!((out[1].value() - 0.18902).abs() < 1e-9);
    }

    #[test]
    fn par_batches_bit_identical_at_any_thread_count() {
        let model = paper::example_model().unwrap();
        let compiled = CompiledModel::compile(model.params());
        let bound: Vec<CompiledProfile> = [
            paper::trial_profile().unwrap(),
            paper::field_profile().unwrap(),
        ]
        .iter()
        .map(|p| compiled.bind_profile(p).unwrap())
        .collect();
        let field = bound[1].clone();
        let scenarios: Vec<Scenario> = (0..40)
            .map(|i| {
                Scenario::new().improve_machine(
                    ClassId::new(if i % 2 == 0 { "easy" } else { "difficult" }),
                    1.5 + f64::from(i) * 0.1,
                )
            })
            .collect();
        let seq_profiles = compiled.evaluate_profiles(&bound);
        let seq_scenarios = compiled.evaluate_scenarios(&scenarios, &field).unwrap();
        for threads in [1usize, 2, 7] {
            let par_profiles = compiled.evaluate_profiles_par(&bound, threads);
            let par_scenarios = compiled
                .evaluate_scenarios_par(&scenarios, &field, threads)
                .unwrap();
            for (a, b) in seq_profiles.iter().zip(&par_profiles) {
                assert_eq!(
                    a.value().to_bits(),
                    b.value().to_bits(),
                    "threads={threads}"
                );
            }
            for (a, b) in seq_scenarios.iter().zip(&par_scenarios) {
                assert_eq!(
                    a.value().to_bits(),
                    b.value().to_bits(),
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn par_scenarios_report_lowest_indexed_error() {
        let model = paper::example_model().unwrap();
        let compiled = CompiledModel::compile(model.params());
        let field = paper::field_profile().unwrap();
        let bound = compiled.bind_profile(&field).unwrap();
        let mut scenarios: Vec<Scenario> = (0..10)
            .map(|_| Scenario::new().improve_machine(ClassId::new("easy"), 2.0))
            .collect();
        scenarios[7] = Scenario::new().improve_machine(ClassId::new("late-ghost"), 2.0);
        scenarios[3] = Scenario::new().improve_machine(ClassId::new("early-ghost"), 2.0);
        let sequential = compiled.evaluate_scenarios(&scenarios, &bound);
        for threads in [2usize, 7] {
            let par = compiled.evaluate_scenarios_par(&scenarios, &bound, threads);
            assert_eq!(par, sequential, "threads={threads}");
            assert!(matches!(
                par,
                Err(ModelError::UnknownClass { ref class }) if class.name() == "early-ghost"
            ));
        }
    }

    #[test]
    fn round_trip_to_model_params() {
        let model = paper::example_model().unwrap();
        let compiled = CompiledModel::compile(model.params());
        assert_eq!(&compiled.to_model_params(), model.params());
    }

    #[test]
    fn profile_subset_of_universe_is_fine() {
        // The profile may use fewer classes than the model knows.
        let model = paper::example_model().unwrap();
        let compiled = CompiledModel::compile(model.params());
        let only_easy = DemandProfile::builder().class("easy", 1.0).build().unwrap();
        let bound = compiled.bind_profile(&only_easy).unwrap();
        assert_eq!(bound.len(), 1);
        assert!(!bound.is_empty());
        assert!((compiled.system_failure(&bound).value() - 0.1428).abs() < 1e-12);
    }
}
