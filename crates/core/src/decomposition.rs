//! The covariance decomposition of eq. (10) (§6.2).
//!
//! ```text
//! PHf = E[PHf|Ms(x)] + E[PMf(x)]·E[t(x)] + cov(PMf(x), t(x))
//! ```
//!
//! Knowing the machine's average failure probability and the average effect
//! of its failures on the reader is *not enough*: if the machine fails most
//! on exactly the cases where its failures hurt the reader most (positive
//! covariance), the system is worse than the means predict — and vice versa.
//! This is the paper's argument for targeting improvement at classes with
//! high `t(x)` rather than at the machine's average failure rate.

use serde::{Deserialize, Serialize};

use hmdiv_prob::moments::weighted_covariance;
use hmdiv_prob::Probability;

use crate::{DemandProfile, ModelError, SequentialModel};

/// The terms of eq. (10), plus the reconstructed and direct totals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CovarianceDecomposition {
    /// `E[PHf|Ms(x)]` — the expected reader failure under machine success
    /// (the improvable-floor term).
    pub mean_hf_given_ms: f64,
    /// `E[PMf(x)]` — the machine's mean failure probability.
    pub mean_p_mf: f64,
    /// `E[t(x)]` — the mean coherence index.
    pub mean_t: f64,
    /// `cov(PMf(x), t(x))` over the demand profile.
    pub covariance: f64,
    /// The total reconstructed from the three terms.
    pub reconstructed: f64,
    /// The system failure computed directly from eq. (8), for
    /// reconciliation.
    pub direct: Probability,
}

impl CovarianceDecomposition {
    /// The contribution of machine unreliability *as the means see it*,
    /// `E[PMf]·E[t]`.
    #[must_use]
    pub fn mean_field_term(&self) -> f64 {
        self.mean_p_mf * self.mean_t
    }

    /// How much the means-only estimate misjudges the true failure
    /// probability: `direct − (E[PHf|Ms] + E[PMf]·E[t])`, which equals the
    /// covariance term (up to floating-point error).
    #[must_use]
    pub fn misjudgement_from_means(&self) -> f64 {
        self.direct.value() - (self.mean_hf_given_ms + self.mean_field_term())
    }

    /// Whether the decomposition reconciles with the direct computation to
    /// within `tol`.
    #[must_use]
    pub fn reconciles(&self, tol: f64) -> bool {
        (self.reconstructed - self.direct.value()).abs() <= tol
    }
}

/// Computes the eq. (10) decomposition of the model under a profile.
///
/// # Errors
///
/// [`ModelError::UnknownClass`] if the profile mentions a class without
/// parameters.
///
/// # Example
///
/// ```
/// use hmdiv_core::{paper, decomposition::decompose};
///
/// # fn main() -> Result<(), hmdiv_core::ModelError> {
/// let model = paper::example_model()?;
/// let trial = paper::trial_profile()?;
/// let d = decompose(&model, &trial)?;
/// assert!(d.reconciles(1e-12));
/// // The machine fails more exactly where its failures matter more
/// // (difficult cases have both higher PMf and higher t), so the
/// // covariance is positive: the system is worse than the means suggest.
/// assert!(d.covariance > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn decompose(
    model: &SequentialModel,
    profile: &DemandProfile,
) -> Result<CovarianceDecomposition, ModelError> {
    let compiled = model.compiled();
    let bound = compiled.bind_profile(profile)?;
    let mut weights = Vec::with_capacity(bound.len());
    let mut p_mfs = Vec::with_capacity(bound.len());
    let mut ts = Vec::with_capacity(bound.len());
    let mut hf_ms = Vec::with_capacity(bound.len());
    for (idx, w) in bound.iter() {
        let cp = compiled.params_at(idx);
        weights.push(w);
        p_mfs.push(cp.p_mf().value());
        ts.push(cp.coherence_index());
        hf_ms.push(cp.p_hf_given_ms().value());
    }
    let total_w: f64 = weights.iter().sum();
    let mean = |vals: &[f64]| -> f64 {
        weights.iter().zip(vals).map(|(w, v)| w * v).sum::<f64>() / total_w
    };
    let mean_hf_given_ms = mean(&hf_ms);
    let mean_p_mf = mean(&p_mfs);
    let mean_t = mean(&ts);
    let covariance = weighted_covariance(&weights, &p_mfs, &ts).map_err(ModelError::from)?;
    let reconstructed = mean_hf_given_ms + mean_p_mf * mean_t + covariance;
    let direct = model.system_failure(profile)?;
    Ok(CovarianceDecomposition {
        mean_hf_given_ms,
        mean_p_mf,
        mean_t,
        covariance,
        reconstructed,
        direct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassParams, ModelParams};

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn paper_model() -> SequentialModel {
        SequentialModel::new(
            ModelParams::builder()
                .class("easy", ClassParams::new(p(0.07), p(0.14), p(0.18)))
                .class("difficult", ClassParams::new(p(0.41), p(0.4), p(0.9)))
                .build()
                .unwrap(),
        )
    }

    fn trial() -> DemandProfile {
        DemandProfile::builder()
            .class("easy", 0.8)
            .class("difficult", 0.2)
            .build()
            .unwrap()
    }

    #[test]
    fn reconstruction_matches_direct_exactly() {
        let d = decompose(&paper_model(), &trial()).unwrap();
        assert!(d.reconciles(1e-12), "{d:?}");
        assert!((d.misjudgement_from_means() - d.covariance).abs() < 1e-12);
    }

    #[test]
    fn paper_example_covariance_is_positive() {
        // PMf: easy 0.07, difficult 0.41; t: easy 0.04, difficult 0.5 —
        // perfectly aligned, so cov > 0.
        let d = decompose(&paper_model(), &trial()).unwrap();
        assert!(d.covariance > 0.0);
        assert!((d.mean_p_mf - (0.8 * 0.07 + 0.2 * 0.41)).abs() < 1e-12);
        assert!((d.mean_t - (0.8 * 0.04 + 0.2 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn single_class_has_zero_covariance() {
        let m = SequentialModel::new(
            ModelParams::builder()
                .class("only", ClassParams::new(p(0.2), p(0.1), p(0.7)))
                .build()
                .unwrap(),
        );
        let profile = DemandProfile::builder().class("only", 1.0).build().unwrap();
        let d = decompose(&m, &profile).unwrap();
        assert!(d.covariance.abs() < 1e-15);
        assert!(d.reconciles(1e-12));
    }

    #[test]
    fn anti_aligned_design_gives_negative_covariance() {
        // Machine fails most on classes where its failure matters least —
        // the favourable design the paper hopes a diverse CADT achieves.
        let m = SequentialModel::new(
            ModelParams::builder()
                // high PMf, low t
                .class("a", ClassParams::new(p(0.5), p(0.30), p(0.32)))
                // low PMf, high t
                .class("b", ClassParams::new(p(0.05), p(0.1), p(0.8)))
                .build()
                .unwrap(),
        );
        let profile = DemandProfile::builder()
            .class("a", 0.5)
            .class("b", 0.5)
            .build()
            .unwrap();
        let d = decompose(&m, &profile).unwrap();
        assert!(d.covariance < 0.0);
        // The system is *better* than the means would predict.
        assert!(d.direct.value() < d.mean_hf_given_ms + d.mean_field_term());
        assert!(d.reconciles(1e-12));
    }

    #[test]
    fn missing_class_errors() {
        let profile = DemandProfile::builder()
            .class("ghost", 1.0)
            .build()
            .unwrap();
        assert!(matches!(
            decompose(&paper_model(), &profile),
            Err(ModelError::UnknownClass { .. })
        ));
    }

    #[test]
    fn decomposition_under_field_profile_differs() {
        let trial_d = decompose(&paper_model(), &trial()).unwrap();
        let field = DemandProfile::builder()
            .class("easy", 0.9)
            .class("difficult", 0.1)
            .build()
            .unwrap();
        let field_d = decompose(&paper_model(), &field).unwrap();
        assert!(field_d.direct < trial_d.direct);
        assert!(field_d.covariance < trial_d.covariance); // less weight on the aligned tail
        assert!(field_d.reconciles(1e-12));
    }
}
