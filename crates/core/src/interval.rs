//! Interval propagation: worst/best-case system predictions from parameter
//! intervals.
//!
//! The trial harness produces a confidence interval for every per-class
//! parameter. Eq. (8) is monotone in each parameter separately —
//! *increasing* in `PHf|Ms(x)` and `PHf|Mf(x)`, and increasing in `PMf(x)`
//! exactly when `t(x) ≥ 0` — so the extreme system failure probabilities
//! over the parameter box are attained at corner points that can be chosen
//! per class in closed form. This gives guaranteed (conservative) bounds
//! without Monte-Carlo, the deterministic counterpart of
//! [`crate::uncertainty::propagate`].

use serde::{Deserialize, Serialize};

use hmdiv_prob::Probability;

use crate::{ClassId, ClassParams, DemandProfile, ModelError, ModelParams, SequentialModel};

/// An interval `[lo, hi]` for each parameter of one class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassParamBox {
    /// Bounds on `PMf(x)`.
    pub p_mf: (Probability, Probability),
    /// Bounds on `PHf|Ms(x)`.
    pub p_hf_given_ms: (Probability, Probability),
    /// Bounds on `PHf|Mf(x)`.
    pub p_hf_given_mf: (Probability, Probability),
}

impl ClassParamBox {
    /// A degenerate box containing exactly one parameter triple.
    #[must_use]
    pub fn point(params: &ClassParams) -> Self {
        ClassParamBox {
            p_mf: (params.p_mf(), params.p_mf()),
            p_hf_given_ms: (params.p_hf_given_ms(), params.p_hf_given_ms()),
            p_hf_given_mf: (params.p_hf_given_mf(), params.p_hf_given_mf()),
        }
    }

    /// Validates that every interval is ordered.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidFactor`] if any `lo > hi`.
    pub fn validate(&self) -> Result<(), ModelError> {
        for (lo, hi, name) in [
            (self.p_mf.0, self.p_mf.1, "PMf interval"),
            (
                self.p_hf_given_ms.0,
                self.p_hf_given_ms.1,
                "PHf|Ms interval",
            ),
            (
                self.p_hf_given_mf.0,
                self.p_hf_given_mf.1,
                "PHf|Mf interval",
            ),
        ] {
            if lo > hi {
                return Err(ModelError::InvalidFactor {
                    value: lo.value(),
                    context: name,
                });
            }
        }
        Ok(())
    }

    /// The class failure probability maximised over the box.
    ///
    /// The conditionals take their upper bounds. For `PMf`, both of its
    /// endpoints are tried (the sign of `t` at the chosen conditionals
    /// decides which is worse, and trying both is exact either way).
    #[must_use]
    pub fn worst_class_failure(&self) -> Probability {
        let candidates = [
            ClassParams::new(self.p_mf.0, self.p_hf_given_ms.1, self.p_hf_given_mf.1),
            ClassParams::new(self.p_mf.1, self.p_hf_given_ms.1, self.p_hf_given_mf.1),
        ];
        candidates
            .iter()
            .map(ClassParams::class_failure)
            .max_by(|a, b| a.value().total_cmp(&b.value()))
            .expect("non-empty")
    }

    /// The class failure probability minimised over the box.
    #[must_use]
    pub fn best_class_failure(&self) -> Probability {
        let candidates = [
            ClassParams::new(self.p_mf.0, self.p_hf_given_ms.0, self.p_hf_given_mf.0),
            ClassParams::new(self.p_mf.1, self.p_hf_given_ms.0, self.p_hf_given_mf.0),
        ];
        candidates
            .iter()
            .map(ClassParams::class_failure)
            .min_by(|a, b| a.value().total_cmp(&b.value()))
            .expect("non-empty")
    }
}

/// A model with interval-valued parameters.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct IntervalModel {
    boxes: std::collections::BTreeMap<ClassId, ClassParamBox>,
}

impl IntervalModel {
    /// An empty interval model; add classes with
    /// [`IntervalModel::with_class`].
    #[must_use]
    pub fn new() -> Self {
        IntervalModel::default()
    }

    /// Adds (or replaces) a class's parameter box.
    ///
    /// # Errors
    ///
    /// Box validation errors.
    pub fn with_class(
        mut self,
        class: impl Into<ClassId>,
        param_box: ClassParamBox,
    ) -> Result<Self, ModelError> {
        param_box.validate()?;
        self.boxes.insert(class.into(), param_box);
        Ok(self)
    }

    /// Builds the degenerate interval model around a point model.
    #[must_use]
    pub fn from_point(model: &SequentialModel) -> Self {
        let boxes = model
            .params()
            .iter()
            .map(|(c, p)| (c.clone(), ClassParamBox::point(p)))
            .collect();
        IntervalModel { boxes }
    }

    /// Number of classes with boxes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// Whether no class has a box.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// Guaranteed bounds `[best, worst]` on the system failure probability
    /// over a profile: each class contributes its own extreme (the
    /// profile-weighted sum separates over classes, so per-class extremes
    /// are globally extreme).
    ///
    /// # Errors
    ///
    /// [`ModelError::MissingClass`] if the profile mentions a class without
    /// a box.
    ///
    /// # Example
    ///
    /// ```
    /// use hmdiv_core::interval::IntervalModel;
    /// use hmdiv_core::paper;
    ///
    /// # fn main() -> Result<(), hmdiv_core::ModelError> {
    /// // A degenerate box around the paper's model gives a zero-width bound.
    /// let im = IntervalModel::from_point(&paper::example_model()?);
    /// let field = paper::field_profile()?;
    /// let (lo, hi) = im.system_failure_bounds(&field)?;
    /// assert!((lo.value() - 0.18902).abs() < 1e-9);
    /// assert_eq!(lo, hi);
    /// # Ok(())
    /// # }
    /// ```
    pub fn system_failure_bounds(
        &self,
        profile: &DemandProfile,
    ) -> Result<(Probability, Probability), ModelError> {
        let mut best = 0.0;
        let mut worst = 0.0;
        for (class, weight) in profile.iter() {
            let pbox = self
                .boxes
                .get(class)
                .ok_or_else(|| ModelError::MissingClass {
                    class: class.clone(),
                })?;
            best += weight.value() * pbox.best_class_failure().value();
            worst += weight.value() * pbox.worst_class_failure().value();
        }
        Ok((Probability::clamped(best), Probability::clamped(worst)))
    }

    /// The midpoint model (each parameter at its interval midpoint).
    ///
    /// # Errors
    ///
    /// [`ModelError::Empty`] if the interval model has no classes.
    pub fn midpoint_model(&self) -> Result<SequentialModel, ModelError> {
        if self.boxes.is_empty() {
            return Err(ModelError::Empty {
                context: "interval model",
            });
        }
        let mid = |(lo, hi): (Probability, Probability)| {
            Probability::clamped((lo.value() + hi.value()) / 2.0)
        };
        let mut builder = ModelParams::builder();
        for (class, b) in &self.boxes {
            builder = builder.class(
                class.clone(),
                ClassParams::new(mid(b.p_mf), mid(b.p_hf_given_ms), mid(b.p_hf_given_mf)),
            );
        }
        Ok(SequentialModel::new(builder.build()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn widen(params: &ClassParams, delta: f64) -> ClassParamBox {
        let w = |x: Probability| {
            (
                Probability::clamped(x.value() - delta),
                Probability::clamped(x.value() + delta),
            )
        };
        ClassParamBox {
            p_mf: w(params.p_mf()),
            p_hf_given_ms: w(params.p_hf_given_ms()),
            p_hf_given_mf: w(params.p_hf_given_mf()),
        }
    }

    fn paper_interval(delta: f64) -> IntervalModel {
        let model = paper::example_model().unwrap();
        let mut im = IntervalModel::new();
        for (class, cp) in model.params().iter() {
            im = im.with_class(class.clone(), widen(cp, delta)).unwrap();
        }
        im
    }

    #[test]
    fn degenerate_box_reproduces_point_value() {
        let model = paper::example_model().unwrap();
        let im = IntervalModel::from_point(&model);
        let field = paper::field_profile().unwrap();
        let (lo, hi) = im.system_failure_bounds(&field).unwrap();
        let point = model.system_failure(&field).unwrap();
        assert!((lo.value() - point.value()).abs() < 1e-12);
        assert!((hi.value() - point.value()).abs() < 1e-12);
    }

    #[test]
    fn bounds_bracket_point_and_widen_with_delta() {
        let field = paper::field_profile().unwrap();
        let point = paper::example_model()
            .unwrap()
            .system_failure(&field)
            .unwrap()
            .value();
        let narrow = paper_interval(0.01).system_failure_bounds(&field).unwrap();
        let wide = paper_interval(0.05).system_failure_bounds(&field).unwrap();
        assert!(narrow.0.value() <= point && point <= narrow.1.value());
        assert!(wide.0 <= narrow.0 && narrow.1 <= wide.1);
    }

    #[test]
    fn bounds_cover_every_corner_model() {
        // Enumerate all 2^6 corner models of a widened box and check each
        // lies within the computed bounds.
        let delta = 0.03;
        let base = paper::example_model().unwrap();
        let field = paper::field_profile().unwrap();
        let im = paper_interval(delta);
        let (lo, hi) = im.system_failure_bounds(&field).unwrap();
        let classes: Vec<_> = base.params().iter().map(|(c, p)| (c.clone(), *p)).collect();
        for corner in 0u32..(1 << (classes.len() * 3)) {
            let mut builder = ModelParams::builder();
            for (ci, (class, cp)) in classes.iter().enumerate() {
                let bit = |k: usize| corner & (1 << (ci * 3 + k)) != 0;
                let adj = |x: Probability, up: bool| {
                    Probability::clamped(x.value() + if up { delta } else { -delta })
                };
                builder = builder.class(
                    class.clone(),
                    ClassParams::new(
                        adj(cp.p_mf(), bit(0)),
                        adj(cp.p_hf_given_ms(), bit(1)),
                        adj(cp.p_hf_given_mf(), bit(2)),
                    ),
                );
            }
            let corner_model = SequentialModel::new(builder.build().unwrap());
            let v = corner_model.system_failure(&field).unwrap();
            assert!(
                lo <= v && v <= hi,
                "corner {corner}: {} not in [{}, {}]",
                v.value(),
                lo.value(),
                hi.value()
            );
        }
    }

    #[test]
    fn negative_t_box_still_bounded_correctly() {
        // A class whose t can be negative inside the box: both PMf endpoints
        // must be tried, and the test checks a negative-slope corner is
        // covered.
        let b = ClassParamBox {
            p_mf: (p(0.1), p(0.9)),
            p_hf_given_ms: (p(0.5), p(0.6)),
            p_hf_given_mf: (p(0.2), p(0.3)),
        };
        // Worst conditional corner: hf_ms=0.6, hf_mf=0.3 → t = −0.3, so the
        // worst PMf is its LOWER bound.
        let worst = b.worst_class_failure().value();
        let manual = ClassParams::new(p(0.1), p(0.6), p(0.3))
            .class_failure()
            .value();
        assert!((worst - manual).abs() < 1e-12, "{worst} vs {manual}");
        let best = b.best_class_failure().value();
        let manual_best = ClassParams::new(p(0.9), p(0.5), p(0.2))
            .class_failure()
            .value();
        assert!((best - manual_best).abs() < 1e-12);
        assert!(best < worst);
    }

    #[test]
    fn midpoint_model_and_validation() {
        let im = paper_interval(0.02);
        let mid = im.midpoint_model().unwrap();
        // Midpoint of a symmetric box is the original model.
        let field = paper::field_profile().unwrap();
        assert!((mid.system_failure(&field).unwrap().value() - 0.18902).abs() < 1e-9);
        assert!(IntervalModel::new().midpoint_model().is_err());
        let bad = ClassParamBox {
            p_mf: (p(0.5), p(0.4)),
            p_hf_given_ms: (p(0.1), p(0.2)),
            p_hf_given_mf: (p(0.1), p(0.2)),
        };
        assert!(IntervalModel::new().with_class("x", bad).is_err());
        let missing = DemandProfile::builder()
            .class("ghost", 1.0)
            .build()
            .unwrap();
        assert!(im.system_failure_bounds(&missing).is_err());
    }
}
