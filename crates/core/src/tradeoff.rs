//! False-negative / false-positive trade-offs (§7: "Of more general
//! interest … will be the study of trade-offs between the probabilities of
//! false positive and false negative failures").
//!
//! The paper notes its equations describe both failure kinds identically, so
//! a two-sided system is a pair of sequential models: one over *cancer*
//! cases (false negatives) and one over *normal* cases (false positives).
//! The CADT's tuning threshold moves its operating point along a
//! per-class ROC curve; the reader's response parameters then determine the
//! system-level operating point. Sweeping the threshold produces the system
//! ROC, from which an operating point can be chosen under recall-rate
//! constraints or failure costs.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use hmdiv_prob::Probability;

use crate::{ClassId, DemandProfile, ModelError, SequentialModel};

/// A two-sided system model: false negatives on cancer cases, false
/// positives on normal cases.
///
/// In both halves, "machine fails" means the machine's output pushes toward
/// the wrong decision: missing the relevant features of a cancer (FN side),
/// or prompting spurious features on a healthy film (FP side). The reader
/// conditionals have the same reading as in [`SequentialModel`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwoSidedModel {
    /// Model of false-negative failures over cancer-case classes.
    pub false_negative: SequentialModel,
    /// Model of false-positive failures over normal-case classes.
    pub false_positive: SequentialModel,
}

/// A system-level operating point, produced by sweeping the machine
/// threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// The machine threshold `τ ∈ [0, 1]` that produced this point
    /// (`τ` is the machine's per-class false-positive prompt rate scale).
    pub tau: f64,
    /// System false-negative probability (on cancer cases).
    pub fn_rate: Probability,
    /// System false-positive probability (on normal cases).
    pub fp_rate: Probability,
    /// Overall recall rate, `prevalence·(1 − FN) + (1 − prevalence)·FP`.
    pub recall_rate: Probability,
}

/// The machine's ROC family: per cancer class, a power-curve exponent
/// `r ∈ (0, 1]` such that at prompt-rate threshold `τ` the machine's
/// sensitivity on that class is `τ^r` (so its false-negative probability is
/// `1 − τ^r`). Smaller `r` = better detector; `r = 1` = chance.
///
/// The FP side prompts spurious features at rate `τ` scaled by a per-class
/// susceptibility factor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineRoc {
    fn_exponents: BTreeMap<ClassId, f64>,
    fp_susceptibility: BTreeMap<ClassId, f64>,
}

impl MachineRoc {
    /// Starts building a machine ROC family.
    #[must_use]
    pub fn builder() -> MachineRocBuilder {
        MachineRocBuilder::default()
    }

    /// The machine's false-negative probability on a cancer class at
    /// threshold `tau`.
    ///
    /// # Errors
    ///
    /// * [`ModelError::MissingClass`] if the class has no exponent.
    /// * [`ModelError::InvalidFactor`] if `tau` is outside `[0, 1]`.
    pub fn fn_probability(&self, class: &ClassId, tau: f64) -> Result<Probability, ModelError> {
        validate_tau(tau)?;
        let r = self
            .fn_exponents
            .get(class)
            .ok_or_else(|| ModelError::MissingClass {
                class: class.clone(),
            })?;
        Ok(Probability::clamped(1.0 - tau.powf(*r)))
    }

    /// The machine's false-positive (spurious prompt) probability on a
    /// normal class at threshold `tau`.
    ///
    /// # Errors
    ///
    /// As [`MachineRoc::fn_probability`].
    pub fn fp_probability(&self, class: &ClassId, tau: f64) -> Result<Probability, ModelError> {
        validate_tau(tau)?;
        let s = self
            .fp_susceptibility
            .get(class)
            .ok_or_else(|| ModelError::MissingClass {
                class: class.clone(),
            })?;
        Ok(Probability::clamped(tau * s))
    }
}

fn validate_tau(tau: f64) -> Result<(), ModelError> {
    if tau.is_nan() || !(0.0..=1.0).contains(&tau) {
        return Err(ModelError::InvalidFactor {
            value: tau,
            context: "machine threshold",
        });
    }
    Ok(())
}

/// Builder for [`MachineRoc`].
#[derive(Debug, Clone, Default)]
pub struct MachineRocBuilder {
    fn_exponents: BTreeMap<ClassId, f64>,
    fp_susceptibility: BTreeMap<ClassId, f64>,
    error: Option<ModelError>,
}

impl MachineRocBuilder {
    /// Sets the power-curve exponent for a cancer class (`0 < r <= 1`).
    #[must_use]
    pub fn cancer_class(mut self, class: impl Into<ClassId>, exponent: f64) -> Self {
        if !(exponent > 0.0 && exponent <= 1.0) {
            self.error.get_or_insert(ModelError::InvalidFactor {
                value: exponent,
                context: "ROC exponent (must be in (0, 1])",
            });
        }
        self.fn_exponents.insert(class.into(), exponent);
        self
    }

    /// Sets the spurious-prompt susceptibility for a normal class
    /// (`0 <= s <= 1`).
    #[must_use]
    pub fn normal_class(mut self, class: impl Into<ClassId>, susceptibility: f64) -> Self {
        if !(0.0..=1.0).contains(&susceptibility) || susceptibility.is_nan() {
            self.error.get_or_insert(ModelError::InvalidFactor {
                value: susceptibility,
                context: "FP susceptibility (must be in [0, 1])",
            });
        }
        self.fp_susceptibility.insert(class.into(), susceptibility);
        self
    }

    /// Builds the ROC family.
    ///
    /// # Errors
    ///
    /// * Any parameter validation error recorded during building.
    /// * [`ModelError::Empty`] if either side has no classes.
    pub fn build(self) -> Result<MachineRoc, ModelError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.fn_exponents.is_empty() || self.fp_susceptibility.is_empty() {
            return Err(ModelError::Empty {
                context: "machine ROC family",
            });
        }
        Ok(MachineRoc {
            fn_exponents: self.fn_exponents,
            fp_susceptibility: self.fp_susceptibility,
        })
    }
}

/// Evaluation context for the trade-off sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffStudy {
    /// The two-sided reader-response model (its machine parameters are
    /// overridden per threshold).
    pub base: TwoSidedModel,
    /// The machine's ROC family.
    pub roc: MachineRoc,
    /// Demand profile over cancer-case classes.
    pub cancer_profile: DemandProfile,
    /// Demand profile over normal-case classes.
    pub normal_profile: DemandProfile,
    /// Cancer prevalence in the screened population (well under 1% in the
    /// paper's setting).
    pub prevalence: Probability,
}

impl TradeoffStudy {
    /// Evaluates the system at machine threshold `tau`.
    ///
    /// # Errors
    ///
    /// * [`ModelError::InvalidFactor`] for `tau` outside `[0, 1]`.
    /// * [`ModelError::MissingClass`] if a profile class lacks parameters or
    ///   ROC entries.
    pub fn operating_point(&self, tau: f64) -> Result<OperatingPoint, ModelError> {
        validate_tau(tau)?;
        let fn_params = self
            .base
            .false_negative
            .params()
            .map_classes(|class, cp| Ok(cp.with_p_mf(self.roc.fn_probability(class, tau)?)))?;
        let fp_params = self
            .base
            .false_positive
            .params()
            .map_classes(|class, cp| Ok(cp.with_p_mf(self.roc.fp_probability(class, tau)?)))?;
        let fn_rate = SequentialModel::new(fn_params).system_failure(&self.cancer_profile)?;
        let fp_rate = SequentialModel::new(fp_params).system_failure(&self.normal_profile)?;
        let prev = self.prevalence.value();
        let recall_rate =
            Probability::clamped(prev * (1.0 - fn_rate.value()) + (1.0 - prev) * fp_rate.value());
        Ok(OperatingPoint {
            tau,
            fn_rate,
            fp_rate,
            recall_rate,
        })
    }

    /// Sweeps `points` thresholds evenly over `[0, 1]`, producing the system
    /// ROC curve.
    ///
    /// # Errors
    ///
    /// As [`TradeoffStudy::operating_point`].
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`.
    pub fn sweep(&self, points: usize) -> Result<Vec<OperatingPoint>, ModelError> {
        assert!(points >= 2, "a sweep needs at least 2 points");
        (0..points)
            .map(|i| self.operating_point(i as f64 / (points - 1) as f64))
            .collect()
    }

    /// The area under the system ROC curve swept over `points` thresholds:
    /// sensitivity `1 − FN` against false-positive rate, by the trapezoid
    /// rule, with the curve anchored at `(0, 0)` and `(1, 1)`.
    ///
    /// A scale-free summary of the whole human–machine system's
    /// discrimination, comparable across designs.
    ///
    /// # Errors
    ///
    /// As [`TradeoffStudy::sweep`].
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`.
    pub fn system_auc(&self, points: usize) -> Result<f64, ModelError> {
        let sweep = self.sweep(points)?;
        let mut pts: Vec<(f64, f64)> = Vec::with_capacity(sweep.len() + 2);
        pts.push((0.0, 0.0));
        for p in &sweep {
            pts.push((p.fp_rate.value(), 1.0 - p.fn_rate.value()));
        }
        pts.push((1.0, 1.0));
        pts.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let mut auc = 0.0;
        for w in pts.windows(2) {
            auc += (w[1].0 - w[0].0) * (w[0].1 + w[1].1) / 2.0;
        }
        Ok(auc.clamp(0.0, 1.0))
    }

    /// Finds the swept operating point minimising expected cost
    /// `prevalence·FN·cost_fn + (1 − prevalence)·FP·cost_fp`, optionally
    /// subject to `recall_rate <= max_recall`.
    ///
    /// Returns `None` if no swept point satisfies the constraint.
    ///
    /// # Errors
    ///
    /// As [`TradeoffStudy::sweep`], plus [`ModelError::InvalidFactor`] for
    /// non-positive costs.
    pub fn best_operating_point(
        &self,
        points: usize,
        cost_fn: f64,
        cost_fp: f64,
        max_recall: Option<Probability>,
    ) -> Result<Option<OperatingPoint>, ModelError> {
        if cost_fn.is_nan() || cost_fn <= 0.0 || cost_fp.is_nan() || cost_fp <= 0.0 {
            return Err(ModelError::InvalidFactor {
                value: cost_fn.min(cost_fp),
                context: "failure cost (must be positive)",
            });
        }
        let prev = self.prevalence.value();
        let mut best: Option<(f64, OperatingPoint)> = None;
        for point in self.sweep(points)? {
            if let Some(cap) = max_recall {
                if point.recall_rate > cap {
                    continue;
                }
            }
            let cost = prev * point.fn_rate.value() * cost_fn
                + (1.0 - prev) * point.fp_rate.value() * cost_fp;
            match &best {
                Some((c, _)) if *c <= cost => {}
                _ => best = Some((cost, point)),
            }
        }
        Ok(best.map(|(_, p)| p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassParams, ModelParams};

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn study() -> TradeoffStudy {
        // FN side: the paper's example classes; machine PMf will be driven
        // by the ROC, the values here are placeholders.
        let fn_model = SequentialModel::new(
            ModelParams::builder()
                .class("easy", ClassParams::new(p(0.07), p(0.14), p(0.18)))
                .class("difficult", ClassParams::new(p(0.41), p(0.4), p(0.9)))
                .build()
                .unwrap(),
        );
        // FP side: healthy films; "machine fails" = spurious prompt, reader
        // recalls more when prompted (automation bias toward recall).
        let fp_model = SequentialModel::new(
            ModelParams::builder()
                .class("clear", ClassParams::new(p(0.1), p(0.02), p(0.08)))
                .class("ambiguous", ClassParams::new(p(0.3), p(0.15), p(0.4)))
                .build()
                .unwrap(),
        );
        let roc = MachineRoc::builder()
            .cancer_class("easy", 0.15)
            .cancer_class("difficult", 0.6)
            .normal_class("clear", 0.3)
            .normal_class("ambiguous", 0.9)
            .build()
            .unwrap();
        TradeoffStudy {
            base: TwoSidedModel {
                false_negative: fn_model,
                false_positive: fp_model,
            },
            roc,
            cancer_profile: DemandProfile::builder()
                .class("easy", 0.9)
                .class("difficult", 0.1)
                .build()
                .unwrap(),
            normal_profile: DemandProfile::builder()
                .class("clear", 0.85)
                .class("ambiguous", 0.15)
                .build()
                .unwrap(),
            prevalence: p(0.008),
        }
    }

    #[test]
    fn roc_endpoints() {
        let s = study();
        // τ = 0: machine prompts nothing → FN side at its worst (PMf = 1),
        // FP side at its best (no spurious prompts).
        let at0 = s.operating_point(0.0).unwrap();
        // τ = 1: machine prompts everything → PMf = 0, FP prompts maximal.
        let at1 = s.operating_point(1.0).unwrap();
        assert!(at0.fn_rate > at1.fn_rate);
        assert!(at0.fp_rate < at1.fp_rate);
    }

    #[test]
    fn sweep_is_monotone_in_both_rates() {
        let s = study();
        let curve = s.sweep(21).unwrap();
        for w in curve.windows(2) {
            assert!(w[1].fn_rate <= w[0].fn_rate, "FN decreases with τ");
            assert!(w[1].fp_rate >= w[0].fp_rate, "FP increases with τ");
        }
    }

    #[test]
    fn fn_rate_never_below_reader_floor() {
        // Even with a perfect machine (τ=1), the FN rate cannot fall below
        // the profile-weighted PHf|Ms — the paper's §6.1 bound, surfacing in
        // the trade-off study.
        let s = study();
        let at1 = s.operating_point(1.0).unwrap();
        let floor =
            crate::importance::system_lower_bound(&s.base.false_negative, &s.cancer_profile)
                .unwrap();
        assert!((at1.fn_rate.value() - floor.value()).abs() < 1e-12);
    }

    #[test]
    fn recall_rate_combines_sides() {
        let s = study();
        let pt = s.operating_point(0.5).unwrap();
        let expected = 0.008 * (1.0 - pt.fn_rate.value()) + 0.992 * pt.fp_rate.value();
        assert!((pt.recall_rate.value() - expected).abs() < 1e-12);
    }

    #[test]
    fn best_point_responds_to_costs() {
        let s = study();
        // Missing a cancer is far costlier than a needless recall: pick a
        // high-τ point. Reverse the costs: pick a low-τ point.
        let fn_heavy = s
            .best_operating_point(21, 1000.0, 1.0, None)
            .unwrap()
            .unwrap();
        let fp_heavy = s
            .best_operating_point(21, 1.0, 1000.0, None)
            .unwrap()
            .unwrap();
        assert!(fn_heavy.tau > fp_heavy.tau);
    }

    #[test]
    fn recall_constraint_filters() {
        let s = study();
        let cap = p(0.05);
        let constrained = s
            .best_operating_point(21, 1000.0, 1.0, Some(cap))
            .unwrap()
            .unwrap();
        assert!(constrained.recall_rate <= cap);
        // An impossible constraint yields None.
        let impossible = s
            .best_operating_point(21, 1000.0, 1.0, Some(Probability::ZERO))
            .unwrap();
        assert!(impossible.is_none());
    }

    #[test]
    fn validation_errors() {
        let s = study();
        assert!(s.operating_point(-0.1).is_err());
        assert!(s.operating_point(1.5).is_err());
        assert!(s.best_operating_point(5, 0.0, 1.0, None).is_err());
        assert!(MachineRoc::builder().build().is_err());
        assert!(MachineRoc::builder()
            .cancer_class("x", 1.5)
            .normal_class("y", 0.5)
            .build()
            .is_err());
        assert!(MachineRoc::builder()
            .cancer_class("x", 0.5)
            .normal_class("y", -0.5)
            .build()
            .is_err());
    }

    #[test]
    fn auc_rewards_better_detectors() {
        let s = study();
        let base_auc = s.system_auc(51).unwrap();
        assert!((0.5..=1.0).contains(&base_auc), "{base_auc}");
        let mut better = s.clone();
        better.roc = MachineRoc::builder()
            .cancer_class("easy", 0.05)
            .cancer_class("difficult", 0.2)
            .normal_class("clear", 0.3)
            .normal_class("ambiguous", 0.9)
            .build()
            .unwrap();
        let better_auc = better.system_auc(51).unwrap();
        assert!(better_auc > base_auc, "{better_auc} vs {base_auc}");
    }

    #[test]
    fn better_detector_dominates() {
        // Lowering an exponent (better detector on that class) cannot make
        // any swept FN rate worse.
        let s = study();
        let mut better = s.clone();
        better.roc = MachineRoc::builder()
            .cancer_class("easy", 0.05)
            .cancer_class("difficult", 0.2)
            .normal_class("clear", 0.3)
            .normal_class("ambiguous", 0.9)
            .build()
            .unwrap();
        let base_curve = s.sweep(11).unwrap();
        let better_curve = better.sweep(11).unwrap();
        for (b, g) in base_curve.iter().zip(&better_curve) {
            assert!(g.fn_rate <= b.fn_rate, "τ={}", b.tau);
            assert_eq!(g.fp_rate, b.fp_rate, "FP side untouched");
        }
    }
}
