use std::fmt;
use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};

use hmdiv_prob::Probability;

use crate::compiled::CompiledModel;
use crate::{ClassId, ClassParams, DemandProfile, ModelError, ModelParams};

/// The paper's §4 "sequential operation" model (Fig. 3).
///
/// The reader processes the case together with the CADT's output, so no part
/// of the reader's task is assumed unaffected by the machine. All the model
/// needs per class of demands `x` is the triple
/// (`PMf(x)`, `PHf|Ms(x)`, `PHf|Mf(x)`); the system failure probability over
/// a demand profile `p(x)` is eq. (8):
///
/// ```text
/// PHf = Σ_x p(x)·[ PHf|Ms(x)·PMs(x) + PHf|Mf(x)·PMf(x) ]
/// ```
///
/// # Example
///
/// ```
/// use hmdiv_core::paper;
///
/// # fn main() -> Result<(), hmdiv_core::ModelError> {
/// let model = paper::example_model()?;
/// let trial = paper::trial_profile()?;
/// assert!((model.system_failure(&trial)?.value() - 0.23524).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SequentialModel {
    params: ModelParams,
    /// Lazily-compiled dense evaluation form. The map-based `params` stay
    /// the public, serde-facing surface; every evaluation goes through this.
    #[serde(skip)]
    compiled: OnceLock<Arc<CompiledModel>>,
}

impl PartialEq for SequentialModel {
    fn eq(&self, other: &Self) -> bool {
        // The compiled cache is derived state; identity is the table.
        self.params == other.params
    }
}

impl SequentialModel {
    /// Builds the model from a per-class parameter table.
    #[must_use]
    pub fn new(params: ModelParams) -> Self {
        SequentialModel {
            params,
            compiled: OnceLock::new(),
        }
    }

    /// The parameter table.
    #[must_use]
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// The dense compiled form of this model, compiled on first use and
    /// cached. Batch callers (design sweeps, uncertainty MC) should grab
    /// this once and bind profiles against its universe.
    #[must_use]
    pub fn compiled(&self) -> &Arc<CompiledModel> {
        self.compiled
            .get_or_init(|| Arc::new(CompiledModel::compile(&self.params)))
    }

    /// The class-conditional failure probability `PHf(x)` for one class.
    ///
    /// # Errors
    ///
    /// [`ModelError::MissingClass`] if the class has no parameters.
    pub fn class_failure(&self, class: &ClassId) -> Result<Probability, ModelError> {
        Ok(self.params.class(class)?.class_failure())
    }

    /// The system failure probability under a demand profile (eq. 8).
    ///
    /// Evaluated through the compiled form: the profile's classes resolve to
    /// dense universe indices and the sum runs over slices, in the profile's
    /// insertion order — bit-identical to the original map walk.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownClass`] if the profile mentions a class with no
    /// parameters.
    pub fn system_failure(&self, profile: &DemandProfile) -> Result<Probability, ModelError> {
        let compiled = self.compiled();
        Ok(compiled.system_failure(&compiled.bind_profile(profile)?))
    }

    /// The marginal machine failure probability `PMf = E_x[PMf(x)]` under a
    /// profile.
    ///
    /// # Errors
    ///
    /// As [`SequentialModel::system_failure`].
    pub fn machine_failure(&self, profile: &DemandProfile) -> Result<Probability, ModelError> {
        let compiled = self.compiled();
        Ok(compiled.machine_failure(&compiled.bind_profile(profile)?))
    }

    /// The marginal reader failure probability conditional on machine
    /// success, `P(Hf|Ms)`, under a profile.
    ///
    /// Note this is **not** `E_x[PHf|Ms(x)]`: conditioning on `Ms` reweights
    /// the classes by `p(x)·PMs(x)/P(Ms)` (Bayes). The paper's eq. (4) uses
    /// the marginal conditionals; this method computes them correctly from
    /// the per-class table.
    ///
    /// # Errors
    ///
    /// * As [`SequentialModel::system_failure`].
    /// * [`ModelError::InvalidFactor`] if `P(Ms) = 0` under the profile (the
    ///   conditional is undefined).
    pub fn human_failure_given_machine_success(
        &self,
        profile: &DemandProfile,
    ) -> Result<Probability, ModelError> {
        let compiled = self.compiled();
        compiled.human_failure_given_machine_success(&compiled.bind_profile(profile)?)
    }

    /// The marginal reader failure probability conditional on machine
    /// failure, `P(Hf|Mf)`, under a profile. See the conditioning caveat on
    /// [`SequentialModel::human_failure_given_machine_success`].
    ///
    /// # Errors
    ///
    /// As [`SequentialModel::human_failure_given_machine_success`], with the
    /// undefined case being `P(Mf) = 0`.
    pub fn human_failure_given_machine_failure(
        &self,
        profile: &DemandProfile,
    ) -> Result<Probability, ModelError> {
        let compiled = self.compiled();
        compiled.human_failure_given_machine_failure(&compiled.bind_profile(profile)?)
    }

    /// Verifies the paper's eq. (4) at the marginal level:
    /// `P(Hf) = P(Hf|Ms)·P(Ms) + P(Hf|Mf)·P(Mf)`.
    ///
    /// Returns the two sides `(lhs, rhs)`; they agree up to floating-point
    /// error by construction — exposed for tests and demonstrations.
    ///
    /// # Errors
    ///
    /// As the component methods; requires `0 < P(Mf) < 1` under the profile.
    pub fn equation4_sides(&self, profile: &DemandProfile) -> Result<(f64, f64), ModelError> {
        let lhs = self.system_failure(profile)?.value();
        let p_mf = self.machine_failure(profile)?.value();
        let hf_ms = self.human_failure_given_machine_success(profile)?.value();
        let hf_mf = self.human_failure_given_machine_failure(profile)?.value();
        let rhs = hf_ms * (1.0 - p_mf) + hf_mf * p_mf;
        Ok((lhs, rhs))
    }

    /// Convenience: per-class breakdown rows `(class, params, PHf(x))`,
    /// in class order — the shape of the paper's tables.
    #[must_use]
    pub fn breakdown(&self) -> Vec<(ClassId, ClassParams, Probability)> {
        self.params
            .iter()
            .map(|(c, p)| (c.clone(), *p, p.class_failure()))
            .collect()
    }
}

impl fmt::Display for SequentialModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "sequential model over {} classes:", self.params.len())?;
        for (class, params) in self.params.iter() {
            writeln!(
                f,
                "  {class}: {params} -> PHf(x)={:.4}",
                params.class_failure().value()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn model() -> SequentialModel {
        SequentialModel::new(
            ModelParams::builder()
                .class("easy", ClassParams::new(p(0.07), p(0.14), p(0.18)))
                .class("difficult", ClassParams::new(p(0.41), p(0.4), p(0.9)))
                .build()
                .unwrap(),
        )
    }

    fn trial() -> DemandProfile {
        DemandProfile::builder()
            .class("easy", 0.8)
            .class("difficult", 0.2)
            .build()
            .unwrap()
    }

    fn field() -> DemandProfile {
        DemandProfile::builder()
            .class("easy", 0.9)
            .class("difficult", 0.1)
            .build()
            .unwrap()
    }

    #[test]
    fn paper_table2_exact() {
        let m = model();
        assert!((m.class_failure(&ClassId::new("easy")).unwrap().value() - 0.1428).abs() < 1e-12);
        assert!(
            (m.class_failure(&ClassId::new("difficult")).unwrap().value() - 0.605).abs() < 1e-12
        );
        assert!((m.system_failure(&trial()).unwrap().value() - 0.23524).abs() < 1e-12);
        assert!((m.system_failure(&field()).unwrap().value() - 0.18902).abs() < 1e-12);
    }

    #[test]
    fn machine_failure_marginal() {
        let m = model();
        let pmf_trial = m.machine_failure(&trial()).unwrap().value();
        assert!((pmf_trial - (0.8 * 0.07 + 0.2 * 0.41)).abs() < 1e-12);
    }

    #[test]
    fn equation4_holds() {
        let m = model();
        for profile in [trial(), field()] {
            let (lhs, rhs) = m.equation4_sides(&profile).unwrap();
            assert!((lhs - rhs).abs() < 1e-12, "{lhs} vs {rhs}");
        }
    }

    #[test]
    fn conditionals_are_bayes_weighted_not_plain_averages() {
        let m = model();
        let hf_mf = m
            .human_failure_given_machine_failure(&trial())
            .unwrap()
            .value();
        // Plain average would be 0.8·0.18 + 0.2·0.9 = 0.324. The correct
        // conditioning weights classes by their share of machine failures:
        // P(Mf) = 0.138; difficult contributes 0.2·0.41 = 0.082 of it.
        let p_mf = 0.8 * 0.07 + 0.2 * 0.41;
        let expected = (0.8 * 0.07 * 0.18 + 0.2 * 0.41 * 0.9) / p_mf;
        assert!((hf_mf - expected).abs() < 1e-12);
        assert!(
            (hf_mf - 0.324f64).abs() > 0.05,
            "must differ from the naive average"
        );
    }

    #[test]
    fn degenerate_machine_makes_conditional_undefined() {
        let m = SequentialModel::new(
            ModelParams::builder()
                .class("only", ClassParams::new(Probability::ZERO, p(0.1), p(0.9)))
                .build()
                .unwrap(),
        );
        let profile = DemandProfile::builder().class("only", 1.0).build().unwrap();
        assert!(m.human_failure_given_machine_failure(&profile).is_err());
        assert!(m.human_failure_given_machine_success(&profile).is_ok());
        // System failure is still fine: the reader fails at PHf|Ms.
        assert!((m.system_failure(&profile).unwrap().value() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn missing_class_is_error() {
        let m = model();
        let profile = DemandProfile::builder()
            .class("unknown", 1.0)
            .build()
            .unwrap();
        assert!(matches!(
            m.system_failure(&profile),
            Err(ModelError::UnknownClass { .. })
        ));
    }

    #[test]
    fn compiled_cache_is_shared_and_consistent() {
        let m = model();
        let c1 = std::sync::Arc::clone(m.compiled());
        let c2 = std::sync::Arc::clone(m.compiled());
        assert!(std::sync::Arc::ptr_eq(&c1, &c2), "compiled once, cached");
        // A clone re-uses the already-compiled value (or recompiles to an
        // equal one) — either way evaluation agrees.
        let clone = m.clone();
        assert_eq!(
            clone.system_failure(&trial()).unwrap(),
            m.system_failure(&trial()).unwrap()
        );
        assert_eq!(m, clone);
    }

    #[test]
    fn profile_with_subset_of_classes_is_fine() {
        // Parameters may cover more classes than the profile uses.
        let m = model();
        let only_easy = DemandProfile::builder().class("easy", 1.0).build().unwrap();
        assert!((m.system_failure(&only_easy).unwrap().value() - 0.1428).abs() < 1e-12);
    }

    #[test]
    fn breakdown_lists_all_classes() {
        let rows = model().breakdown();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0.name(), "difficult"); // BTreeMap order
        assert!((rows[0].2.value() - 0.605).abs() < 1e-12);
    }

    #[test]
    fn display_shows_classes() {
        let s = model().to_string();
        assert!(s.contains("easy") && s.contains("difficult"));
    }
}
