//! Screening-programme economics (§7: configurations considered "to improve
//! the cost-effectiveness of screening programmes").
//!
//! Dependability numbers only become decisions when costs attach to them.
//! This module prices a screening configuration per case screened:
//! reading labour (per reader, plus arbitration when used), recall workup
//! for every recalled patient, and the (dominant) cost of a missed cancer.
//! Combined with the FN/FP rates from the analytic team models or the
//! simulator, it ranks configurations the way a programme board would.

use serde::{Deserialize, Serialize};

use hmdiv_prob::Probability;

use crate::ModelError;

/// Unit costs of a screening programme, in arbitrary consistent units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of one reader reading one case.
    pub reading_cost: f64,
    /// Cost of an arbitration review (only on disagreements).
    pub arbitration_cost: f64,
    /// Cost of recalling one patient for workup (imaging, biopsy, anxiety).
    pub recall_cost: f64,
    /// Cost of missing one cancer (delayed treatment, litigation, lives).
    pub missed_cancer_cost: f64,
    /// Per-case cost of running the CADT (licence, compute, digitisation).
    pub cadt_cost: f64,
}

impl CostModel {
    /// Validates that all costs are finite and non-negative.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidFactor`] naming the offending cost.
    pub fn validate(&self) -> Result<(), ModelError> {
        for (value, name) in [
            (self.reading_cost, "reading cost"),
            (self.arbitration_cost, "arbitration cost"),
            (self.recall_cost, "recall cost"),
            (self.missed_cancer_cost, "missed-cancer cost"),
            (self.cadt_cost, "CADT cost"),
        ] {
            if value.is_nan() || value < 0.0 || value.is_infinite() {
                return Err(ModelError::InvalidFactor {
                    value,
                    context: name,
                });
            }
        }
        Ok(())
    }
}

/// The operational profile of one configuration, as rates per case screened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigurationProfile {
    /// Configuration label.
    pub name: String,
    /// Number of readers reading every case.
    pub readers: usize,
    /// Whether a CADT processes every case.
    pub uses_cadt: bool,
    /// Expected fraction of cases needing arbitration (0 without it).
    pub arbitration_rate: f64,
    /// System false-negative probability on cancer cases.
    pub fn_rate: Probability,
    /// System false-positive probability on normal cases.
    pub fp_rate: Probability,
}

/// The priced outcome of one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PricedConfiguration {
    /// Configuration label.
    pub name: String,
    /// Expected cost per case screened.
    pub cost_per_case: f64,
    /// Expected missed cancers per 100,000 cases screened.
    pub missed_per_100k: f64,
    /// Expected recalls per 100,000 cases screened.
    pub recalls_per_100k: f64,
}

/// Prices each configuration under the cost model and cancer prevalence,
/// returning them ranked by expected cost per case (cheapest first; ties by
/// name).
///
/// # Errors
///
/// * Cost-model validation errors.
/// * [`ModelError::InvalidFactor`] for prevalence or arbitration rates
///   outside `[0, 1]`.
/// * [`ModelError::Empty`] if no configurations are given.
///
/// # Example
///
/// ```
/// use hmdiv_core::economics::{price_configurations, ConfigurationProfile, CostModel};
/// use hmdiv_prob::Probability;
///
/// # fn main() -> Result<(), hmdiv_core::ModelError> {
/// let p = |v| Probability::new(v).unwrap();
/// let costs = CostModel {
///     reading_cost: 10.0,
///     arbitration_cost: 15.0,
///     recall_cost: 200.0,
///     missed_cancer_cost: 100_000.0,
///     cadt_cost: 2.0,
/// };
/// let configs = vec![ConfigurationProfile {
///     name: "single + CADT".into(),
///     readers: 1,
///     uses_cadt: true,
///     arbitration_rate: 0.0,
///     fn_rate: p(0.19),
///     fp_rate: p(0.06),
/// }];
/// let priced = price_configurations(&costs, p(0.008), &configs)?;
/// assert!(priced[0].cost_per_case > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn price_configurations(
    costs: &CostModel,
    prevalence: Probability,
    configurations: &[ConfigurationProfile],
) -> Result<Vec<PricedConfiguration>, ModelError> {
    costs.validate()?;
    if configurations.is_empty() {
        return Err(ModelError::Empty {
            context: "configuration list",
        });
    }
    let prev = prevalence.value();
    let mut out = Vec::with_capacity(configurations.len());
    for config in configurations {
        if config.arbitration_rate.is_nan() || !(0.0..=1.0).contains(&config.arbitration_rate) {
            return Err(ModelError::InvalidFactor {
                value: config.arbitration_rate,
                context: "arbitration rate",
            });
        }
        let p_recall =
            prev * (1.0 - config.fn_rate.value()) + (1.0 - prev) * config.fp_rate.value();
        let p_miss = prev * config.fn_rate.value();
        let cost_per_case = config.readers as f64 * costs.reading_cost
            + f64::from(u8::from(config.uses_cadt)) * costs.cadt_cost
            + config.arbitration_rate * costs.arbitration_cost
            + p_recall * costs.recall_cost
            + p_miss * costs.missed_cancer_cost;
        out.push(PricedConfiguration {
            name: config.name.clone(),
            cost_per_case,
            missed_per_100k: p_miss * 100_000.0,
            recalls_per_100k: p_recall * 100_000.0,
        });
    }
    out.sort_by(|a, b| {
        a.cost_per_case
            .total_cmp(&b.cost_per_case)
            .then_with(|| a.name.cmp(&b.name))
    });
    Ok(out)
}

/// The incremental cost-effectiveness ratio between two priced
/// configurations: extra cost per case divided by missed cancers avoided
/// per case. `None` when they avoid the same number of misses (the ratio
/// is undefined; the cheaper one simply dominates).
#[must_use]
pub fn icer(cheaper: &PricedConfiguration, better: &PricedConfiguration) -> Option<f64> {
    let miss_reduction = (cheaper.missed_per_100k - better.missed_per_100k) / 100_000.0;
    if miss_reduction.abs() < f64::EPSILON {
        return None;
    }
    Some((better.cost_per_case - cheaper.cost_per_case) / miss_reduction)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn costs() -> CostModel {
        CostModel {
            reading_cost: 10.0,
            arbitration_cost: 15.0,
            recall_cost: 200.0,
            missed_cancer_cost: 100_000.0,
            cadt_cost: 2.0,
        }
    }

    fn configs() -> Vec<ConfigurationProfile> {
        vec![
            ConfigurationProfile {
                name: "single unaided".into(),
                readers: 1,
                uses_cadt: false,
                arbitration_rate: 0.0,
                fn_rate: p(0.25),
                fp_rate: p(0.04),
            },
            ConfigurationProfile {
                name: "single + CADT".into(),
                readers: 1,
                uses_cadt: true,
                arbitration_rate: 0.0,
                fn_rate: p(0.19),
                fp_rate: p(0.06),
            },
            ConfigurationProfile {
                name: "double + CADT".into(),
                readers: 2,
                uses_cadt: true,
                arbitration_rate: 0.0,
                fn_rate: p(0.06),
                fp_rate: p(0.10),
            },
            ConfigurationProfile {
                name: "double + CADT, arbitrated".into(),
                readers: 2,
                uses_cadt: true,
                arbitration_rate: 0.08,
                fn_rate: p(0.11),
                fp_rate: p(0.05),
            },
        ]
    }

    #[test]
    fn pricing_accounts_for_all_terms() {
        let priced = price_configurations(&costs(), p(0.008), &configs()).unwrap();
        assert_eq!(priced.len(), 4);
        // Hand-price the unaided configuration.
        let unaided = priced.iter().find(|c| c.name == "single unaided").unwrap();
        let p_recall = 0.008 * 0.75 + 0.992 * 0.04;
        let p_miss = 0.008 * 0.25;
        let expected = 10.0 + p_recall * 200.0 + p_miss * 100_000.0;
        assert!((unaided.cost_per_case - expected).abs() < 1e-9);
        assert!((unaided.missed_per_100k - 200.0).abs() < 1e-9);
    }

    #[test]
    fn ranking_is_by_cost() {
        let priced = price_configurations(&costs(), p(0.008), &configs()).unwrap();
        for w in priced.windows(2) {
            assert!(w[0].cost_per_case <= w[1].cost_per_case);
        }
        // With misses this expensive, the high-sensitivity double reading
        // wins despite double labour.
        assert_eq!(priced[0].name, "double + CADT");
    }

    #[test]
    fn cheap_misses_flip_the_ranking() {
        let mut cheap_miss = costs();
        cheap_miss.missed_cancer_cost = 100.0;
        let priced = price_configurations(&cheap_miss, p(0.008), &configs()).unwrap();
        // Now labour and recalls dominate: single reading wins.
        assert!(priced[0].name.starts_with("single"), "{:?}", priced[0].name);
    }

    #[test]
    fn icer_between_configurations() {
        let priced = price_configurations(&costs(), p(0.008), &configs()).unwrap();
        let single = priced.iter().find(|c| c.name == "single + CADT").unwrap();
        let double = priced.iter().find(|c| c.name == "double + CADT").unwrap();
        // double catches more cancers; the ICER is cost per extra catch.
        let ratio = icer(single, double).unwrap();
        assert!(ratio.is_finite());
        // Against itself the ratio is undefined.
        assert!(icer(single, single).is_none());
    }

    #[test]
    fn validation_errors() {
        assert!(price_configurations(&costs(), p(0.008), &[]).is_err());
        let mut bad = costs();
        bad.recall_cost = -1.0;
        assert!(bad.validate().is_err());
        assert!(price_configurations(&bad, p(0.008), &configs()).is_err());
        let mut bad_config = configs();
        bad_config[0].arbitration_rate = 1.5;
        assert!(price_configurations(&costs(), p(0.008), &bad_config).is_err());
    }
}
