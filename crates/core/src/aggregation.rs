//! Class aggregation and the §6.2 heterogeneity caveat.
//!
//! The paper warns that a high coherence index `t(x)` for a class may be an
//! artefact of *heterogeneity*: if the class secretly mixes "easier" cases
//! (where both machine and reader succeed) with "more difficult" ones (where
//! both fail), the merged conditionals make the reader *look* coupled to the
//! machine even if, within each subclass, the reader is completely
//! indifferent to the machine's output. "It would be better then to regard
//! t(x) as just a 'coherence index'."
//!
//! [`merge_classes`] computes the exact parameters of the merged class (the
//! ones a trial that cannot distinguish the subclasses would estimate), so
//! the artefact can be quantified: compare the merged `t` against the
//! within-subclass `t`s.

use hmdiv_prob::Probability;
use serde::{Deserialize, Serialize};

use crate::{ClassId, ClassParams, DemandProfile, ModelError, ModelParams, SequentialModel};

/// The result of merging a set of classes into one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergedClass {
    /// The classes that were merged, in profile order.
    pub members: Vec<ClassId>,
    /// Total profile weight of the merged class.
    pub weight: Probability,
    /// The effective parameters a class-blind observer would measure.
    pub params: ClassParams,
}

impl MergedClass {
    /// The merged coherence index `t` — potentially inflated relative to
    /// the members' own indices (the §6.2 artefact).
    #[must_use]
    pub fn coherence_index(&self) -> f64 {
        self.params.coherence_index()
    }
}

/// Merges the named classes of a model under a profile into one effective
/// class, using exact probability calculus:
///
/// * `PMf(merged)` is the weight-average of the members' `PMf(x)`;
/// * `PHf|Ms(merged)` conditions on `Ms`, so members are re-weighted by
///   `p(x)·PMs(x)` (Bayes);
/// * `PHf|Mf(merged)` likewise with `p(x)·PMf(x)`.
///
/// # Errors
///
/// * [`ModelError::Empty`] if `members` is empty.
/// * [`ModelError::UnknownClass`] if a member is absent from the profile.
/// * [`ModelError::MissingClass`] if a member is absent from the model.
/// * [`ModelError::InvalidFactor`] if a conditional is undefined because
///   the machine never succeeds (or never fails) across the merged class.
pub fn merge_classes(
    model: &SequentialModel,
    profile: &DemandProfile,
    members: &[ClassId],
) -> Result<MergedClass, ModelError> {
    if members.is_empty() {
        return Err(ModelError::Empty {
            context: "merge member list",
        });
    }
    let mut total_w = 0.0;
    let mut mean_mf = 0.0;
    let mut joint_hf_ms = 0.0; // Σ p(x)·PMs(x)·PHf|Ms(x)
    let mut mass_ms = 0.0; // Σ p(x)·PMs(x)
    let mut joint_hf_mf = 0.0;
    let mut mass_mf = 0.0;
    for class in members {
        let w = profile.weight(class.name())?.value();
        let cp = model.params().class(class)?;
        total_w += w;
        mean_mf += w * cp.p_mf().value();
        joint_hf_ms += w * cp.p_ms().value() * cp.p_hf_given_ms().value();
        mass_ms += w * cp.p_ms().value();
        joint_hf_mf += w * cp.p_mf().value() * cp.p_hf_given_mf().value();
        mass_mf += w * cp.p_mf().value();
    }
    if total_w <= 0.0 {
        return Err(ModelError::InvalidFactor {
            value: total_w,
            context: "total weight of merged classes",
        });
    }
    if mass_ms <= 0.0 {
        return Err(ModelError::InvalidFactor {
            value: mass_ms,
            context: "P(Ms) within merged class (machine never succeeds)",
        });
    }
    if mass_mf <= 0.0 {
        return Err(ModelError::InvalidFactor {
            value: mass_mf,
            context: "P(Mf) within merged class (machine never fails)",
        });
    }
    let params = ClassParams::new(
        Probability::clamped(mean_mf / total_w),
        Probability::clamped(joint_hf_ms / mass_ms),
        Probability::clamped(joint_hf_mf / mass_mf),
    );
    Ok(MergedClass {
        members: members.to_vec(),
        weight: Probability::clamped(total_w),
        params,
    })
}

/// Replaces the named classes of a model/profile pair by their merge,
/// returning the coarser `(model, profile)` a class-blind experimenter
/// would work with.
///
/// The merged class is named by joining the member names with `+`.
///
/// # Errors
///
/// As [`merge_classes`], plus builder errors for degenerate results.
pub fn coarsen(
    model: &SequentialModel,
    profile: &DemandProfile,
    members: &[ClassId],
) -> Result<(SequentialModel, DemandProfile), ModelError> {
    let merged = merge_classes(model, profile, members)?;
    let merged_name: String = members
        .iter()
        .map(ClassId::name)
        .collect::<Vec<_>>()
        .join("+");
    let mut params = ModelParams::builder().class(merged_name.as_str(), merged.params);
    let mut prof = DemandProfile::builder().class(merged_name.as_str(), merged.weight.value());
    for (class, weight) in profile.iter() {
        if members.contains(class) {
            continue;
        }
        params = params.class(class.clone(), *model.params().class(class)?);
        prof = prof.class(class.clone(), weight.value());
    }
    Ok((SequentialModel::new(params.build()?), prof.build()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    /// Two subclasses where the reader is COMPLETELY indifferent to the
    /// machine (t = 0 in each), but difficulty is shared: in the hard
    /// subclass both fail a lot, in the easy one both rarely.
    fn indifferent_but_heterogeneous() -> (SequentialModel, DemandProfile) {
        let model = SequentialModel::new(
            ModelParams::builder()
                .class("sub-easy", ClassParams::new(p(0.05), p(0.1), p(0.1)))
                .class("sub-hard", ClassParams::new(p(0.6), p(0.8), p(0.8)))
                .build()
                .unwrap(),
        );
        let profile = DemandProfile::builder()
            .class("sub-easy", 0.7)
            .class("sub-hard", 0.3)
            .build()
            .unwrap();
        (model, profile)
    }

    #[test]
    fn heterogeneity_inflates_t() {
        // The paper's §6.2 caveat, exactly: within each subclass t = 0, yet
        // the merged class shows t > 0 purely because machine failures are
        // concentrated in the subclass where the reader also fails.
        let (model, profile) = indifferent_but_heterogeneous();
        let merged = merge_classes(
            &model,
            &profile,
            &[ClassId::new("sub-easy"), ClassId::new("sub-hard")],
        )
        .unwrap();
        assert!(
            merged.coherence_index() > 0.3,
            "{}",
            merged.coherence_index()
        );
        // PMf(merged) is the plain weighted mean.
        assert!((merged.params.p_mf().value() - (0.7 * 0.05 + 0.3 * 0.6)).abs() < 1e-12);
    }

    #[test]
    fn merging_preserves_system_failure() {
        // Coarsening must not change the overall failure probability — the
        // merged parameters are exactly what makes eq. (8) invariant.
        let (model, profile) = indifferent_but_heterogeneous();
        let before = model.system_failure(&profile).unwrap();
        let (coarse_model, coarse_profile) = coarsen(
            &model,
            &profile,
            &[ClassId::new("sub-easy"), ClassId::new("sub-hard")],
        )
        .unwrap();
        let after = coarse_model.system_failure(&coarse_profile).unwrap();
        assert!((before.value() - after.value()).abs() < 1e-12);
        assert_eq!(coarse_profile.len(), 1);
    }

    #[test]
    fn merging_homogeneous_classes_is_lossless() {
        // Two classes with identical parameters merge to those parameters.
        let cp = ClassParams::new(p(0.2), p(0.3), p(0.7));
        let model = SequentialModel::new(
            ModelParams::builder()
                .class("a", cp)
                .class("b", cp)
                .build()
                .unwrap(),
        );
        let profile = DemandProfile::builder()
            .class("a", 0.4)
            .class("b", 0.6)
            .build()
            .unwrap();
        let merged =
            merge_classes(&model, &profile, &[ClassId::new("a"), ClassId::new("b")]).unwrap();
        assert!((merged.params.p_mf().value() - cp.p_mf().value()).abs() < 1e-12);
        assert!((merged.params.p_hf_given_ms().value() - cp.p_hf_given_ms().value()).abs() < 1e-12);
        assert!((merged.params.p_hf_given_mf().value() - cp.p_hf_given_mf().value()).abs() < 1e-12);
        assert!((merged.weight.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merged_extrapolation_is_biased_under_profile_change() {
        // The punchline: the coarse model reproduces the *measured* profile
        // but extrapolates WRONGLY to a new profile, because the merged
        // parameters silently encode the old subclass mix. The fine model
        // extrapolates correctly.
        let (model, profile) = indifferent_but_heterogeneous();
        let members = [ClassId::new("sub-easy"), ClassId::new("sub-hard")];
        let (coarse_model, _) = coarsen(&model, &profile, &members).unwrap();
        // New environment: hard subclass doubles in frequency.
        let new_profile = DemandProfile::builder()
            .class("sub-easy", 0.4)
            .class("sub-hard", 0.6)
            .build()
            .unwrap();
        let truth = model.system_failure(&new_profile).unwrap().value();
        // The coarse observer cannot see the mix change; their class keeps
        // its old parameters and weight 1.
        let coarse_profile_new = DemandProfile::builder()
            .class("sub-easy+sub-hard", 1.0)
            .build()
            .unwrap();
        let coarse_prediction = coarse_model
            .system_failure(&coarse_profile_new)
            .unwrap()
            .value();
        assert!(
            (coarse_prediction - truth).abs() > 0.05,
            "coarse {coarse_prediction} vs truth {truth} should diverge"
        );
    }

    #[test]
    fn partial_merge_keeps_other_classes() {
        let model = SequentialModel::new(
            ModelParams::builder()
                .class("a", ClassParams::new(p(0.1), p(0.2), p(0.3)))
                .class("b", ClassParams::new(p(0.2), p(0.3), p(0.4)))
                .class("c", ClassParams::new(p(0.3), p(0.4), p(0.5)))
                .build()
                .unwrap(),
        );
        let profile = DemandProfile::builder()
            .class("a", 0.5)
            .class("b", 0.3)
            .class("c", 0.2)
            .build()
            .unwrap();
        let (coarse_model, coarse_profile) =
            coarsen(&model, &profile, &[ClassId::new("a"), ClassId::new("b")]).unwrap();
        assert_eq!(coarse_profile.len(), 2);
        assert!(coarse_profile.weight("a+b").is_ok());
        assert!(coarse_profile.weight("c").is_ok());
        let before = model.system_failure(&profile).unwrap();
        let after = coarse_model.system_failure(&coarse_profile).unwrap();
        assert!((before.value() - after.value()).abs() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        let (model, profile) = indifferent_but_heterogeneous();
        assert!(matches!(
            merge_classes(&model, &profile, &[]),
            Err(ModelError::Empty { .. })
        ));
        assert!(matches!(
            merge_classes(&model, &profile, &[ClassId::new("ghost")]),
            Err(ModelError::UnknownClass { .. })
        ));
        // Machine never fails in the merged class → PHf|Mf undefined.
        let degenerate = SequentialModel::new(
            ModelParams::builder()
                .class("z", ClassParams::new(Probability::ZERO, p(0.3), p(0.9)))
                .build()
                .unwrap(),
        );
        let prof = DemandProfile::builder().class("z", 1.0).build().unwrap();
        assert!(matches!(
            merge_classes(&degenerate, &prof, &[ClassId::new("z")]),
            Err(ModelError::InvalidFactor { .. })
        ));
    }
}
