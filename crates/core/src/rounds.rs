//! Repeated screening rounds and interval cancers.
//!
//! Screening programmes re-invite patients every few years, so a cancer the
//! system misses this round gets further chances — but the *same case
//! difficulty* that caused the miss persists, so per-round failures are
//! correlated through the class, exactly the structure the paper's
//! conditional-on-demand modelling handles. A class-blind analysis that
//! chains the marginal failure probability (`PHf^k`) *underestimates* the
//! probability of a cancer slipping through `k` rounds, for the same
//! Jensen/covariance reason that drives eqs. (3) and (10):
//! `E[Π f_x] ≥ (E[f_x])^k` when the same class persists across rounds.
//!
//! Each round the tumour grows more visible, modelled by multiplying the
//! class failure probability by a per-round `visibility_gain < 1`.

use serde::{Deserialize, Serialize};

use crate::{DemandProfile, ModelError, SequentialModel};

/// Result of a multi-round analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundsAnalysis {
    /// `P(first detected at round i)`, `i = 0..rounds`.
    pub detection_by_round: Vec<f64>,
    /// Probability the cancer survives all rounds undetected (the
    /// "interval cancer" proxy).
    pub p_missed_all: f64,
    /// What a class-blind analysis would predict for `p_missed_all`
    /// (chaining marginal probabilities), always ≤ the correct value.
    pub naive_p_missed_all: f64,
    /// Expected detection round among cancers detected within the horizon.
    pub expected_detection_round: Option<f64>,
}

impl RoundsAnalysis {
    /// The factor by which the class-blind analysis underestimates the
    /// miss-through probability, `p_missed_all / naive`, or `None` if the
    /// naive value is zero.
    #[must_use]
    pub fn persistence_penalty(&self) -> Option<f64> {
        (self.naive_p_missed_all > 0.0).then(|| self.p_missed_all / self.naive_p_missed_all)
    }
}

/// Analyses `rounds` successive screens of the same cancer case population.
///
/// Per class `x`, the round-`i` failure probability is
/// `min(1, PHf(x) · visibility_gain^i)`; rounds are conditionally
/// independent given the class.
///
/// # Errors
///
/// * [`ModelError::InvalidFactor`] if `rounds == 0` or `visibility_gain`
///   is outside `(0, 1]`.
/// * [`ModelError::MissingClass`] if the profile mentions an absent class.
///
/// # Example
///
/// ```
/// use hmdiv_core::{paper, rounds::screening_rounds};
///
/// # fn main() -> Result<(), hmdiv_core::ModelError> {
/// let model = paper::example_model()?;
/// let field = paper::field_profile()?;
/// let analysis = screening_rounds(&model, &field, 3, 0.7)?;
/// // Persisting difficulty makes the true miss-through probability exceed
/// // the class-blind chain.
/// assert!(analysis.p_missed_all > analysis.naive_p_missed_all);
/// # Ok(())
/// # }
/// ```
pub fn screening_rounds(
    model: &SequentialModel,
    profile: &DemandProfile,
    rounds: usize,
    visibility_gain: f64,
) -> Result<RoundsAnalysis, ModelError> {
    if rounds == 0 {
        return Err(ModelError::InvalidFactor {
            value: 0.0,
            context: "round count",
        });
    }
    if !(visibility_gain > 0.0 && visibility_gain <= 1.0) {
        return Err(ModelError::InvalidFactor {
            value: visibility_gain,
            context: "visibility gain (must be in (0, 1])",
        });
    }
    // Per-round marginal failure probabilities, for the naive baseline.
    let mut naive_chain = 1.0;
    let mut detection_by_round = vec![0.0; rounds];
    let mut p_missed_all = 0.0;
    for round in 0..rounds {
        let marginal = profile.expect(|class| {
            let f = model
                .params()
                .class(class)
                .map(|cp| cp.class_failure().value())
                .unwrap_or(f64::NAN);
            (f * visibility_gain.powi(round as i32)).min(1.0)
        });
        if marginal.is_nan() {
            // A class was missing: surface the precise error.
            for (class, _) in profile.iter() {
                model.params().class(class)?;
            }
        }
        naive_chain *= marginal;
    }
    for (class, weight) in profile.iter() {
        let f0 = model.params().class(class)?.class_failure().value();
        let mut survive = 1.0; // P(missed in all rounds so far | class)
        for (round, slot) in detection_by_round.iter_mut().enumerate() {
            let f_i = (f0 * visibility_gain.powi(round as i32)).min(1.0);
            *slot += weight.value() * survive * (1.0 - f_i);
            survive *= f_i;
        }
        p_missed_all += weight.value() * survive;
    }
    let total_detected: f64 = detection_by_round.iter().sum();
    let expected_detection_round = (total_detected > 0.0).then(|| {
        detection_by_round
            .iter()
            .enumerate()
            .map(|(i, p)| i as f64 * p)
            .sum::<f64>()
            / total_detected
    });
    Ok(RoundsAnalysis {
        detection_by_round,
        p_missed_all,
        naive_p_missed_all: naive_chain,
        expected_detection_round,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn probabilities_account_for_everything() {
        let model = paper::example_model().unwrap();
        let field = paper::field_profile().unwrap();
        let a = screening_rounds(&model, &field, 4, 0.8).unwrap();
        let total: f64 = a.detection_by_round.iter().sum::<f64>() + a.p_missed_all;
        assert!((total - 1.0).abs() < 1e-12, "{total}");
        assert_eq!(a.detection_by_round.len(), 4);
    }

    #[test]
    fn single_round_matches_sequential_model() {
        let model = paper::example_model().unwrap();
        let field = paper::field_profile().unwrap();
        let a = screening_rounds(&model, &field, 1, 1.0).unwrap();
        let phf = model.system_failure(&field).unwrap().value();
        assert!((a.p_missed_all - phf).abs() < 1e-12);
        assert!((a.detection_by_round[0] - (1.0 - phf)).abs() < 1e-12);
        // With one round, naive == exact.
        assert!((a.naive_p_missed_all - a.p_missed_all).abs() < 1e-12);
    }

    #[test]
    fn persistence_penalty_exceeds_one_with_heterogeneity() {
        let model = paper::example_model().unwrap();
        let field = paper::field_profile().unwrap();
        let a = screening_rounds(&model, &field, 3, 1.0).unwrap();
        // The paper example's classes differ strongly (0.143 vs 0.605), so
        // chaining marginals badly underestimates the miss-through rate.
        let penalty = a.persistence_penalty().unwrap();
        assert!(penalty > 1.5, "{penalty}");
        assert!(a.p_missed_all > a.naive_p_missed_all);
    }

    #[test]
    fn visibility_gain_accelerates_detection() {
        let model = paper::example_model().unwrap();
        let field = paper::field_profile().unwrap();
        let static_tumour = screening_rounds(&model, &field, 4, 1.0).unwrap();
        let growing = screening_rounds(&model, &field, 4, 0.6).unwrap();
        assert!(growing.p_missed_all < static_tumour.p_missed_all);
        assert!(
            growing.expected_detection_round.unwrap()
                < static_tumour.expected_detection_round.unwrap() + 1e-12
        );
    }

    #[test]
    fn more_rounds_fewer_misses() {
        let model = paper::example_model().unwrap();
        let field = paper::field_profile().unwrap();
        let short = screening_rounds(&model, &field, 2, 0.8).unwrap();
        let long = screening_rounds(&model, &field, 6, 0.8).unwrap();
        assert!(long.p_missed_all < short.p_missed_all);
    }

    #[test]
    fn homogeneous_classes_have_no_penalty() {
        use crate::{ClassParams, ModelParams};
        use hmdiv_prob::Probability;
        let p = |v: f64| Probability::new(v).unwrap();
        let cp = ClassParams::new(p(0.2), p(0.3), p(0.6));
        let model = SequentialModel::new(
            ModelParams::builder()
                .class("a", cp)
                .class("b", cp)
                .build()
                .unwrap(),
        );
        let profile = DemandProfile::builder()
            .class("a", 0.5)
            .class("b", 0.5)
            .build()
            .unwrap();
        let a = screening_rounds(&model, &profile, 3, 0.9).unwrap();
        assert!((a.persistence_penalty().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn validation_errors() {
        let model = paper::example_model().unwrap();
        let field = paper::field_profile().unwrap();
        assert!(screening_rounds(&model, &field, 0, 0.8).is_err());
        assert!(screening_rounds(&model, &field, 3, 0.0).is_err());
        assert!(screening_rounds(&model, &field, 3, 1.5).is_err());
        let ghost = DemandProfile::builder()
            .class("ghost", 1.0)
            .build()
            .unwrap();
        assert!(screening_rounds(&model, &ghost, 3, 0.8).is_err());
    }
}
