use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// Identifier of a *class of demands* (the paper's `x`).
///
/// The paper stresses that cases must be grouped into classes within which
/// the conditional failure probabilities are homogeneous — e.g. "easy" vs
/// "difficult" mammograms in the §5 example, or finer classifications by
/// lesion type. A `ClassId` is a cheap-to-clone interned name.
///
/// # Example
///
/// ```
/// use hmdiv_core::ClassId;
///
/// let easy = ClassId::new("easy");
/// assert_eq!(easy.name(), "easy");
/// assert_eq!(easy, ClassId::from("easy"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(from = "String", into = "String")]
pub struct ClassId(Arc<str>);

impl ClassId {
    /// Creates a class identifier from a name.
    #[must_use]
    pub fn new(name: impl AsRef<str>) -> Self {
        ClassId(Arc::from(name.as_ref()))
    }

    /// The class name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ClassId {
    fn from(s: &str) -> Self {
        ClassId::new(s)
    }
}

impl From<String> for ClassId {
    fn from(s: String) -> Self {
        ClassId(Arc::from(s.as_str()))
    }
}

impl From<ClassId> for String {
    fn from(c: ClassId) -> String {
        c.0.as_ref().to_owned()
    }
}

impl AsRef<str> for ClassId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for ClassId {
    fn borrow(&self) -> &str {
        &self.0
    }
}

/// An interned, sorted universe of demand classes.
///
/// Class names resolve **once** to dense `u32` indices; every compiled
/// evaluation structure ([`crate::compiled`]) stores its per-class data in
/// parallel vectors over these indices, so hot loops index slices instead of
/// walking `BTreeMap<ClassId, _>` nodes. Indices follow sorted name order —
/// the same order a `BTreeMap` iterates — which is what keeps compiled
/// evaluation bit-identical to the map-based reference (including RNG
/// consumption order in posterior sampling).
///
/// # Example
///
/// ```
/// use hmdiv_core::ClassUniverse;
///
/// let u = ClassUniverse::from_names(["difficult", "easy"]);
/// assert_eq!(u.len(), 2);
/// assert_eq!(u.index_of("difficult"), Some(0));
/// assert_eq!(u.index_of("easy"), Some(1));
/// assert_eq!(u.class(1).name(), "easy");
/// assert!(u.index_of("odd").is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassUniverse {
    /// Sorted, deduplicated class names; `names[i]` is the class at index
    /// `i as u32`.
    names: Vec<ClassId>,
}

impl ClassUniverse {
    /// Interns a collection of class names (sorted and deduplicated).
    #[must_use]
    pub fn from_names<I, C>(names: I) -> Self
    where
        I: IntoIterator<Item = C>,
        C: Into<ClassId>,
    {
        let mut names: Vec<ClassId> = names.into_iter().map(Into::into).collect();
        names.sort();
        names.dedup();
        ClassUniverse { names }
    }

    /// Number of classes in the universe.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the universe is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The dense index of a class name, or `None` if unknown.
    #[must_use]
    pub fn index_of(&self, name: &str) -> Option<u32> {
        self.names
            .binary_search_by(|c| c.name().cmp(name))
            .ok()
            .map(|i| i as u32)
    }

    /// The dense index of a class name, as a typed error on miss.
    ///
    /// # Errors
    ///
    /// [`crate::ModelError::UnknownClass`] if the name is not interned.
    pub fn resolve(&self, name: &str) -> Result<u32, crate::ModelError> {
        self.index_of(name)
            .ok_or_else(|| crate::ModelError::UnknownClass {
                class: ClassId::new(name),
            })
    }

    /// The class at a dense index.
    ///
    /// # Panics
    ///
    /// If `index >= self.len()` — indices come from this universe's own
    /// `index_of`/`resolve`, so a panic indicates a cross-universe mixup.
    #[must_use]
    pub fn class(&self, index: u32) -> &ClassId {
        &self.names[index as usize]
    }

    /// Whether a class name is interned.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// Iterates the classes in index (sorted-name) order.
    pub fn iter(&self) -> impl Iterator<Item = &ClassId> {
        self.names.iter()
    }

    /// The classes as a slice in index order.
    #[must_use]
    pub fn classes(&self) -> &[ClassId] {
        &self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn equality_and_ordering_by_name() {
        assert_eq!(ClassId::new("a"), ClassId::from("a"));
        assert!(ClassId::new("a") < ClassId::new("b"));
    }

    #[test]
    fn borrow_enables_str_lookup() {
        let mut m: BTreeMap<ClassId, u32> = BTreeMap::new();
        m.insert(ClassId::new("easy"), 1);
        assert_eq!(m.get("easy"), Some(&1));
    }

    #[test]
    fn display_and_conversions() {
        let c = ClassId::new("difficult");
        assert_eq!(c.to_string(), "difficult");
        assert_eq!(String::from(c.clone()), "difficult");
        assert_eq!(ClassId::from(String::from("difficult")), c);
        assert_eq!(c.as_ref(), "difficult");
    }

    #[test]
    fn clone_is_cheap_shared() {
        let a = ClassId::new("x");
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.0, &b.0));
    }

    #[test]
    fn universe_interns_sorted_and_deduplicated() {
        let u = ClassUniverse::from_names(["easy", "difficult", "easy", "average"]);
        assert_eq!(u.len(), 3);
        let names: Vec<&str> = u.iter().map(ClassId::name).collect();
        assert_eq!(names, ["average", "difficult", "easy"]);
        for (i, class) in u.classes().iter().enumerate() {
            assert_eq!(u.index_of(class.name()), Some(i as u32));
            assert_eq!(u.class(i as u32), class);
            assert!(u.contains(class.name()));
        }
    }

    #[test]
    fn universe_resolve_errors_on_unknown() {
        let u = ClassUniverse::from_names(["easy"]);
        assert_eq!(u.resolve("easy"), Ok(0));
        assert!(matches!(
            u.resolve("odd"),
            Err(crate::ModelError::UnknownClass { class }) if class.name() == "odd"
        ));
        assert!(!u.contains("odd"));
    }

    #[test]
    fn empty_universe() {
        let u = ClassUniverse::from_names(Vec::<ClassId>::new());
        assert!(u.is_empty());
        assert_eq!(u.index_of("x"), None);
    }
}
