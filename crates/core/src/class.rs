use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// Identifier of a *class of demands* (the paper's `x`).
///
/// The paper stresses that cases must be grouped into classes within which
/// the conditional failure probabilities are homogeneous — e.g. "easy" vs
/// "difficult" mammograms in the §5 example, or finer classifications by
/// lesion type. A `ClassId` is a cheap-to-clone interned name.
///
/// # Example
///
/// ```
/// use hmdiv_core::ClassId;
///
/// let easy = ClassId::new("easy");
/// assert_eq!(easy.name(), "easy");
/// assert_eq!(easy, ClassId::from("easy"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(from = "String", into = "String")]
pub struct ClassId(Arc<str>);

impl ClassId {
    /// Creates a class identifier from a name.
    #[must_use]
    pub fn new(name: impl AsRef<str>) -> Self {
        ClassId(Arc::from(name.as_ref()))
    }

    /// The class name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ClassId {
    fn from(s: &str) -> Self {
        ClassId::new(s)
    }
}

impl From<String> for ClassId {
    fn from(s: String) -> Self {
        ClassId(Arc::from(s.as_str()))
    }
}

impl From<ClassId> for String {
    fn from(c: ClassId) -> String {
        c.0.as_ref().to_owned()
    }
}

impl AsRef<str> for ClassId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for ClassId {
    fn borrow(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn equality_and_ordering_by_name() {
        assert_eq!(ClassId::new("a"), ClassId::from("a"));
        assert!(ClassId::new("a") < ClassId::new("b"));
    }

    #[test]
    fn borrow_enables_str_lookup() {
        let mut m: BTreeMap<ClassId, u32> = BTreeMap::new();
        m.insert(ClassId::new("easy"), 1);
        assert_eq!(m.get("easy"), Some(&1));
    }

    #[test]
    fn display_and_conversions() {
        let c = ClassId::new("difficult");
        assert_eq!(c.to_string(), "difficult");
        assert_eq!(String::from(c.clone()), "difficult");
        assert_eq!(ClassId::from(String::from("difficult")), c);
        assert_eq!(c.as_ref(), "difficult");
    }

    #[test]
    fn clone_is_cheap_shared() {
        let a = ClassId::new("x");
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.0, &b.0));
    }
}
