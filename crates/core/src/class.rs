use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// Identifier of a *class of demands* (the paper's `x`).
///
/// The paper stresses that cases must be grouped into classes within which
/// the conditional failure probabilities are homogeneous — e.g. "easy" vs
/// "difficult" mammograms in the §5 example, or finer classifications by
/// lesion type. A `ClassId` is a cheap-to-clone interned name.
///
/// # Example
///
/// ```
/// use hmdiv_core::ClassId;
///
/// let easy = ClassId::new("easy");
/// assert_eq!(easy.name(), "easy");
/// assert_eq!(easy, ClassId::from("easy"));
/// ```
// Derived `PartialOrd` expands to `partial_cmp`, which clippy.toml disallows
// for hand-written float comparisons; the derive itself is fine.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(from = "String", into = "String")]
pub struct ClassId(Arc<str>);

impl ClassId {
    /// Creates a class identifier from a name.
    #[must_use]
    pub fn new(name: impl AsRef<str>) -> Self {
        ClassId(Arc::from(name.as_ref()))
    }

    /// The class name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ClassId {
    fn from(s: &str) -> Self {
        ClassId::new(s)
    }
}

impl From<String> for ClassId {
    fn from(s: String) -> Self {
        ClassId(Arc::from(s.as_str()))
    }
}

impl From<ClassId> for String {
    fn from(c: ClassId) -> String {
        c.0.as_ref().to_owned()
    }
}

impl AsRef<str> for ClassId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for ClassId {
    fn borrow(&self) -> &str {
        &self.0
    }
}

/// An interned, sorted universe of demand classes.
///
/// Class names resolve **once** to dense `u32` indices; every compiled
/// evaluation structure ([`crate::compiled`]) stores its per-class data in
/// parallel vectors over these indices, so hot loops index slices instead of
/// walking `BTreeMap<ClassId, _>` nodes. Indices follow sorted name order —
/// the same order a `BTreeMap` iterates — which is what keeps compiled
/// evaluation bit-identical to the map-based reference (including RNG
/// consumption order in posterior sampling).
///
/// # Example
///
/// ```
/// use hmdiv_core::ClassUniverse;
///
/// let u = ClassUniverse::from_names(["difficult", "easy"]);
/// assert_eq!(u.len(), 2);
/// assert_eq!(u.index_of("difficult"), Some(0));
/// assert_eq!(u.index_of("easy"), Some(1));
/// assert_eq!(u.class(1).name(), "easy");
/// assert!(u.index_of("odd").is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassUniverse {
    /// Sorted, deduplicated class names; `names[i]` is the class at index
    /// `i as u32`.
    names: Vec<ClassId>,
}

impl ClassUniverse {
    /// Interns a collection of class names (sorted and deduplicated).
    #[must_use]
    pub fn from_names<I, C>(names: I) -> Self
    where
        I: IntoIterator<Item = C>,
        C: Into<ClassId>,
    {
        let mut names: Vec<ClassId> = names.into_iter().map(Into::into).collect();
        names.sort();
        names.dedup();
        ClassUniverse { names }
    }

    /// Number of classes in the universe.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the universe is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The dense index of a class name, or `None` if unknown.
    #[must_use]
    pub fn index_of(&self, name: &str) -> Option<u32> {
        self.names
            .binary_search_by(|c| c.name().cmp(name))
            .ok()
            .map(|i| i as u32)
    }

    /// The dense index of a class name, as a typed error on miss.
    ///
    /// # Errors
    ///
    /// [`crate::ModelError::UnknownClass`] if the name is not interned.
    pub fn resolve(&self, name: &str) -> Result<u32, crate::ModelError> {
        self.index_of(name)
            .ok_or_else(|| crate::ModelError::UnknownClass {
                class: ClassId::new(name),
            })
    }

    /// The class at a dense index.
    ///
    /// # Panics
    ///
    /// If `index >= self.len()` — indices come from this universe's own
    /// `index_of`/`resolve`, so a panic indicates a cross-universe mixup.
    #[must_use]
    pub fn class(&self, index: u32) -> &ClassId {
        &self.names[index as usize]
    }

    /// Whether a class name is interned.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// Iterates the classes in index (sorted-name) order.
    pub fn iter(&self) -> impl Iterator<Item = &ClassId> {
        self.names.iter()
    }

    /// The classes as a slice in index order.
    #[must_use]
    pub fn classes(&self) -> &[ClassId] {
        &self.names
    }

    /// A content hash over the interned names, in index order (FNV-1a 64).
    ///
    /// Two universes hash equal iff they intern the same names in the same
    /// order — i.e. iff every dense index means the same class in both.
    /// The hash travels with exported models ([`UniverseManifest`]) so a
    /// deserialized model and a foreign profile can verify index-space
    /// compatibility instead of re-interning and hoping.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for name in &self.names {
            for b in name.name().as_bytes() {
                h = fnv1a(h, *b);
            }
            // Separator outside UTF-8 so ["ab","c"] != ["a","bc"].
            h = fnv1a(h, 0xFF);
        }
        h
    }

    /// Checks that `other` interns the same names in the same order, i.e.
    /// that dense indices can flow between structures compiled against
    /// either universe.
    ///
    /// # Errors
    ///
    /// [`crate::ModelError::UniverseMismatch`] naming the first divergence.
    pub fn verify_compatible(&self, other: &ClassUniverse) -> Result<(), crate::ModelError> {
        if self.names == other.names {
            return Ok(());
        }
        let detail = if self.len() != other.len() {
            format!("{} classes vs {}", self.len(), other.len())
        } else {
            self.names
                .iter()
                .zip(&other.names)
                .enumerate()
                .find(|(_, (a, b))| a != b)
                .map(|(i, (a, b))| format!("index {i}: `{a}` vs `{b}`"))
                .unwrap_or_else(|| "universes differ".to_owned())
        };
        Err(crate::ModelError::UniverseMismatch { detail })
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// One FNV-1a 64 step.
fn fnv1a(h: u64, byte: u8) -> u64 {
    (h ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3)
}

/// A serialized [`ClassUniverse`]: the ordered name list plus its content
/// hash, meant to travel alongside exported models and reports.
///
/// Restoring a manifest re-checks everything a consumer relies on — that
/// the names are in sorted interning order, free of duplicates, and that
/// the declared hash matches — so a model loaded from foreign bytes either
/// proves its index space or fails with a typed error, rather than
/// re-interning and silently reordering.
///
/// # Example
///
/// ```
/// use hmdiv_core::{ClassUniverse, UniverseManifest};
///
/// let u = ClassUniverse::from_names(["difficult", "easy"]);
/// let manifest = UniverseManifest::of(&u);
/// assert_eq!(manifest.restore().unwrap(), u);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UniverseManifest {
    classes: Vec<String>,
    hash: u64,
}

impl UniverseManifest {
    /// Captures a universe's name list and content hash.
    #[must_use]
    pub fn of(universe: &ClassUniverse) -> Self {
        UniverseManifest {
            classes: universe.iter().map(|c| c.name().to_owned()).collect(),
            hash: universe.content_hash(),
        }
    }

    /// Builds a manifest from already-serialized parts (e.g. wire input).
    /// Validation happens in [`UniverseManifest::restore`].
    #[must_use]
    pub fn from_parts(classes: Vec<String>, hash: u64) -> Self {
        UniverseManifest { classes, hash }
    }

    /// The class names in index order.
    #[must_use]
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// The declared content hash.
    #[must_use]
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Rebuilds the universe, verifying index-space integrity.
    ///
    /// # Errors
    ///
    /// [`crate::ModelError::UniverseMismatch`] if the names are unsorted or
    /// duplicated (the declared index order is not the interning order) or
    /// the declared hash does not match the recomputed one.
    pub fn restore(&self) -> Result<ClassUniverse, crate::ModelError> {
        for pair in self.classes.windows(2) {
            if pair[0] >= pair[1] {
                return Err(crate::ModelError::UniverseMismatch {
                    detail: format!(
                        "manifest classes not in sorted interning order: `{}` before `{}`",
                        pair[0], pair[1]
                    ),
                });
            }
        }
        let universe = ClassUniverse::from_names(self.classes.iter().map(String::as_str));
        let recomputed = universe.content_hash();
        if recomputed != self.hash {
            return Err(crate::ModelError::UniverseMismatch {
                detail: format!(
                    "manifest hash {:016x} does not match recomputed {:016x}",
                    self.hash, recomputed
                ),
            });
        }
        Ok(universe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn equality_and_ordering_by_name() {
        assert_eq!(ClassId::new("a"), ClassId::from("a"));
        assert!(ClassId::new("a") < ClassId::new("b"));
    }

    #[test]
    fn borrow_enables_str_lookup() {
        let mut m: BTreeMap<ClassId, u32> = BTreeMap::new();
        m.insert(ClassId::new("easy"), 1);
        assert_eq!(m.get("easy"), Some(&1));
    }

    #[test]
    fn display_and_conversions() {
        let c = ClassId::new("difficult");
        assert_eq!(c.to_string(), "difficult");
        assert_eq!(String::from(c.clone()), "difficult");
        assert_eq!(ClassId::from(String::from("difficult")), c);
        assert_eq!(c.as_ref(), "difficult");
    }

    #[test]
    fn clone_is_cheap_shared() {
        let a = ClassId::new("x");
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.0, &b.0));
    }

    #[test]
    fn universe_interns_sorted_and_deduplicated() {
        let u = ClassUniverse::from_names(["easy", "difficult", "easy", "average"]);
        assert_eq!(u.len(), 3);
        let names: Vec<&str> = u.iter().map(ClassId::name).collect();
        assert_eq!(names, ["average", "difficult", "easy"]);
        for (i, class) in u.classes().iter().enumerate() {
            assert_eq!(u.index_of(class.name()), Some(i as u32));
            assert_eq!(u.class(i as u32), class);
            assert!(u.contains(class.name()));
        }
    }

    #[test]
    fn universe_resolve_errors_on_unknown() {
        let u = ClassUniverse::from_names(["easy"]);
        assert_eq!(u.resolve("easy"), Ok(0));
        assert!(matches!(
            u.resolve("odd"),
            Err(crate::ModelError::UnknownClass { class }) if class.name() == "odd"
        ));
        assert!(!u.contains("odd"));
    }

    #[test]
    fn empty_universe() {
        let u = ClassUniverse::from_names(Vec::<ClassId>::new());
        assert!(u.is_empty());
        assert_eq!(u.index_of("x"), None);
    }

    #[test]
    fn content_hash_depends_on_names_and_boundaries() {
        let a = ClassUniverse::from_names(["easy", "difficult"]);
        let b = ClassUniverse::from_names(["difficult", "easy"]);
        assert_eq!(a.content_hash(), b.content_hash(), "same interned set");
        let c = ClassUniverse::from_names(["easy", "difficul"]);
        assert_ne!(a.content_hash(), c.content_hash());
        // Concatenation across the separator must not collide.
        let d = ClassUniverse::from_names(["ab", "c"]);
        let e = ClassUniverse::from_names(["a", "bc"]);
        assert_ne!(d.content_hash(), e.content_hash());
    }

    #[test]
    fn verify_compatible_names_first_divergence() {
        let a = ClassUniverse::from_names(["difficult", "easy"]);
        assert!(a.verify_compatible(&a.clone()).is_ok());
        let fewer = ClassUniverse::from_names(["easy"]);
        assert!(matches!(
            a.verify_compatible(&fewer),
            Err(crate::ModelError::UniverseMismatch { detail }) if detail.contains("2 classes vs 1")
        ));
        let renamed = ClassUniverse::from_names(["difficult", "hard"]);
        assert!(matches!(
            a.verify_compatible(&renamed),
            Err(crate::ModelError::UniverseMismatch { detail }) if detail.contains("index 1")
        ));
    }

    #[test]
    fn manifest_round_trips() {
        let u = ClassUniverse::from_names(["easy", "difficult", "average"]);
        let m = UniverseManifest::of(&u);
        assert_eq!(m.classes(), ["average", "difficult", "easy"]);
        assert_eq!(m.hash(), u.content_hash());
        assert_eq!(m.restore().unwrap(), u);
    }

    #[test]
    fn manifest_rejects_unsorted_duplicated_and_tampered() {
        let unsorted = UniverseManifest::from_parts(vec!["easy".into(), "difficult".into()], 0);
        assert!(matches!(
            unsorted.restore(),
            Err(crate::ModelError::UniverseMismatch { detail }) if detail.contains("sorted")
        ));
        let duplicated = UniverseManifest::from_parts(vec!["easy".into(), "easy".into()], 0);
        assert!(duplicated.restore().is_err());
        let u = ClassUniverse::from_names(["difficult", "easy"]);
        let tampered = UniverseManifest::from_parts(
            vec!["difficult".into(), "easy".into()],
            u.content_hash() ^ 1,
        );
        assert!(matches!(
            tampered.restore(),
            Err(crate::ModelError::UniverseMismatch { detail }) if detail.contains("hash")
        ));
    }
}
