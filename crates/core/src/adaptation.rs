//! Reader-adaptation models: indirect effects of machine reliability on
//! human behaviour (§5 items 3–4; automation bias, Skitka et al. \[7\]).
//!
//! The paper warns that its linear Fig. 4 analysis only holds for *small*
//! changes in `PMf`: readers who perceive a more reliable machine may become
//! complacent (raising `PHf|Mf` — they stop catching the machine's rare
//! failures), while readers who perceive an unreliable machine may come to
//! distrust it (pulling `PHf|Mf` back toward `PHf|Ms`, i.e. `t → 0`). An
//! [`AdaptationResponse`] is a rule that, given a class's old and new machine
//! failure probabilities, adjusts the reader's conditional failure
//! probabilities. Extrapolation scenarios apply it after machine changes.

use std::fmt;

use serde::{Deserialize, Serialize};

use hmdiv_prob::Probability;

use crate::{ClassParams, ModelError};

/// A named model of how readers adapt to a change in machine reliability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AdaptationResponse {
    /// No adaptation: reader conditionals are unchanged (the paper's default
    /// working assumption, justified when machine failures are too rare for
    /// the reader to notice the change).
    None,
    /// Complacency / automation bias: as the machine's failure probability
    /// falls, the reader relies on it more, and failures of the machine are
    /// caught less often. `PHf|Mf` moves toward 1 by a fraction of the
    /// relative improvement, scaled by `strength ∈ [0, 1]`:
    ///
    /// ```text
    /// PHf|Mf' = PHf|Mf + strength·(1 − PHf|Mf)·(1 − PMf'/PMf)
    /// ```
    ///
    /// `PHf|Ms` is left unchanged: complacency in the automation-bias
    /// literature (Skitka et al.) is an *omission* effect — failures of the
    /// automation go uncaught — not a change in performance when the
    /// automation is right.
    Complacency {
        /// Fraction of the relative machine improvement converted into
        /// reader reliance.
        strength: f64,
    },
    /// Distrust: as the machine's failure probability rises, the reader
    /// discounts its output; both conditionals move toward their midpoint
    /// (`t → 0`) by `strength` of the relative degradation.
    Distrust {
        /// Fraction of the relative machine degradation converted into
        /// discounting.
        strength: f64,
    },
    /// Heightened vigilance: a visibly fallible machine trains the reader to
    /// double-check; `PHf|Mf` falls by `strength` of the relative
    /// degradation of the machine.
    Vigilance {
        /// Fraction of the relative machine degradation converted into
        /// extra scrutiny.
        strength: f64,
    },
}

impl AdaptationResponse {
    /// Validates the response's parameters.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidFactor`] if a strength is outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), ModelError> {
        let strength = match self {
            AdaptationResponse::None => return Ok(()),
            AdaptationResponse::Complacency { strength }
            | AdaptationResponse::Distrust { strength }
            | AdaptationResponse::Vigilance { strength } => *strength,
        };
        if strength.is_nan() || !(0.0..=1.0).contains(&strength) {
            return Err(ModelError::InvalidFactor {
                value: strength,
                context: "adaptation strength",
            });
        }
        Ok(())
    }

    /// Applies the response to a class whose machine failure probability
    /// changed from `old_p_mf` (in `params`) to `params.p_mf()`.
    ///
    /// Returns the parameters with adjusted reader conditionals. If the
    /// machine did not change, the parameters are returned unchanged.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidFactor`] if the response is invalid (see
    /// [`AdaptationResponse::validate`]).
    pub fn apply(
        &self,
        old_p_mf: Probability,
        params: &ClassParams,
    ) -> Result<ClassParams, ModelError> {
        self.validate()?;
        let new_p_mf = params.p_mf();
        if old_p_mf == new_p_mf || old_p_mf.is_zero() {
            return Ok(*params);
        }
        let ratio = new_p_mf.value() / old_p_mf.value();
        match self {
            AdaptationResponse::None => Ok(*params),
            AdaptationResponse::Complacency { strength } => {
                if ratio >= 1.0 {
                    return Ok(*params); // complacency only reacts to improvement
                }
                let improvement = 1.0 - ratio;
                let hf_mf = params.p_hf_given_mf().value();
                let new_hf_mf = hf_mf + strength * (1.0 - hf_mf) * improvement;
                Ok(params.with_reader(params.p_hf_given_ms(), Probability::clamped(new_hf_mf)))
            }
            AdaptationResponse::Distrust { strength } => {
                if ratio <= 1.0 {
                    return Ok(*params); // distrust only reacts to degradation
                }
                let degradation = (ratio - 1.0).min(1.0);
                let hf_ms = params.p_hf_given_ms().value();
                let hf_mf = params.p_hf_given_mf().value();
                let mid = (hf_ms + hf_mf) / 2.0;
                let pull = strength * degradation;
                Ok(params.with_reader(
                    Probability::clamped(hf_ms + (mid - hf_ms) * pull),
                    Probability::clamped(hf_mf + (mid - hf_mf) * pull),
                ))
            }
            AdaptationResponse::Vigilance { strength } => {
                if ratio <= 1.0 {
                    return Ok(*params);
                }
                let degradation = (ratio - 1.0).min(1.0);
                let hf_mf = params.p_hf_given_mf().value();
                let new_hf_mf = hf_mf * (1.0 - strength * degradation);
                Ok(params.with_reader(params.p_hf_given_ms(), Probability::clamped(new_hf_mf)))
            }
        }
    }
}

impl Default for AdaptationResponse {
    /// The default is no adaptation.
    fn default() -> Self {
        AdaptationResponse::None
    }
}

impl fmt::Display for AdaptationResponse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdaptationResponse::None => write!(f, "none"),
            AdaptationResponse::Complacency { strength } => write!(f, "complacency({strength})"),
            AdaptationResponse::Distrust { strength } => write!(f, "distrust({strength})"),
            AdaptationResponse::Vigilance { strength } => write!(f, "vigilance({strength})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn difficult() -> ClassParams {
        ClassParams::new(p(0.41), p(0.4), p(0.9))
    }

    #[test]
    fn none_is_identity() {
        let improved = difficult().with_machine_improved(10.0).unwrap();
        let adapted = AdaptationResponse::None.apply(p(0.41), &improved).unwrap();
        assert_eq!(adapted, improved);
    }

    #[test]
    fn complacency_raises_hf_given_mf_on_improvement() {
        let improved = difficult().with_machine_improved(10.0).unwrap();
        let adapted = AdaptationResponse::Complacency { strength: 0.5 }
            .apply(p(0.41), &improved)
            .unwrap();
        assert!(adapted.p_hf_given_mf() > improved.p_hf_given_mf());
        assert_eq!(adapted.p_hf_given_ms(), improved.p_hf_given_ms());
        // Machine parameter untouched by the adaptation itself.
        assert_eq!(adapted.p_mf(), improved.p_mf());
    }

    #[test]
    fn complacency_ignores_degradation() {
        let degraded = difficult().with_p_mf(p(0.8));
        let adapted = AdaptationResponse::Complacency { strength: 0.5 }
            .apply(p(0.41), &degraded)
            .unwrap();
        assert_eq!(adapted, degraded);
    }

    #[test]
    fn distrust_pulls_t_toward_zero() {
        let degraded = difficult().with_p_mf(p(0.8));
        let adapted = AdaptationResponse::Distrust { strength: 0.8 }
            .apply(p(0.41), &degraded)
            .unwrap();
        assert!(adapted.coherence_index() < degraded.coherence_index());
        assert!(adapted.coherence_index() >= 0.0);
        // Midpoint preserved: both conditionals moved symmetrically.
        let old_mid = (degraded.p_hf_given_ms().value() + degraded.p_hf_given_mf().value()) / 2.0;
        let new_mid = (adapted.p_hf_given_ms().value() + adapted.p_hf_given_mf().value()) / 2.0;
        assert!((old_mid - new_mid).abs() < 1e-12);
    }

    #[test]
    fn vigilance_lowers_hf_given_mf_on_degradation() {
        let degraded = difficult().with_p_mf(p(0.8));
        let adapted = AdaptationResponse::Vigilance { strength: 0.5 }
            .apply(p(0.41), &degraded)
            .unwrap();
        assert!(adapted.p_hf_given_mf() < degraded.p_hf_given_mf());
        assert_eq!(adapted.p_hf_given_ms(), degraded.p_hf_given_ms());
    }

    #[test]
    fn no_machine_change_is_identity_for_all() {
        for response in [
            AdaptationResponse::Complacency { strength: 1.0 },
            AdaptationResponse::Distrust { strength: 1.0 },
            AdaptationResponse::Vigilance { strength: 1.0 },
        ] {
            let adapted = response.apply(p(0.41), &difficult()).unwrap();
            assert_eq!(adapted, difficult(), "{response}");
        }
    }

    #[test]
    fn strength_validated() {
        for bad in [-0.1, 1.1, f64::NAN] {
            assert!(AdaptationResponse::Complacency { strength: bad }
                .validate()
                .is_err());
            assert!(AdaptationResponse::Distrust { strength: bad }
                .validate()
                .is_err());
            assert!(AdaptationResponse::Vigilance { strength: bad }
                .validate()
                .is_err());
        }
        assert!(AdaptationResponse::None.validate().is_ok());
    }

    #[test]
    fn zero_old_pmf_is_identity() {
        let params = ClassParams::new(p(0.1), p(0.2), p(0.6));
        let adapted = AdaptationResponse::Complacency { strength: 0.5 }
            .apply(Probability::ZERO, &params)
            .unwrap();
        assert_eq!(adapted, params);
    }

    #[test]
    fn full_complacency_can_erase_machine_benefit() {
        // With strength 1 and a 10× improvement, PHf|Mf rises sharply: the
        // complacent reader converts machine reliability into own fragility.
        let improved = difficult().with_machine_improved(10.0).unwrap();
        let adapted = AdaptationResponse::Complacency { strength: 1.0 }
            .apply(p(0.41), &improved)
            .unwrap();
        // t grew relative to the non-adapted case.
        assert!(adapted.coherence_index() > improved.coherence_index());
    }
}
