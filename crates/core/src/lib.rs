//! Clear-box reliability models of human–machine advisory systems.
//!
//! This crate implements the models of *Strigini, Povyakalo & Alberdi,
//! "Human-machine diversity in the use of computerised advisory systems: a
//! case study"* (DSN 2003). The system under study is a human expert (the
//! "reader") deciding whether to recall a screening patient, assisted by a
//! computer-aided detection tool (CADT) that prompts suspicious features on
//! the mammogram. Reader failures *are* system failures; the models describe
//! how the CADT's successes and failures shift the reader's failure
//! probability, per class of demand.
//!
//! # The two models
//!
//! * [`SequentialModel`] (§4, Fig. 3) — the general model: per class of
//!   cases `x`, the parameters are `PMf(x)` (machine false-negative
//!   probability), `PHf|Ms(x)` and `PHf|Mf(x)` (reader failure conditional
//!   on machine success/failure). The system failure probability over a
//!   [`DemandProfile`] is the paper's eq. (8).
//! * [`ParallelDetectionModel`] (§3, Fig. 2) — the more restrictive model
//!   derived from the intended procedure of use: 1-out-of-2 redundancy
//!   between human and machine *detection*, in series with human
//!   *classification* (eqs. 1–3, including the difficulty-covariance term).
//!
//! # The analysis toolkit
//!
//! * [`importance`] — the coherence/importance index
//!   `t(x) = PHf|Mf(x) − PHf|Ms(x)` (eq. 9), the Fig. 4 line, and the
//!   `PHf|Ms` lower bound on what machine improvement alone can achieve.
//! * [`decomposition`] — eq. (10):
//!   `PHf = E[PHf|Ms] + E[PMf]·E[t] + cov(PMf, t)`.
//! * [`extrapolate`] — §5: scenarios that re-weight the demand profile,
//!   improve the machine on chosen classes, shift reader skill, or couple
//!   reader parameters to machine reliability ([`adaptation`]).
//! * [`design`] — ranking classes by the system-level benefit of improving
//!   the CADT on them (§6.2's non-intuitive targeting result).
//! * [`tradeoff`] — false-negative/false-positive trade-offs and system
//!   ROC curves (the paper's announced next step).
//! * [`multi_reader`] — double reading, two readers + CADT, and
//!   lower-qualified-reader configurations (§7).
//! * [`uncertainty`] — Monte-Carlo propagation of parameter uncertainty
//!   into system predictions.
//! * [`paper`] — the paper's §5 worked example as ready-made constants.
//! * [`compiled`] — the interned [`ClassUniverse`] and dense
//!   struct-of-arrays [`CompiledModel`] every hot path evaluates through
//!   (batch scenario sweeps, patch/restore candidate evaluation),
//!   bit-identical to the map-based reference.
//!
//! # Example
//!
//! ```
//! use hmdiv_core::{paper, ModelError};
//!
//! # fn main() -> Result<(), ModelError> {
//! let model = paper::example_model()?;
//! let field = paper::field_profile()?;
//! // Paper table 2, "Field, all cases": 0.189.
//! let p = model.system_failure(&field)?;
//! assert!((p.value() - 0.18902).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod adaptation;
pub mod advice;
pub mod aggregation;
mod class;
pub mod cohort;
pub mod compiled;
pub mod decomposition;
pub mod design;
pub mod economics;
mod error;
pub mod extrapolate;
pub mod importance;
pub mod interval;
pub mod multi_reader;
pub mod paper;
mod parallel;
mod params;
mod profile;
pub mod rounds;
pub mod sensitivity;
mod sequential;
pub mod tradeoff;
pub mod uncertainty;

pub use class::{ClassId, ClassUniverse, UniverseManifest};
pub use compiled::{CompiledDetectionModel, CompiledModel, CompiledProfile};
pub use error::ModelError;
pub use parallel::{DetectionParams, ParallelDetectionModel};
pub use params::{ClassParams, ModelParams};
pub use profile::DemandProfile;
pub use sequential::SequentialModel;
