//! Property-based tests of the RBD substrate over randomly generated
//! diagrams.
// Integration tests are test code: the house `unwrap_used` ban (clippy.toml)
// exempts tests, but clippy only auto-detects `#[cfg(test)]` modules.
#![allow(clippy::unwrap_used)]

use std::collections::BTreeMap;

use hmdiv_prob::Probability;
use hmdiv_rbd::compiled::CompiledBlock;
use hmdiv_rbd::dual::{check_duality, dual};
use hmdiv_rbd::importance::importance;
use hmdiv_rbd::monte_carlo::monte_carlo_failure;
use hmdiv_rbd::paths::{minimal_cut_sets, minimal_path_sets};
use hmdiv_rbd::reliability::{esary_proschan_bounds, system_failure, system_reliability};
use hmdiv_rbd::structure::works;
use hmdiv_rbd::{Block, RbdError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random diagram over a small component alphabet (repeats allowed), with
/// bounded depth and width.
fn arb_block(depth: u32) -> BoxedStrategy<Block> {
    let leaf = (0u8..6).prop_map(|i| Block::component(format!("c{i}")));
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = arb_block(depth - 1);
    prop_oneof![
        3 => leaf,
        2 => proptest::collection::vec(inner.clone(), 1..4).prop_map(Block::series),
        2 => proptest::collection::vec(inner.clone(), 1..4).prop_map(Block::parallel),
        1 => (proptest::collection::vec(inner, 1..4), any::<proptest::sample::Index>()).prop_map(
            |(blocks, idx)| {
                let k = idx.index(blocks.len()) + 1;
                Block::k_of_n(k, blocks)
            }
        ),
    ]
    .boxed()
}

fn arb_probs() -> impl Strategy<Value = BTreeMap<String, f64>> {
    proptest::collection::vec(0.0..=1.0f64, 6).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, p)| (format!("c{i}"), p))
            .collect()
    })
}

fn lookup(probs: &BTreeMap<String, f64>) -> impl FnMut(&str) -> Result<Probability, RbdError> + '_ {
    move |name| {
        probs
            .get(name)
            .map(|&p| Probability::clamped(p))
            .ok_or_else(|| RbdError::UnknownComponent { name: name.into() })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn exact_reliability_matches_enumeration(block in arb_block(2), probs in arb_probs()) {
        let names = block.component_names();
        prop_assume!(names.len() <= 6);
        let exact = system_reliability(&block, &mut lookup(&probs)).unwrap().value();
        // Brute force over all states.
        let mut total = 0.0;
        for bits in 0u32..(1 << names.len()) {
            let state: BTreeMap<&str, bool> =
                names.iter().enumerate().map(|(i, &n)| (n, bits & (1 << i) != 0)).collect();
            let mut weight = 1.0;
            for (i, &n) in names.iter().enumerate() {
                let q = probs[n];
                weight *= if bits & (1 << i) != 0 { 1.0 - q } else { q };
            }
            if works(&block, &state).unwrap() {
                total += weight;
            }
        }
        prop_assert!((exact - total).abs() < 1e-9, "{exact} vs {total} for {block}");
    }

    #[test]
    fn bounds_bracket_exact_without_repeats(block in arb_block(2), probs in arb_probs()) {
        // The EP bounds assume independent components, i.e. no repeats.
        prop_assume!(block.repeated_names().is_empty());
        let exact = system_reliability(&block, &mut lookup(&probs)).unwrap();
        let (lo, hi) = esary_proschan_bounds(&block, lookup(&probs)).unwrap();
        prop_assert!(lo.value() <= exact.value() + 1e-9, "{} > {}", lo.value(), exact.value());
        prop_assert!(exact.value() <= hi.value() + 1e-9);
    }

    #[test]
    fn paths_and_cuts_characterise_structure(block in arb_block(2)) {
        let names = block.component_names();
        prop_assume!(names.len() <= 6);
        let paths = minimal_path_sets(&block).unwrap();
        let cuts = minimal_cut_sets(&block).unwrap();
        for bits in 0u32..(1 << names.len()) {
            let state: BTreeMap<&str, bool> =
                names.iter().enumerate().map(|(i, &n)| (n, bits & (1 << i) != 0)).collect();
            let up = works(&block, &state).unwrap();
            let via_paths = paths.iter().any(|p| p.iter().all(|c| state[c.as_str()]));
            let via_cuts = cuts.iter().any(|c| c.iter().all(|x| !state[x.as_str()]));
            prop_assert_eq!(up, via_paths);
            prop_assert_eq!(!up, via_cuts);
        }
    }

    #[test]
    fn dual_involutes_and_satisfies_identity(block in arb_block(2)) {
        prop_assume!(block.component_names().len() <= 6);
        prop_assert_eq!(dual(&dual(&block)), block.clone());
        check_duality(&block).unwrap();
    }

    #[test]
    fn birnbaum_importance_in_unit_interval(block in arb_block(2), probs in arb_probs()) {
        let names: Vec<String> = block.component_names().iter().map(|s| s.to_string()).collect();
        prop_assume!(names.len() <= 6);
        for name in &names {
            let m = importance(&block, name, lookup(&probs)).unwrap();
            // Coherent (monotone) systems: 0 <= I_B <= 1.
            prop_assert!(m.birnbaum >= -1e-12 && m.birnbaum <= 1.0 + 1e-12, "{}", m.birnbaum);
            prop_assert!(m.improvement_potential >= -1e-12);
        }
    }

    #[test]
    fn failure_monotone_in_component_failure(block in arb_block(2), probs in arb_probs()) {
        // Raising any one component's failure probability cannot lower the
        // system failure probability (coherence).
        let names: Vec<String> = block.component_names().iter().map(|s| s.to_string()).collect();
        prop_assume!(names.len() <= 6);
        let base = system_failure(&block, lookup(&probs)).unwrap().value();
        for name in &names {
            let mut bumped = probs.clone();
            let q = bumped[name.as_str()];
            bumped.insert(name.clone(), (q + 0.2).min(1.0));
            let worse = system_failure(&block, lookup(&bumped)).unwrap().value();
            prop_assert!(worse >= base - 1e-9, "{name}: {worse} < {base}");
        }
    }

    #[test]
    fn compiled_eval_matches_interpreted_works(block in arb_block(2), bits in 0u32..64u32) {
        // The postfix program must agree with the recursive structure
        // function on every diagram and state vector.
        let compiled = CompiledBlock::compile(&block).unwrap();
        let names = block.component_names();
        prop_assume!(names.len() <= 6);
        let state_vec: Vec<bool> = (0..compiled.component_count())
            .map(|i| bits & (1 << i) != 0)
            .collect();
        let state_map: BTreeMap<&str, bool> = compiled
            .component_names()
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), state_vec[i]))
            .collect();
        prop_assert_eq!(
            compiled.eval(&state_vec),
            works(&block, &state_map).unwrap(),
            "{}", block
        );
    }
}

/// A sequential interpreted Monte-Carlo sampler: the pre-compilation
/// implementation, kept as a reference — per-sample `BTreeMap` state,
/// recursive [`works`], draws in sorted-name order.
fn interpreted_failure_count(
    block: &Block,
    probs: &BTreeMap<String, f64>,
    samples: u64,
    rng: &mut StdRng,
) -> u64 {
    let names = block.component_names();
    let mut failures = 0u64;
    for _ in 0..samples {
        let mut state: BTreeMap<&str, bool> = BTreeMap::new();
        for &name in &names {
            state.insert(name, rng.gen::<f64>() >= probs[name]);
        }
        if !works(block, &state).unwrap() {
            failures += 1;
        }
    }
    failures
}

#[test]
fn monte_carlo_rng_stream_is_byte_identical_to_interpreted_reference() {
    // Compilation is a pure speed-up: for the same seed the compiled
    // sampler must consume the RNG stream exactly as the interpreted
    // version did and land on the same failure count, so published
    // estimates survive the optimisation unchanged.
    let sys = Block::series(vec![
        Block::parallel(vec![Block::component("Hd"), Block::component("Md")]),
        Block::component("Hc"),
        Block::k_of_n(
            2,
            vec![
                Block::component("a"),
                Block::component("b"),
                Block::component("Hd"),
            ],
        ),
    ]);
    let probs: BTreeMap<String, f64> = [
        ("Hc", 0.1),
        ("Hd", 0.2),
        ("Md", 0.07),
        ("a", 0.15),
        ("b", 0.3),
    ]
    .into_iter()
    .map(|(n, p)| (n.to_string(), p))
    .collect();
    for seed in [0u64, 1, 42, 2024] {
        let mut rng = StdRng::seed_from_u64(seed);
        let expected = interpreted_failure_count(&sys, &probs, 10_000, &mut rng);
        let mut rng = StdRng::seed_from_u64(seed);
        let est = monte_carlo_failure(
            &sys,
            |name| Ok(Probability::clamped(probs[name])),
            10_000,
            &mut rng,
        )
        .unwrap();
        let failures = (est.failure.value() * 10_000.0).round() as u64;
        assert_eq!(failures, expected, "seed={seed}");
    }
}
