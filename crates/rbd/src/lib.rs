//! Reliability block diagrams (RBDs) and diversity modelling for `hmdiv`.
//!
//! The paper's Fig. 2 describes the "parallel detection" model of
//! computer-assisted detection as a reliability block diagram: human
//! detection in parallel with machine detection, in series with human
//! classification. This crate provides the general substrate that model is
//! built on:
//!
//! * [`Block`] — an RBD as a composable AST of components, series, parallel
//!   and k-out-of-n groups.
//! * [`structure`] — the Boolean structure function, coherence
//!   (monotonicity) checks.
//! * [`compiled`] — structure functions compiled to interned component
//!   indices and a flat postfix program: the allocation-free fast path
//!   behind Monte-Carlo sampling, exact reliability and importance.
//! * [`paths`] — minimal path sets and minimal cut sets.
//! * [`reliability`] — exact system reliability under independent component
//!   failures (by conditioning on repeated components), and Esary–Proschan
//!   path/cut bounds.
//! * [`importance`] — Birnbaum's component importance \[1\] and the derived
//!   measures (improvement potential, criticality, Fussell–Vesely, risk
//!   achievement/reduction worth). The paper's `t(x)` index is "an
//!   importance index (of the CADT for the whole system) \[1\]".
//! * [`difficulty`] — Eckhardt–Lee and Littlewood–Miller difficulty-function
//!   models of correlated failure between diverse components \[4, 5\]: the
//!   machinery behind the covariance terms in the paper's eqs. (3) and (10).
//!
//! # Example
//!
//! Fig. 2 of the paper as an RBD:
//!
//! ```
//! use hmdiv_rbd::{Block, reliability::system_failure};
//! use hmdiv_prob::Probability;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let system = Block::series(vec![
//!     Block::parallel(vec![
//!         Block::component("human-detects"),
//!         Block::component("machine-detects"),
//!     ]),
//!     Block::component("human-classifies"),
//! ]);
//! let p_fail = system_failure(&system, |name| {
//!     Ok(match name {
//!         "human-detects" => Probability::new(0.2)?,
//!         "machine-detects" => Probability::new(0.1)?,
//!         "human-classifies" => Probability::new(0.05)?,
//!         _ => unreachable!(),
//!     })
//! })?;
//! // 1 − (1 − 0.2·0.1)(1 − 0.05) = 0.069
//! assert!((p_fail.value() - 0.069).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod block;
pub mod compiled;
pub mod difficulty;
pub mod dual;
mod error;
pub mod importance;
pub mod monte_carlo;
pub mod paths;
pub mod reliability;
pub mod structure;

pub use block::Block;
pub use error::RbdError;
