//! The Boolean structure function of a reliability block diagram.
//!
//! A *state* assigns working/failed to each component; the structure
//! function says whether the system works in that state. Coherent-system
//! theory (monotone structure functions with no irrelevant components) is
//! the classical setting of Birnbaum's importance measure, which the paper
//! cites for its `t(x)` index.

use std::collections::BTreeMap;

use crate::{Block, RbdError};

/// A component state assignment: `true` = working.
pub type State<'a> = BTreeMap<&'a str, bool>;

/// Evaluates the structure function: does the system work in `state`?
///
/// # Errors
///
/// Returns [`RbdError::UnknownComponent`] if a component in the diagram has
/// no entry in `state`.
///
/// # Example
///
/// ```
/// use hmdiv_rbd::{Block, structure::works};
/// use std::collections::BTreeMap;
///
/// # fn main() -> Result<(), hmdiv_rbd::RbdError> {
/// let sys = Block::parallel(vec![Block::component("h"), Block::component("m")]);
/// let state: BTreeMap<&str, bool> = [("h", false), ("m", true)].into();
/// assert!(works(&sys, &state)?);
/// # Ok(())
/// # }
/// ```
pub fn works(block: &Block, state: &State<'_>) -> Result<bool, RbdError> {
    match block {
        Block::Component(name) => state
            .get(name.as_str())
            .copied()
            .ok_or_else(|| RbdError::UnknownComponent { name: name.clone() }),
        Block::Series(blocks) => {
            for b in blocks {
                if !works(b, state)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Block::Parallel(blocks) => {
            for b in blocks {
                if works(b, state)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Block::KOfN { k, blocks } => {
            let mut working = 0usize;
            for b in blocks {
                if works(b, state)? {
                    working += 1;
                    if working >= *k {
                        return Ok(true);
                    }
                }
            }
            Ok(false)
        }
    }
}

/// Report on the coherence of a structure function over its components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoherenceReport {
    /// Components whose state never affects the system state (violating the
    /// "every component is relevant" half of coherence).
    pub irrelevant: Vec<String>,
    /// Whether the system works when all components work.
    pub works_when_all_work: bool,
    /// Whether the system fails when all components fail.
    pub fails_when_all_fail: bool,
}

impl CoherenceReport {
    /// Whether the diagram is a coherent system in the classical sense.
    #[must_use]
    pub fn is_coherent(&self) -> bool {
        self.irrelevant.is_empty() && self.works_when_all_work && self.fails_when_all_fail
    }
}

/// Exhaustively checks coherence of the diagram.
///
/// Series/parallel/k-of-n compositions are monotone by construction, so the
/// check concentrates on relevance and the boundary states. Exhaustive over
/// `2^n` states of the distinct components; intended for the small diagrams
/// (n ≲ 20) this workspace uses.
///
/// # Errors
///
/// * [`RbdError::TooLarge`] if the diagram has more than 20 distinct
///   components.
/// * Propagates validation errors from [`Block::validate`].
pub fn coherence(block: &Block) -> Result<CoherenceReport, RbdError> {
    block.validate()?;
    let names = block.component_names();
    let n = names.len();
    if n > 20 {
        return Err(RbdError::TooLarge {
            repeated: n,
            max: 20,
        });
    }
    let mut relevant = vec![false; n];
    let mut works_when_all_work = false;
    let mut fails_when_all_fail = false;
    for bits in 0u32..(1u32 << n) {
        let state: State<'_> = names
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, bits & (1 << i) != 0))
            .collect();
        let base = works(block, &state).expect("all components present");
        if bits == (1 << n) - 1 {
            works_when_all_work = base;
        }
        if bits == 0 {
            fails_when_all_fail = !base;
        }
        for (i, &name) in names.iter().enumerate() {
            if relevant[i] {
                continue;
            }
            let mut flipped = state.clone();
            flipped.insert(name, bits & (1 << i) == 0);
            if works(block, &flipped).expect("all components present") != base {
                relevant[i] = true;
            }
        }
    }
    Ok(CoherenceReport {
        irrelevant: names
            .iter()
            .zip(&relevant)
            .filter(|(_, &r)| !r)
            .map(|(&n, _)| n.to_owned())
            .collect(),
        works_when_all_work,
        fails_when_all_fail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(pairs: &[(&'static str, bool)]) -> State<'static> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn series_needs_all() {
        let sys = Block::series(vec![Block::component("a"), Block::component("b")]);
        assert!(works(&sys, &state(&[("a", true), ("b", true)])).unwrap());
        assert!(!works(&sys, &state(&[("a", true), ("b", false)])).unwrap());
        assert!(!works(&sys, &state(&[("a", false), ("b", false)])).unwrap());
    }

    #[test]
    fn parallel_needs_one() {
        let sys = Block::parallel(vec![Block::component("a"), Block::component("b")]);
        assert!(works(&sys, &state(&[("a", false), ("b", true)])).unwrap());
        assert!(!works(&sys, &state(&[("a", false), ("b", false)])).unwrap());
    }

    #[test]
    fn two_of_three_majority() {
        let sys = Block::k_of_n(
            2,
            vec![
                Block::component("a"),
                Block::component("b"),
                Block::component("c"),
            ],
        );
        assert!(works(&sys, &state(&[("a", true), ("b", true), ("c", false)])).unwrap());
        assert!(!works(&sys, &state(&[("a", true), ("b", false), ("c", false)])).unwrap());
        assert!(works(&sys, &state(&[("a", true), ("b", true), ("c", true)])).unwrap());
    }

    #[test]
    fn missing_component_is_error() {
        let sys = Block::component("ghost");
        let err = works(&sys, &state(&[("other", true)])).unwrap_err();
        assert_eq!(
            err,
            RbdError::UnknownComponent {
                name: "ghost".into()
            }
        );
    }

    #[test]
    fn fig2_structure() {
        // System works iff (Hdetect OR Mdetect) AND Hclassify.
        let sys = Block::series(vec![
            Block::parallel(vec![Block::component("Hd"), Block::component("Md")]),
            Block::component("Hc"),
        ]);
        assert!(works(&sys, &state(&[("Hd", false), ("Md", true), ("Hc", true)])).unwrap());
        assert!(!works(&sys, &state(&[("Hd", false), ("Md", true), ("Hc", false)])).unwrap());
        assert!(!works(&sys, &state(&[("Hd", false), ("Md", false), ("Hc", true)])).unwrap());
    }

    #[test]
    fn coherence_of_standard_diagrams() {
        let sys = Block::series(vec![
            Block::parallel(vec![Block::component("Hd"), Block::component("Md")]),
            Block::component("Hc"),
        ]);
        let report = coherence(&sys).unwrap();
        assert!(report.is_coherent(), "{report:?}");
    }

    #[test]
    fn irrelevant_component_detected() {
        // `b` is in parallel with an always-needed `a` inside a series with
        // `a` again: ((a | b) -> a). When `a` works the system works; when
        // `a` fails the series fails regardless of `b`. So `b` is irrelevant.
        let sys = Block::series(vec![
            Block::parallel(vec![Block::component("a"), Block::component("b")]),
            Block::component("a"),
        ]);
        let report = coherence(&sys).unwrap();
        assert_eq!(report.irrelevant, vec!["b".to_owned()]);
        assert!(!report.is_coherent());
    }

    #[test]
    fn coherence_rejects_oversized() {
        let blocks: Vec<Block> = (0..25).map(|i| Block::component(format!("c{i}"))).collect();
        let sys = Block::series(blocks);
        assert!(matches!(coherence(&sys), Err(RbdError::TooLarge { .. })));
    }
}
