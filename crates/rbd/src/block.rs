use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::RbdError;

/// A reliability block diagram, as a composable tree.
///
/// Leaves are named components; inner nodes are series, parallel or
/// k-out-of-n groups. The same component name may appear at several leaves
/// (shared components); evaluation handles the induced dependence by
/// conditioning (factoring).
///
/// The diagram describes *success* logic: a series group works iff all
/// children work, a parallel group works iff at least one child works, and a
/// `k`-of-`n` group works iff at least `k` children work.
///
/// # Example
///
/// ```
/// use hmdiv_rbd::Block;
///
/// // The paper's Fig. 2: (human-detect ∥ machine-detect) → human-classify
/// let fig2 = Block::series(vec![
///     Block::parallel(vec![
///         Block::component("Hdetect"),
///         Block::component("Mdetect"),
///     ]),
///     Block::component("Hclassify"),
/// ]);
/// assert_eq!(fig2.component_names().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Block {
    /// A basic component, identified by name.
    Component(String),
    /// All children must work.
    Series(Vec<Block>),
    /// At least one child must work.
    Parallel(Vec<Block>),
    /// At least `k` of the children must work.
    KOfN {
        /// Minimum number of working children.
        k: usize,
        /// The children.
        blocks: Vec<Block>,
    },
}

impl Block {
    /// A leaf component with the given name.
    #[must_use]
    pub fn component(name: impl Into<String>) -> Block {
        Block::Component(name.into())
    }

    /// A series group (all children must work).
    ///
    /// Empty groups are rejected at [validation](Block::validate) rather
    /// than construction, so diagrams can be built incrementally.
    #[must_use]
    pub fn series(blocks: Vec<Block>) -> Block {
        Block::Series(blocks)
    }

    /// A parallel group (any child suffices).
    #[must_use]
    pub fn parallel(blocks: Vec<Block>) -> Block {
        Block::Parallel(blocks)
    }

    /// A k-out-of-n group.
    #[must_use]
    pub fn k_of_n(k: usize, blocks: Vec<Block>) -> Block {
        Block::KOfN { k, blocks }
    }

    /// Checks structural validity: no empty groups, and every k-of-n group
    /// has `1 <= k <= n`.
    ///
    /// # Errors
    ///
    /// * [`RbdError::EmptyGroup`] for an empty series/parallel/k-of-n group.
    /// * [`RbdError::InvalidThreshold`] for a k-of-n group with `k == 0` or
    ///   `k > n` (a `k == 0` group would be trivially always working and a
    ///   `k > n` group trivially always failed; both are almost certainly
    ///   modelling mistakes, so they are rejected).
    pub fn validate(&self) -> Result<(), RbdError> {
        match self {
            Block::Component(_) => Ok(()),
            Block::Series(blocks) => {
                if blocks.is_empty() {
                    return Err(RbdError::EmptyGroup { kind: "series" });
                }
                blocks.iter().try_for_each(Block::validate)
            }
            Block::Parallel(blocks) => {
                if blocks.is_empty() {
                    return Err(RbdError::EmptyGroup { kind: "parallel" });
                }
                blocks.iter().try_for_each(Block::validate)
            }
            Block::KOfN { k, blocks } => {
                if blocks.is_empty() {
                    return Err(RbdError::EmptyGroup { kind: "k-of-n" });
                }
                if *k == 0 || *k > blocks.len() {
                    return Err(RbdError::InvalidThreshold {
                        k: *k,
                        n: blocks.len(),
                    });
                }
                blocks.iter().try_for_each(Block::validate)
            }
        }
    }

    /// The set of distinct component names in the diagram, sorted.
    #[must_use]
    pub fn component_names(&self) -> Vec<&str> {
        let mut names = BTreeSet::new();
        self.collect_names(&mut names);
        names.into_iter().collect()
    }

    fn collect_names<'a>(&'a self, out: &mut BTreeSet<&'a str>) {
        match self {
            Block::Component(name) => {
                out.insert(name.as_str());
            }
            Block::Series(blocks) | Block::Parallel(blocks) | Block::KOfN { blocks, .. } => {
                for b in blocks {
                    b.collect_names(out);
                }
            }
        }
    }

    /// Names of components that appear at more than one leaf, sorted.
    ///
    /// Shared components make naive series/parallel probability composition
    /// wrong; [`crate::reliability`] conditions on them.
    #[must_use]
    pub fn repeated_names(&self) -> Vec<&str> {
        let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
        self.count_names(&mut counts);
        counts
            .into_iter()
            .filter(|(_, c)| *c > 1)
            .map(|(n, _)| n)
            .collect()
    }

    fn count_names<'a>(&'a self, out: &mut std::collections::BTreeMap<&'a str, usize>) {
        match self {
            Block::Component(name) => {
                *out.entry(name.as_str()).or_insert(0) += 1;
            }
            Block::Series(blocks) | Block::Parallel(blocks) | Block::KOfN { blocks, .. } => {
                for b in blocks {
                    b.count_names(out);
                }
            }
        }
    }

    /// Total number of leaves (component occurrences, counting repeats).
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        match self {
            Block::Component(_) => 1,
            Block::Series(blocks) | Block::Parallel(blocks) | Block::KOfN { blocks, .. } => {
                blocks.iter().map(Block::leaf_count).sum()
            }
        }
    }

    /// Depth of the tree (a lone component has depth 1).
    #[must_use]
    pub fn depth(&self) -> usize {
        match self {
            Block::Component(_) => 1,
            Block::Series(blocks) | Block::Parallel(blocks) | Block::KOfN { blocks, .. } => {
                1 + blocks.iter().map(Block::depth).max().unwrap_or(0)
            }
        }
    }

    /// Returns a copy of the diagram with component `name` replaced by the
    /// given sub-diagram everywhere it occurs.
    ///
    /// Useful for refining a coarse model (e.g. replacing the paper's
    /// monolithic "reader" block by a detect→classify series).
    #[must_use]
    pub fn with_replacement(&self, name: &str, replacement: &Block) -> Block {
        match self {
            Block::Component(n) if n == name => replacement.clone(),
            Block::Component(_) => self.clone(),
            Block::Series(blocks) => Block::Series(
                blocks
                    .iter()
                    .map(|b| b.with_replacement(name, replacement))
                    .collect(),
            ),
            Block::Parallel(blocks) => Block::Parallel(
                blocks
                    .iter()
                    .map(|b| b.with_replacement(name, replacement))
                    .collect(),
            ),
            Block::KOfN { k, blocks } => Block::KOfN {
                k: *k,
                blocks: blocks
                    .iter()
                    .map(|b| b.with_replacement(name, replacement))
                    .collect(),
            },
        }
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Block::Component(name) => write!(f, "{name}"),
            Block::Series(blocks) => {
                write!(f, "(")?;
                for (i, b) in blocks.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{b}")?;
                }
                write!(f, ")")
            }
            Block::Parallel(blocks) => {
                write!(f, "(")?;
                for (i, b) in blocks.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{b}")?;
                }
                write!(f, ")")
            }
            Block::KOfN { k, blocks } => {
                write!(f, "{k}of{}(", blocks.len())?;
                for (i, b) in blocks.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{b}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2() -> Block {
        Block::series(vec![
            Block::parallel(vec![
                Block::component("Hdetect"),
                Block::component("Mdetect"),
            ]),
            Block::component("Hclassify"),
        ])
    }

    #[test]
    fn validate_accepts_fig2() {
        fig2().validate().unwrap();
    }

    #[test]
    fn validate_rejects_empty_groups() {
        assert_eq!(
            Block::series(vec![]).validate(),
            Err(RbdError::EmptyGroup { kind: "series" })
        );
        assert_eq!(
            Block::parallel(vec![]).validate(),
            Err(RbdError::EmptyGroup { kind: "parallel" })
        );
        assert!(Block::k_of_n(1, vec![]).validate().is_err());
        // Nested empties are caught too.
        let nested = Block::series(vec![Block::parallel(vec![])]);
        assert!(nested.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_thresholds() {
        let two = vec![Block::component("a"), Block::component("b")];
        assert!(Block::k_of_n(0, two.clone()).validate().is_err());
        assert!(Block::k_of_n(3, two.clone()).validate().is_err());
        assert!(Block::k_of_n(1, two.clone()).validate().is_ok());
        assert!(Block::k_of_n(2, two).validate().is_ok());
    }

    #[test]
    fn component_names_sorted_distinct() {
        let b = fig2();
        assert_eq!(b.component_names(), vec!["Hclassify", "Hdetect", "Mdetect"]);
    }

    #[test]
    fn repeated_names_detected() {
        assert!(fig2().repeated_names().is_empty());
        let shared = Block::parallel(vec![
            Block::series(vec![Block::component("a"), Block::component("b")]),
            Block::series(vec![Block::component("a"), Block::component("c")]),
        ]);
        assert_eq!(shared.repeated_names(), vec!["a"]);
    }

    #[test]
    fn leaf_count_and_depth() {
        let b = fig2();
        assert_eq!(b.leaf_count(), 3);
        assert_eq!(b.depth(), 3);
        assert_eq!(Block::component("x").leaf_count(), 1);
        assert_eq!(Block::component("x").depth(), 1);
    }

    #[test]
    fn replacement_substitutes_everywhere() {
        let shared = Block::parallel(vec![Block::component("r"), Block::component("r")]);
        let refined = shared.with_replacement(
            "r",
            &Block::series(vec![
                Block::component("detect"),
                Block::component("classify"),
            ]),
        );
        assert_eq!(refined.leaf_count(), 4);
        assert_eq!(refined.component_names(), vec!["classify", "detect"]);
        // Replacing an absent name is the identity.
        let same = shared.with_replacement("missing", &Block::component("x"));
        assert_eq!(same, shared);
    }

    #[test]
    fn display_reads_like_a_diagram() {
        let s = fig2().to_string();
        assert_eq!(s, "((Hdetect | Mdetect) -> Hclassify)");
        let k = Block::k_of_n(
            2,
            vec![
                Block::component("a"),
                Block::component("b"),
                Block::component("c"),
            ],
        );
        assert_eq!(k.to_string(), "2of3(a, b, c)");
    }
}
