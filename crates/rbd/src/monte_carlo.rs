//! Monte-Carlo reliability estimation for diagrams too large for exact
//! evaluation.
//!
//! Exact factoring costs `2^(repeated components)`; beyond
//! [`crate::reliability::MAX_REPEATED`] shared components (or for quick
//! what-ifs), sampling component states and evaluating the structure
//! function gives an unbiased estimate with a binomial confidence interval.

use std::collections::BTreeMap;

use rand::Rng;

use hmdiv_prob::estimate::{BinomialEstimate, CiMethod, ConfidenceInterval};
use hmdiv_prob::Probability;

use crate::structure::works;
use crate::{Block, RbdError};

/// A Monte-Carlo reliability estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloEstimate {
    /// Estimated probability that the system *fails*.
    pub failure: Probability,
    /// Wilson interval on the failure probability.
    pub interval: ConfidenceInterval,
    /// Number of sampled states.
    pub samples: u64,
}

/// Estimates system failure probability by sampling `samples` independent
/// component-state vectors.
///
/// # Errors
///
/// * [`RbdError::Prob`] if `samples == 0`.
/// * Validation errors, and any error from `failure_of`.
pub fn monte_carlo_failure<F, R>(
    block: &Block,
    mut failure_of: F,
    samples: u64,
    rng: &mut R,
) -> Result<MonteCarloEstimate, RbdError>
where
    F: FnMut(&str) -> Result<Probability, RbdError>,
    R: Rng + ?Sized,
{
    block.validate()?;
    if samples == 0 {
        return Err(RbdError::Prob(hmdiv_prob::ProbError::InvalidCounts {
            successes: 0,
            trials: 0,
        }));
    }
    let names: Vec<&str> = block.component_names();
    let mut probs: BTreeMap<&str, f64> = BTreeMap::new();
    for &name in &names {
        probs.insert(name, failure_of(name)?.value());
    }
    let mut failures = 0u64;
    let mut state: BTreeMap<&str, bool> = BTreeMap::new();
    for _ in 0..samples {
        for &name in &names {
            state.insert(name, rng.gen::<f64>() >= probs[name]);
        }
        if !works(block, &state)? {
            failures += 1;
        }
    }
    let est = BinomialEstimate::new(failures, samples).map_err(RbdError::from)?;
    let interval = est
        .interval(CiMethod::Wilson, 0.95)
        .map_err(RbdError::from)?;
    Ok(MonteCarloEstimate {
        failure: est.point(),
        interval,
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reliability::system_failure;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn fail_of(name: &str) -> Result<Probability, RbdError> {
        let h: u32 = name
            .bytes()
            .fold(7u32, |acc, b| acc.wrapping_mul(131).wrapping_add(b.into()));
        Ok(Probability::clamped(0.05 + f64::from(h % 80) / 160.0))
    }

    #[test]
    fn matches_exact_on_fig2() {
        let sys = Block::series(vec![
            Block::parallel(vec![Block::component("Hd"), Block::component("Md")]),
            Block::component("Hc"),
        ]);
        let table = |name: &str| {
            Ok(match name {
                "Hd" => p(0.2),
                "Md" => p(0.07),
                "Hc" => p(0.1),
                _ => unreachable!(),
            })
        };
        let exact = system_failure(&sys, table).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let mc = monte_carlo_failure(&sys, table, 200_000, &mut rng).unwrap();
        assert!(
            (mc.failure.value() - exact.value()).abs() < 0.004,
            "{} vs {}",
            mc.failure.value(),
            exact.value()
        );
        assert!(mc.interval.contains(exact));
    }

    #[test]
    fn matches_exact_on_shared_component_diagram() {
        let sys = Block::parallel(vec![
            Block::series(vec![Block::component("a"), Block::component("b")]),
            Block::series(vec![Block::component("a"), Block::component("c")]),
        ]);
        let exact = system_failure(&sys, fail_of).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mc = monte_carlo_failure(&sys, fail_of, 200_000, &mut rng).unwrap();
        assert!((mc.failure.value() - exact.value()).abs() < 0.005);
    }

    #[test]
    fn interval_narrows_with_samples() {
        let sys = Block::k_of_n(
            2,
            vec![
                Block::component("x"),
                Block::component("y"),
                Block::component("z"),
            ],
        );
        let mut rng = StdRng::seed_from_u64(11);
        let small = monte_carlo_failure(&sys, fail_of, 1_000, &mut rng).unwrap();
        let large = monte_carlo_failure(&sys, fail_of, 100_000, &mut rng).unwrap();
        assert!(large.interval.width() < small.interval.width());
        assert_eq!(large.samples, 100_000);
    }

    #[test]
    fn zero_samples_rejected() {
        let sys = Block::component("a");
        let mut rng = StdRng::seed_from_u64(1);
        assert!(monte_carlo_failure(&sys, fail_of, 0, &mut rng).is_err());
    }
}
