//! Monte-Carlo reliability estimation for diagrams too large for exact
//! evaluation.
//!
//! Exact factoring costs `2^(repeated components)`; beyond
//! [`crate::reliability::MAX_REPEATED`] shared components (or for quick
//! what-ifs), sampling component states and evaluating the structure
//! function gives an unbiased estimate with a binomial confidence interval.

use rand::Rng;

use hmdiv_prob::estimate::{BinomialEstimate, CiMethod, ConfidenceInterval};
use hmdiv_prob::Probability;

use crate::compiled::CompiledBlock;
use crate::{Block, RbdError};

/// A Monte-Carlo reliability estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloEstimate {
    /// Estimated probability that the system *fails*.
    pub failure: Probability,
    /// Wilson interval on the failure probability.
    pub interval: ConfidenceInterval,
    /// Number of sampled states.
    pub samples: u64,
}

/// Estimates system failure probability by sampling `samples` independent
/// component-state vectors.
///
/// The diagram is compiled once ([`CompiledBlock`]) and failure
/// probabilities are hoisted into a dense vector aligned with the interned
/// component indices, so the per-sample loop performs no heap allocation
/// and no string-keyed lookups. Component states are drawn in sorted-name
/// order (the interned order), preserving the RNG stream of earlier
/// interpreted versions byte for byte.
///
/// # Errors
///
/// * [`RbdError::Prob`] if `samples == 0`.
/// * Validation errors, and any error from `failure_of`.
pub fn monte_carlo_failure<F, R>(
    block: &Block,
    failure_of: F,
    samples: u64,
    rng: &mut R,
) -> Result<MonteCarloEstimate, RbdError>
where
    F: FnMut(&str) -> Result<Probability, RbdError>,
    R: Rng + ?Sized,
{
    let compiled = CompiledBlock::compile(block)?;
    if samples == 0 {
        return Err(RbdError::Prob(hmdiv_prob::ProbError::InvalidCounts {
            successes: 0,
            trials: 0,
        }));
    }
    let probs: Vec<f64> = compiled
        .failure_probabilities(failure_of)?
        .iter()
        .map(|p| p.value())
        .collect();
    let span = hmdiv_obs::span("rbd.mc.sample");
    let failures = sample_failures(&compiled, &probs, samples, rng);
    record_sampling_metrics(samples, span.elapsed_ns());
    drop(span);
    let est = BinomialEstimate::new(failures, samples).map_err(RbdError::from)?;
    let interval = est
        .interval(CiMethod::Wilson, 0.95)
        .map_err(RbdError::from)?;
    Ok(MonteCarloEstimate {
        failure: est.point(),
        interval,
        samples,
    })
}

/// Samples per parallel task: each task re-seeds its own RNG stream from
/// `(seed, task id)`, so blocks amortise the stream setup while keeping the
/// task structure — and therefore the estimate — independent of the thread
/// count.
const PAR_BLOCK: u64 = 8192;

/// Parallel [`monte_carlo_failure`]: deterministic for `(seed, samples)`
/// and bit-identical at any `threads` value.
///
/// Samples are partitioned into fixed blocks of [`PAR_BLOCK`]; block `i`
/// draws from the RNG stream `(seed, i)` (see
/// [`hmdiv_prob::par::stream_rng`]), so the thread count only decides which
/// worker evaluates which block. The estimate differs numerically from the
/// sequential [`monte_carlo_failure`] (which consumes one caller-provided
/// stream), but has the same distribution and the same interval guarantees.
///
/// # Errors
///
/// As [`monte_carlo_failure`].
pub fn monte_carlo_failure_par<F>(
    block: &Block,
    failure_of: F,
    samples: u64,
    seed: u64,
    threads: usize,
) -> Result<MonteCarloEstimate, RbdError>
where
    F: FnMut(&str) -> Result<Probability, RbdError>,
{
    let compiled = CompiledBlock::compile(block)?;
    if samples == 0 {
        return Err(RbdError::Prob(hmdiv_prob::ProbError::InvalidCounts {
            successes: 0,
            trials: 0,
        }));
    }
    let probs: Vec<f64> = compiled
        .failure_probabilities(failure_of)?
        .iter()
        .map(|p| p.value())
        .collect();
    let blocks = samples.div_ceil(PAR_BLOCK);
    // Scope "rbd.mc": the par layer records per-worker busy time and block
    // (task) counts; sample totals are recorded here since tasks != samples.
    let span = hmdiv_obs::span("rbd.mc.sample");
    let failures = hmdiv_prob::par::run_tasks_scoped(
        "rbd.mc",
        seed,
        blocks,
        threads,
        || 0u64,
        |block_id, rng, acc| {
            let start = block_id * PAR_BLOCK;
            let len = PAR_BLOCK.min(samples - start);
            *acc += sample_failures(&compiled, &probs, len, rng);
        },
    );
    record_sampling_metrics(samples, span.elapsed_ns());
    drop(span);
    let est = BinomialEstimate::new(failures, samples).map_err(RbdError::from)?;
    let interval = est
        .interval(CiMethod::Wilson, 0.95)
        .map_err(RbdError::from)?;
    Ok(MonteCarloEstimate {
        failure: est.point(),
        interval,
        samples,
    })
}

/// Records sample throughput under the `rbd.mc` scope. `elapsed_ns` is the
/// live reading of the enclosing sampling span (`None` while observability
/// is disabled, which makes the whole call a no-op).
fn record_sampling_metrics(samples: u64, elapsed_ns: Option<u64>) {
    let Some(elapsed_ns) = elapsed_ns else {
        return;
    };
    hmdiv_obs::counter_add("rbd.mc.samples", samples);
    if elapsed_ns > 0 {
        let per_sec = samples as f64 / (elapsed_ns as f64 / 1e9);
        hmdiv_obs::gauge_set("rbd.mc.samples_per_sec", per_sec);
    }
}

/// The allocation-free inner sampling loop: draws `samples` state vectors
/// from `rng` and counts system failures.
pub(crate) fn sample_failures<R: Rng + ?Sized>(
    compiled: &CompiledBlock,
    probs: &[f64],
    samples: u64,
    rng: &mut R,
) -> u64 {
    let n = compiled.component_count();
    let mut state = vec![false; n];
    let mut stack = Vec::with_capacity(compiled.max_stack());
    let mut failures = 0u64;
    for _ in 0..samples {
        for (slot, &q) in state.iter_mut().zip(probs) {
            *slot = rng.gen::<f64>() >= q;
        }
        if !compiled.eval_with(&state, &mut stack) {
            failures += 1;
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reliability::system_failure;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn fail_of(name: &str) -> Result<Probability, RbdError> {
        let h: u32 = name
            .bytes()
            .fold(7u32, |acc, b| acc.wrapping_mul(131).wrapping_add(b.into()));
        Ok(Probability::clamped(0.05 + f64::from(h % 80) / 160.0))
    }

    #[test]
    fn matches_exact_on_fig2() {
        let sys = Block::series(vec![
            Block::parallel(vec![Block::component("Hd"), Block::component("Md")]),
            Block::component("Hc"),
        ]);
        let table = |name: &str| {
            Ok(match name {
                "Hd" => p(0.2),
                "Md" => p(0.07),
                "Hc" => p(0.1),
                _ => unreachable!(),
            })
        };
        let exact = system_failure(&sys, table).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let mc = monte_carlo_failure(&sys, table, 200_000, &mut rng).unwrap();
        assert!(
            (mc.failure.value() - exact.value()).abs() < 0.004,
            "{} vs {}",
            mc.failure.value(),
            exact.value()
        );
        assert!(mc.interval.contains(exact));
    }

    #[test]
    fn matches_exact_on_shared_component_diagram() {
        let sys = Block::parallel(vec![
            Block::series(vec![Block::component("a"), Block::component("b")]),
            Block::series(vec![Block::component("a"), Block::component("c")]),
        ]);
        let exact = system_failure(&sys, fail_of).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mc = monte_carlo_failure(&sys, fail_of, 200_000, &mut rng).unwrap();
        assert!((mc.failure.value() - exact.value()).abs() < 0.005);
    }

    #[test]
    fn interval_narrows_with_samples() {
        let sys = Block::k_of_n(
            2,
            vec![
                Block::component("x"),
                Block::component("y"),
                Block::component("z"),
            ],
        );
        let mut rng = StdRng::seed_from_u64(11);
        let small = monte_carlo_failure(&sys, fail_of, 1_000, &mut rng).unwrap();
        let large = monte_carlo_failure(&sys, fail_of, 100_000, &mut rng).unwrap();
        assert!(large.interval.width() < small.interval.width());
        assert_eq!(large.samples, 100_000);
    }

    #[test]
    fn zero_samples_rejected() {
        let sys = Block::component("a");
        let mut rng = StdRng::seed_from_u64(1);
        assert!(monte_carlo_failure(&sys, fail_of, 0, &mut rng).is_err());
    }

    #[test]
    fn par_estimate_is_thread_count_invariant() {
        let sys = Block::series(vec![
            Block::parallel(vec![Block::component("Hd"), Block::component("Md")]),
            Block::component("Hc"),
        ]);
        // An awkward sample count exercising a partial final block.
        let samples = 3 * super::PAR_BLOCK + 17;
        let reference = monte_carlo_failure_par(&sys, fail_of, samples, 42, 1).unwrap();
        for threads in [2usize, 3, 7, 32] {
            let est = monte_carlo_failure_par(&sys, fail_of, samples, 42, threads).unwrap();
            assert_eq!(est, reference, "threads={threads}");
        }
    }

    #[test]
    fn par_estimate_matches_exact() {
        let sys = Block::parallel(vec![
            Block::series(vec![Block::component("a"), Block::component("b")]),
            Block::series(vec![Block::component("a"), Block::component("c")]),
        ]);
        let exact = system_failure(&sys, fail_of).unwrap();
        let mc = monte_carlo_failure_par(&sys, fail_of, 200_000, 7, 4).unwrap();
        assert!(
            (mc.failure.value() - exact.value()).abs() < 0.005,
            "{} vs {}",
            mc.failure.value(),
            exact.value()
        );
        assert_eq!(mc.samples, 200_000);
    }

    #[test]
    fn par_zero_samples_rejected() {
        let sys = Block::component("a");
        assert!(monte_carlo_failure_par(&sys, fail_of, 0, 1, 4).is_err());
    }
}
