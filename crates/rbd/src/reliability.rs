//! System reliability evaluation.
//!
//! Components fail independently with given probabilities (conditional on a
//! class of demand — the caller is expected to evaluate once per class, as
//! the paper insists). For diagrams where each component appears once, the
//! series/parallel/k-of-n composition rules are exact. Shared (repeated)
//! components are handled by *factoring*: condition on a repeated component
//! working/failing and recurse on the simplified diagram.
//!
//! [`esary_proschan_bounds`] gives the classical min-path upper and min-cut
//! lower bounds on reliability, which bracket the exact value for coherent
//! systems with independent components.

use std::collections::BTreeMap;

use hmdiv_prob::Probability;

use crate::compiled::CompiledBlock;
use crate::paths::{minimal_cut_sets, minimal_path_sets};
use crate::{Block, RbdError};

/// Maximum number of repeated components the factoring evaluation supports
/// (cost is `2^repeated` recursive evaluations).
pub const MAX_REPEATED: usize = 24;

/// The probability that the system *fails*, given per-component failure
/// probabilities.
///
/// `failure_of` maps a component name to its failure probability; it may be
/// a closure over a table, a model, or a constant.
///
/// # Errors
///
/// * Propagates validation errors from [`Block::validate`].
/// * [`RbdError::UnknownComponent`] (or any error from `failure_of`).
/// * [`RbdError::TooLarge`] if more than [`MAX_REPEATED`] distinct
///   components are repeated.
pub fn system_failure<F>(block: &Block, mut failure_of: F) -> Result<Probability, RbdError>
where
    F: FnMut(&str) -> Result<Probability, RbdError>,
{
    Ok(system_reliability(block, &mut failure_of)?.complement())
}

/// The probability that the system *works*. See [`system_failure`].
///
/// The diagram is compiled once ([`CompiledBlock`]) and evaluated over a
/// dense probability vector; `failure_of` is called exactly once per
/// distinct component, in sorted-name order.
///
/// # Errors
///
/// As [`system_failure`].
pub fn system_reliability<F>(block: &Block, failure_of: &mut F) -> Result<Probability, RbdError>
where
    F: FnMut(&str) -> Result<Probability, RbdError>,
{
    let compiled = CompiledBlock::compile(block)?;
    let q = compiled.failure_probabilities(failure_of)?;
    compiled.reliability(&q)
}

/// Esary–Proschan bounds on system *reliability* for a coherent system with
/// independent components:
///
/// ```text
/// Π over min cuts (1 − Π q_i)   <=   R   <=   1 − Π over min paths (1 − Π r_i)
/// ```
///
/// Returns `(lower, upper)` bounds on reliability.
///
/// # Errors
///
/// As [`system_failure`], plus any error from the path/cut extraction.
pub fn esary_proschan_bounds<F>(
    block: &Block,
    mut failure_of: F,
) -> Result<(Probability, Probability), RbdError>
where
    F: FnMut(&str) -> Result<Probability, RbdError>,
{
    let cuts = minimal_cut_sets(block)?;
    let paths = minimal_path_sets(block)?;
    let mut table: BTreeMap<String, Probability> = BTreeMap::new();
    for name in block.component_names() {
        table.insert(name.to_owned(), failure_of(name)?);
    }
    let lower = cuts
        .iter()
        .map(|cut| {
            let all_fail: f64 = cut.iter().map(|c| table[c].value()).product();
            1.0 - all_fail
        })
        .product::<f64>();
    let upper = 1.0
        - paths
            .iter()
            .map(|path| {
                let all_work: f64 = path.iter().map(|c| 1.0 - table[c].value()).product();
                1.0 - all_work
            })
            .product::<f64>();
    Ok((Probability::clamped(lower), Probability::clamped(upper)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn table<'a>(
        pairs: &'a [(&'a str, f64)],
    ) -> impl FnMut(&str) -> Result<Probability, RbdError> + 'a {
        move |name| {
            pairs
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| p(*v))
                .ok_or_else(|| RbdError::UnknownComponent { name: name.into() })
        }
    }

    #[test]
    fn single_component() {
        let sys = Block::component("a");
        let f = system_failure(&sys, table(&[("a", 0.3)])).unwrap();
        assert!((f.value() - 0.3).abs() < 1e-15);
    }

    #[test]
    fn series_failure_composition() {
        let sys = Block::series(vec![Block::component("a"), Block::component("b")]);
        let f = system_failure(&sys, table(&[("a", 0.1), ("b", 0.2)])).unwrap();
        assert!((f.value() - (1.0 - 0.9 * 0.8)).abs() < 1e-15);
    }

    #[test]
    fn parallel_failure_composition() {
        let sys = Block::parallel(vec![Block::component("a"), Block::component("b")]);
        let f = system_failure(&sys, table(&[("a", 0.1), ("b", 0.2)])).unwrap();
        assert!((f.value() - 0.02).abs() < 1e-15);
    }

    #[test]
    fn fig2_detection_failure() {
        // The paper's eq. (2) with independence: PMf·PHmiss for detection,
        // then classification in series.
        let sys = Block::series(vec![
            Block::parallel(vec![Block::component("Hd"), Block::component("Md")]),
            Block::component("Hc"),
        ]);
        let f = system_failure(&sys, table(&[("Hd", 0.2), ("Md", 0.07), ("Hc", 0.1)])).unwrap();
        let expected = 1.0 - (1.0 - 0.2 * 0.07) * 0.9;
        assert!((f.value() - expected).abs() < 1e-15);
    }

    #[test]
    fn k_of_n_matches_binomial() {
        // 2-of-3 identical components with reliability r:
        // R = 3r²(1−r) + r³
        let sys = Block::k_of_n(
            2,
            vec![
                Block::component("a"),
                Block::component("b"),
                Block::component("c"),
            ],
        );
        let r: f64 = 0.9;
        let f = system_failure(&sys, table(&[("a", 0.1), ("b", 0.1), ("c", 0.1)])).unwrap();
        let expected = 1.0 - (3.0 * r * r * (1.0 - r) + r * r * r);
        assert!((f.value() - expected).abs() < 1e-12);
    }

    #[test]
    fn one_of_n_equals_parallel_and_n_of_n_equals_series() {
        let children = vec![
            Block::component("a"),
            Block::component("b"),
            Block::component("c"),
        ];
        let probs = [("a", 0.1), ("b", 0.2), ("c", 0.3)];
        let one_of = system_failure(&Block::k_of_n(1, children.clone()), table(&probs)).unwrap();
        let par = system_failure(&Block::parallel(children.clone()), table(&probs)).unwrap();
        assert!((one_of.value() - par.value()).abs() < 1e-15);
        let n_of = system_failure(&Block::k_of_n(3, children.clone()), table(&probs)).unwrap();
        let ser = system_failure(&Block::series(children), table(&probs)).unwrap();
        assert!((n_of.value() - ser.value()).abs() < 1e-15);
    }

    #[test]
    fn shared_component_factoring_exact() {
        // ((a -> b) | (a -> c)): exact R = P(a works)·(1 − P(b fails)P(c fails)).
        let sys = Block::parallel(vec![
            Block::series(vec![Block::component("a"), Block::component("b")]),
            Block::series(vec![Block::component("a"), Block::component("c")]),
        ]);
        let probs = [("a", 0.2), ("b", 0.3), ("c", 0.4)];
        let f = system_failure(&sys, table(&probs)).unwrap();
        let expected_r = 0.8 * (1.0 - 0.3 * 0.4);
        assert!((f.value() - (1.0 - expected_r)).abs() < 1e-12);
        // The naive (wrong) independent evaluation would differ:
        let naive_r = 1.0 - (1.0 - 0.8 * 0.7) * (1.0 - 0.8 * 0.6);
        assert!((f.complement().value() - naive_r).abs() > 0.01);
    }

    #[test]
    fn exact_matches_enumeration_on_shared_diagram() {
        use crate::structure::works;
        // Brute-force check: sum over all states of P(state)·works(state).
        let sys = Block::k_of_n(
            2,
            vec![
                Block::series(vec![Block::component("a"), Block::component("b")]),
                Block::component("c"),
                Block::parallel(vec![Block::component("d"), Block::component("a")]),
            ],
        );
        let probs = [("a", 0.15), ("b", 0.25), ("c", 0.35), ("d", 0.45)];
        let names = sys.component_names();
        let mut total = 0.0;
        for bits in 0u32..(1 << names.len()) {
            let state: std::collections::BTreeMap<&str, bool> = names
                .iter()
                .enumerate()
                .map(|(i, &n)| (n, bits & (1 << i) != 0))
                .collect();
            let mut weight = 1.0;
            for (i, &n) in names.iter().enumerate() {
                let fail = probs.iter().find(|(m, _)| *m == n).unwrap().1;
                weight *= if bits & (1 << i) != 0 {
                    1.0 - fail
                } else {
                    fail
                };
            }
            if works(&sys, &state).unwrap() {
                total += weight;
            }
        }
        let exact = system_failure(&sys, table(&probs))
            .unwrap()
            .complement()
            .value();
        assert!(
            (exact - total).abs() < 1e-12,
            "exact {exact} vs enumerated {total}"
        );
    }

    #[test]
    fn bounds_bracket_exact_value() {
        let sys = Block::series(vec![
            Block::parallel(vec![Block::component("Hd"), Block::component("Md")]),
            Block::component("Hc"),
        ]);
        let probs = [("Hd", 0.2), ("Md", 0.07), ("Hc", 0.1)];
        let exact = system_failure(&sys, table(&probs)).unwrap().complement();
        let (lo, hi) = esary_proschan_bounds(&sys, table(&probs)).unwrap();
        assert!(lo <= exact, "{} <= {}", lo.value(), exact.value());
        assert!(exact <= hi, "{} <= {}", exact.value(), hi.value());
    }

    #[test]
    fn unknown_component_error_surfaces() {
        let sys = Block::component("missing");
        assert!(matches!(
            system_failure(&sys, table(&[("other", 0.5)])),
            Err(RbdError::UnknownComponent { .. })
        ));
    }

    #[test]
    fn certain_failure_and_certain_success() {
        let sys = Block::parallel(vec![Block::component("a"), Block::component("b")]);
        let f = system_failure(&sys, table(&[("a", 1.0), ("b", 1.0)])).unwrap();
        assert_eq!(f, Probability::ONE);
        let f = system_failure(&sys, table(&[("a", 0.0), ("b", 1.0)])).unwrap();
        assert_eq!(f, Probability::ZERO);
    }
}
