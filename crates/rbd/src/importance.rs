//! Component importance measures.
//!
//! Birnbaum \[1\] defined the importance of a component as the probability
//! that it is *critical*: `I_B(i) = R(system | i works) − R(system | i
//! fails)`. The paper's coherence index `t(x) = P(Hf|Mf) − P(Hf|Ms)` is
//! exactly this quantity for the CADT within the human–machine system, which
//! is why §6.1 calls it "an importance index (of the CADT for the whole
//! system)". This module provides Birnbaum importance and the standard
//! derived measures for arbitrary diagrams, so the paper's special case can
//! be checked against the general theory.

use hmdiv_prob::Probability;

use crate::compiled::CompiledBlock;
use crate::{Block, RbdError};

/// The suite of importance measures for one component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImportanceMeasures {
    /// Birnbaum importance `R(i works) − R(i fails)` ∈ `[0, 1]` for coherent
    /// systems.
    pub birnbaum: f64,
    /// Improvement potential `R(i perfect) − R(current)`: the reliability
    /// gain from making the component perfect.
    pub improvement_potential: f64,
    /// Criticality importance: Birnbaum weighted by the component's own
    /// unreliability relative to the system's, `I_B·q_i / F_sys`.
    /// `None` when the system failure probability is zero.
    pub criticality: Option<f64>,
    /// Risk achievement worth `F(i failed) / F(current)`: how much worse the
    /// system gets if the component is lost. `None` when `F(current)` is 0.
    pub risk_achievement_worth: Option<f64>,
    /// Risk reduction worth `F(current) / F(i perfect)`: how much better the
    /// system gets if the component is perfected. `None` (interpreted as
    /// unbounded) when `F(i perfect)` is 0.
    pub risk_reduction_worth: Option<f64>,
}

/// Computes [`ImportanceMeasures`] for `component` in `block`.
///
/// `failure_of` supplies the per-component failure probabilities (for one
/// class of demands, per the paper's methodology).
///
/// # Errors
///
/// As [`system_failure`]; additionally [`RbdError::UnknownComponent`] if
/// `component` does not occur in the diagram.
///
/// # Example
///
/// The detection stage of the paper's Fig. 2: with the human missing 20% of
/// features, the machine's Birnbaum importance in the 1-of-2 detection stage
/// equals the probability the human misses (the machine matters exactly when
/// the human fails).
///
/// ```
/// use hmdiv_rbd::{Block, importance::importance};
/// use hmdiv_prob::Probability;
///
/// # fn main() -> Result<(), hmdiv_rbd::RbdError> {
/// let detect = Block::parallel(vec![Block::component("H"), Block::component("M")]);
/// let measures = importance(&detect, "M", |n| {
///     Ok(Probability::new(if n == "H" { 0.2 } else { 0.07 })
///         .expect("valid probability"))
/// })?;
/// assert!((measures.birnbaum - 0.2).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn importance<F>(
    block: &Block,
    component: &str,
    failure_of: F,
) -> Result<ImportanceMeasures, RbdError>
where
    F: FnMut(&str) -> Result<Probability, RbdError>,
{
    let compiled = CompiledBlock::compile(block)?;
    let Some(idx) = compiled.index_of(component) else {
        return Err(RbdError::UnknownComponent {
            name: component.to_owned(),
        });
    };
    let q = compiled.failure_probabilities(failure_of)?;
    measures_for(&compiled, &q, idx)
}

/// Computes the importance suite for one interned component from a compiled
/// diagram and a hoisted probability vector (three exact evaluations with
/// the component's failure probability as given, forced to 0, forced to 1).
fn measures_for(
    compiled: &CompiledBlock,
    q: &[Probability],
    idx: u32,
) -> Result<ImportanceMeasures, RbdError> {
    let q_i = q[idx as usize];
    let f_current = compiled.failure(q)?.value();
    let mut forced = q.to_vec();
    forced[idx as usize] = Probability::ZERO;
    let f_when_works = compiled.failure(&forced)?.value();
    forced[idx as usize] = Probability::ONE;
    let f_when_fails = compiled.failure(&forced)?.value();
    let birnbaum = f_when_fails - f_when_works; // = R(works) − R(fails)
    let improvement_potential = f_current - f_when_works;
    let criticality =
        (f_current > 0.0).then(|| (birnbaum * q_i.value() / f_current).clamp(0.0, 1.0));
    let risk_achievement_worth = (f_current > 0.0).then(|| f_when_fails / f_current);
    let risk_reduction_worth = (f_when_works > 0.0).then(|| f_current / f_when_works);
    Ok(ImportanceMeasures {
        birnbaum,
        improvement_potential,
        criticality,
        risk_achievement_worth,
        risk_reduction_worth,
    })
}

/// Ranks all components of the diagram by Birnbaum importance, descending.
///
/// Returns `(name, measures)` pairs. Ties keep lexicographic name order.
///
/// # Errors
///
/// As [`importance`].
pub fn rank_by_birnbaum<F>(
    block: &Block,
    failure_of: F,
) -> Result<Vec<(String, ImportanceMeasures)>, RbdError>
where
    F: FnMut(&str) -> Result<Probability, RbdError>,
{
    // One compilation and one probability hoist serve every component.
    let compiled = CompiledBlock::compile(block)?;
    let q = compiled.failure_probabilities(failure_of)?;
    let mut out = Vec::with_capacity(compiled.component_count());
    for (idx, name) in compiled.component_names().iter().enumerate() {
        let m = measures_for(&compiled, &q, idx as u32)?;
        out.push((name.clone(), m));
    }
    out.sort_by(|(na, a), (nb, b)| b.birnbaum.total_cmp(&a.birnbaum).then_with(|| na.cmp(nb)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn table<'a>(
        pairs: &'a [(&'a str, f64)],
    ) -> impl FnMut(&str) -> Result<Probability, RbdError> + 'a {
        move |name| {
            pairs
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| p(*v))
                .ok_or_else(|| RbdError::UnknownComponent { name: name.into() })
        }
    }

    #[test]
    fn series_birnbaum_is_product_of_other_reliabilities() {
        // For a series system, I_B(i) = Π_{j≠i} r_j.
        let sys = Block::series(vec![Block::component("a"), Block::component("b")]);
        let m = importance(&sys, "a", table(&[("a", 0.1), ("b", 0.2)])).unwrap();
        assert!((m.birnbaum - 0.8).abs() < 1e-12);
    }

    #[test]
    fn parallel_birnbaum_is_product_of_other_unreliabilities() {
        // For a parallel system, I_B(i) = Π_{j≠i} q_j.
        let sys = Block::parallel(vec![Block::component("a"), Block::component("b")]);
        let m = importance(&sys, "a", table(&[("a", 0.1), ("b", 0.2)])).unwrap();
        assert!((m.birnbaum - 0.2).abs() < 1e-12);
    }

    #[test]
    fn improvement_potential_equals_birnbaum_times_q() {
        // IP(i) = I_B(i)·q_i for coherent systems with independent comps.
        let sys = Block::series(vec![
            Block::parallel(vec![Block::component("Hd"), Block::component("Md")]),
            Block::component("Hc"),
        ]);
        let probs = [("Hd", 0.2), ("Md", 0.07), ("Hc", 0.1)];
        for name in ["Hd", "Md", "Hc"] {
            let m = importance(&sys, name, table(&probs)).unwrap();
            let q = probs.iter().find(|(n, _)| *n == name).unwrap().1;
            assert!(
                (m.improvement_potential - m.birnbaum * q).abs() < 1e-12,
                "{name}: {m:?}"
            );
        }
    }

    #[test]
    fn classification_dominates_fig2() {
        // In Fig. 2, Hclassify is a series single point of failure; its
        // Birnbaum importance must exceed either detection component's.
        let sys = Block::series(vec![
            Block::parallel(vec![Block::component("Hd"), Block::component("Md")]),
            Block::component("Hc"),
        ]);
        let probs = [("Hd", 0.2), ("Md", 0.07), ("Hc", 0.1)];
        let ranked = rank_by_birnbaum(&sys, table(&probs)).unwrap();
        assert_eq!(ranked[0].0, "Hc", "{ranked:?}");
    }

    #[test]
    fn raw_and_rrw_sane() {
        let sys = Block::parallel(vec![Block::component("a"), Block::component("b")]);
        let m = importance(&sys, "a", table(&[("a", 0.1), ("b", 0.2)])).unwrap();
        // F = 0.02; F(a failed) = 0.2 → RAW = 10; F(a perfect) = 0 → RRW unbounded.
        assert!((m.risk_achievement_worth.unwrap() - 10.0).abs() < 1e-9);
        assert!(m.risk_reduction_worth.is_none());
        assert!((m.criticality.unwrap() - 0.2 * 0.1 / 0.02).abs() < 1e-9);
    }

    #[test]
    fn perfect_system_has_none_ratios() {
        let sys = Block::component("a");
        let m = importance(&sys, "a", table(&[("a", 0.0)])).unwrap();
        assert!(m.criticality.is_none());
        assert!(m.risk_achievement_worth.is_none());
        assert!((m.birnbaum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_component_rejected() {
        let sys = Block::component("a");
        assert!(matches!(
            importance(&sys, "zz", table(&[("a", 0.5)])),
            Err(RbdError::UnknownComponent { .. })
        ));
    }

    #[test]
    fn irrelevant_component_has_zero_birnbaum() {
        // ((a | b) -> a): b is irrelevant (see structure tests).
        let sys = Block::series(vec![
            Block::parallel(vec![Block::component("a"), Block::component("b")]),
            Block::component("a"),
        ]);
        let m = importance(&sys, "b", table(&[("a", 0.3), ("b", 0.4)])).unwrap();
        assert!(m.birnbaum.abs() < 1e-12);
        assert!(m.improvement_potential.abs() < 1e-12);
    }

    #[test]
    fn ranking_is_descending() {
        let sys = Block::series(vec![
            Block::component("x"),
            Block::parallel(vec![Block::component("y"), Block::component("z")]),
        ]);
        let ranked = rank_by_birnbaum(&sys, table(&[("x", 0.01), ("y", 0.5), ("z", 0.5)])).unwrap();
        for w in ranked.windows(2) {
            assert!(w[0].1.birnbaum >= w[1].1.birnbaum);
        }
    }
}
