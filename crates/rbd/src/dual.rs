//! Dual systems.
//!
//! The *dual* of a coherent system swaps the roles of working and failing:
//! series ↔ parallel, and `k`-of-`n` ↔ `(n−k+1)`-of-`n`. The dual's minimal
//! path sets are the original's minimal cut sets and vice versa, and its
//! reliability at component reliabilities `r` equals one minus the
//! original's reliability at `1 − r`. Duality is the standard consistency
//! check for RBD algorithms, and it maps false-negative analyses onto
//! false-positive ones (a "recall iff any reader recalls" rule is the dual
//! of "no-recall iff all readers miss" — which is why the FN-optimal
//! combination rule is FP-pessimal).

use crate::{Block, RbdError};

/// Returns the dual of a diagram.
///
/// # Example
///
/// ```
/// use hmdiv_rbd::{Block, dual::dual};
///
/// let detect = Block::parallel(vec![Block::component("H"), Block::component("M")]);
/// let d = dual(&detect);
/// assert_eq!(d, Block::series(vec![Block::component("H"), Block::component("M")]));
/// ```
#[must_use]
pub fn dual(block: &Block) -> Block {
    match block {
        Block::Component(name) => Block::Component(name.clone()),
        Block::Series(blocks) => Block::Parallel(blocks.iter().map(dual).collect()),
        Block::Parallel(blocks) => Block::Series(blocks.iter().map(dual).collect()),
        Block::KOfN { k, blocks } => Block::KOfN {
            k: blocks.len() - k + 1,
            blocks: blocks.iter().map(dual).collect(),
        },
    }
}

/// Verifies the defining duality identity on a diagram, exhaustively over
/// all component states (for diagrams with at most 20 distinct components):
/// the dual works in state `s` iff the original fails in the complemented
/// state `¬s`.
///
/// Returns `Ok(())` when the identity holds.
///
/// # Errors
///
/// * [`RbdError::TooLarge`] beyond 20 components.
/// * Validation errors from either diagram.
/// * [`RbdError::UnknownComponent`] never occurs (states are complete), but
///   evaluation errors propagate.
pub fn check_duality(block: &Block) -> Result<(), RbdError> {
    use crate::structure::works;
    block.validate()?;
    let d = dual(block);
    d.validate()?;
    let names = block.component_names();
    if names.len() > 20 {
        return Err(RbdError::TooLarge {
            repeated: names.len(),
            max: 20,
        });
    }
    for bits in 0u32..(1u32 << names.len()) {
        let state: std::collections::BTreeMap<&str, bool> = names
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, bits & (1 << i) != 0))
            .collect();
        let complemented: std::collections::BTreeMap<&str, bool> =
            state.iter().map(|(&n, &v)| (n, !v)).collect();
        let dual_works = works(&d, &state)?;
        let original_fails = !works(block, &complemented)?;
        if dual_works != original_fails {
            // Encode the failing state in the error for diagnosis.
            return Err(RbdError::UnknownComponent {
                name: format!("duality violated in state {bits:b}"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::{minimal_cut_sets, minimal_path_sets};
    use crate::reliability::system_failure;
    use hmdiv_prob::Probability;

    fn fig2() -> Block {
        Block::series(vec![
            Block::parallel(vec![Block::component("Hd"), Block::component("Md")]),
            Block::component("Hc"),
        ])
    }

    #[test]
    fn dual_is_involution() {
        let diagrams = [
            fig2(),
            Block::k_of_n(
                2,
                vec![
                    Block::component("a"),
                    Block::component("b"),
                    Block::component("c"),
                ],
            ),
            Block::component("x"),
        ];
        for d in &diagrams {
            assert_eq!(&dual(&dual(d)), d);
        }
    }

    #[test]
    fn dual_swaps_paths_and_cuts() {
        let sys = fig2();
        let d = dual(&sys);
        assert_eq!(
            minimal_path_sets(&d).unwrap(),
            minimal_cut_sets(&sys).unwrap()
        );
        assert_eq!(
            minimal_cut_sets(&d).unwrap(),
            minimal_path_sets(&sys).unwrap()
        );
    }

    #[test]
    fn two_of_three_is_self_dual() {
        let sys = Block::k_of_n(
            2,
            vec![
                Block::component("a"),
                Block::component("b"),
                Block::component("c"),
            ],
        );
        assert_eq!(dual(&sys), sys);
    }

    #[test]
    fn duality_identity_holds_exhaustively() {
        check_duality(&fig2()).unwrap();
        check_duality(&Block::k_of_n(
            2,
            vec![
                Block::series(vec![Block::component("a"), Block::component("b")]),
                Block::component("c"),
                Block::parallel(vec![Block::component("d"), Block::component("a")]),
            ],
        ))
        .unwrap();
    }

    #[test]
    fn dual_reliability_identity() {
        // R_dual(r) = 1 − R(1 − r)
        let sys = fig2();
        let d = dual(&sys);
        let p = |v: f64| Probability::new(v).unwrap();
        let probs = [("Hd", 0.2), ("Md", 0.07), ("Hc", 0.1)];
        let fail_of = |pairs: &'static [(&'static str, f64)]| {
            move |name: &str| {
                pairs
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, v)| p(*v))
                    .ok_or_else(|| RbdError::UnknownComponent { name: name.into() })
            }
        };
        // Dual with failure prob q equals original with failure prob 1−q,
        // failure/reliability swapped.
        let dual_failure = system_failure(&d, fail_of(&[("Hd", 0.2), ("Md", 0.07), ("Hc", 0.1)]))
            .unwrap()
            .value();
        let orig_failure_flipped = system_failure(&sys, |name: &str| {
            probs
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| p(1.0 - *v))
                .ok_or_else(|| RbdError::UnknownComponent { name: name.into() })
        })
        .unwrap()
        .value();
        assert!((dual_failure - (1.0 - orig_failure_flipped)).abs() < 1e-12);
    }
}
