//! Minimal path sets and minimal cut sets.
//!
//! A *path set* is a set of components whose joint working guarantees system
//! success; a *cut set* is a set whose joint failure guarantees system
//! failure. The minimal ones characterise the structure function completely
//! and drive the Esary–Proschan reliability bounds in
//! [`crate::reliability`].

use std::collections::BTreeSet;

use crate::{Block, RbdError};

/// A set of component names.
pub type NameSet = BTreeSet<String>;

/// Computes the minimal path sets of the diagram.
///
/// # Errors
///
/// Propagates validation errors from [`Block::validate`].
///
/// # Example
///
/// ```
/// use hmdiv_rbd::{Block, paths::minimal_path_sets};
///
/// # fn main() -> Result<(), hmdiv_rbd::RbdError> {
/// let fig2 = Block::series(vec![
///     Block::parallel(vec![Block::component("Hd"), Block::component("Md")]),
///     Block::component("Hc"),
/// ]);
/// let paths = minimal_path_sets(&fig2)?;
/// // {Hd, Hc} and {Md, Hc}
/// assert_eq!(paths.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn minimal_path_sets(block: &Block) -> Result<Vec<NameSet>, RbdError> {
    block.validate()?;
    Ok(minimise(path_sets(block)))
}

/// Computes the minimal cut sets of the diagram.
///
/// # Errors
///
/// Propagates validation errors from [`Block::validate`].
pub fn minimal_cut_sets(block: &Block) -> Result<Vec<NameSet>, RbdError> {
    block.validate()?;
    Ok(minimise(cut_sets(block)))
}

fn path_sets(block: &Block) -> Vec<NameSet> {
    match block {
        Block::Component(name) => vec![[name.clone()].into()],
        Block::Series(blocks) => cross_union(blocks.iter().map(path_sets)),
        Block::Parallel(blocks) => blocks.iter().flat_map(path_sets).collect(),
        Block::KOfN { k, blocks } => {
            // Path sets of k-of-n: for every k-subset of children, the cross
            // union of their path sets.
            let child_paths: Vec<Vec<NameSet>> = blocks.iter().map(path_sets).collect();
            subsets_of_size(blocks.len(), *k)
                .into_iter()
                .flat_map(|subset| cross_union(subset.into_iter().map(|i| child_paths[i].clone())))
                .collect()
        }
    }
}

fn cut_sets(block: &Block) -> Vec<NameSet> {
    match block {
        Block::Component(name) => vec![[name.clone()].into()],
        // Duality: cuts of a series are the union of children's cuts…
        Block::Series(blocks) => blocks.iter().flat_map(cut_sets).collect(),
        // …and cuts of a parallel are cross-unions of children's cuts.
        Block::Parallel(blocks) => cross_union(blocks.iter().map(cut_sets)),
        Block::KOfN { k, blocks } => {
            // The system fails when n − k + 1 children fail.
            let child_cuts: Vec<Vec<NameSet>> = blocks.iter().map(cut_sets).collect();
            let fail_count = blocks.len() - *k + 1;
            subsets_of_size(blocks.len(), fail_count)
                .into_iter()
                .flat_map(|subset| cross_union(subset.into_iter().map(|i| child_cuts[i].clone())))
                .collect()
        }
    }
}

/// All ways to pick one set from each collection, unioned.
fn cross_union<I>(collections: I) -> Vec<NameSet>
where
    I: IntoIterator<Item = Vec<NameSet>>,
{
    let mut acc: Vec<NameSet> = vec![NameSet::new()];
    for collection in collections {
        let mut next = Vec::with_capacity(acc.len() * collection.len());
        for base in &acc {
            for set in &collection {
                let mut merged = base.clone();
                merged.extend(set.iter().cloned());
                next.push(merged);
            }
        }
        acc = next;
    }
    acc
}

fn subsets_of_size(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k);
    fn rec(start: usize, n: usize, k: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if current.len() == k {
            out.push(current.clone());
            return;
        }
        for i in start..n {
            current.push(i);
            rec(i + 1, n, k, current, out);
            current.pop();
        }
    }
    rec(0, n, k, &mut current, &mut out);
    out
}

/// Removes non-minimal sets (supersets of another set) and duplicates.
fn minimise(mut sets: Vec<NameSet>) -> Vec<NameSet> {
    sets.sort_by_key(BTreeSet::len);
    sets.dedup();
    let mut minimal: Vec<NameSet> = Vec::new();
    for s in sets {
        if !minimal.iter().any(|m| m.is_subset(&s)) {
            minimal.push(s);
        }
    }
    minimal.sort();
    minimal
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(names: &[&str]) -> NameSet {
        names.iter().map(|s| (*s).to_owned()).collect()
    }

    fn fig2() -> Block {
        Block::series(vec![
            Block::parallel(vec![Block::component("Hd"), Block::component("Md")]),
            Block::component("Hc"),
        ])
    }

    #[test]
    fn fig2_paths_and_cuts() {
        let paths = minimal_path_sets(&fig2()).unwrap();
        assert_eq!(paths, vec![set(&["Hc", "Hd"]), set(&["Hc", "Md"])]);
        let cuts = minimal_cut_sets(&fig2()).unwrap();
        assert_eq!(cuts, vec![set(&["Hc"]), set(&["Hd", "Md"])]);
    }

    #[test]
    fn series_paths() {
        let sys = Block::series(vec![Block::component("a"), Block::component("b")]);
        assert_eq!(minimal_path_sets(&sys).unwrap(), vec![set(&["a", "b"])]);
        assert_eq!(
            minimal_cut_sets(&sys).unwrap(),
            vec![set(&["a"]), set(&["b"])]
        );
    }

    #[test]
    fn two_of_three_paths_and_cuts() {
        let sys = Block::k_of_n(
            2,
            vec![
                Block::component("a"),
                Block::component("b"),
                Block::component("c"),
            ],
        );
        let paths = minimal_path_sets(&sys).unwrap();
        assert_eq!(
            paths,
            vec![set(&["a", "b"]), set(&["a", "c"]), set(&["b", "c"])]
        );
        // 2-of-3 is self-dual.
        let cuts = minimal_cut_sets(&sys).unwrap();
        assert_eq!(cuts, paths);
    }

    #[test]
    fn shared_component_sets_minimised() {
        // ((a -> b) | (a -> c)): paths {a,b}, {a,c}; cuts {a}, {b,c}.
        let sys = Block::parallel(vec![
            Block::series(vec![Block::component("a"), Block::component("b")]),
            Block::series(vec![Block::component("a"), Block::component("c")]),
        ]);
        assert_eq!(
            minimal_path_sets(&sys).unwrap(),
            vec![set(&["a", "b"]), set(&["a", "c"])]
        );
        assert_eq!(
            minimal_cut_sets(&sys).unwrap(),
            vec![set(&["a"]), set(&["b", "c"])]
        );
    }

    #[test]
    fn duality_on_random_small_diagrams() {
        use crate::structure::works;
        // For every state: system works iff some minimal path set is fully
        // working; system fails iff some minimal cut set is fully failed.
        let diagrams = [
            fig2(),
            Block::k_of_n(
                2,
                vec![
                    Block::series(vec![Block::component("a"), Block::component("b")]),
                    Block::component("c"),
                    Block::parallel(vec![Block::component("d"), Block::component("a")]),
                ],
            ),
        ];
        for sys in &diagrams {
            let names = sys.component_names();
            let paths = minimal_path_sets(sys).unwrap();
            let cuts = minimal_cut_sets(sys).unwrap();
            for bits in 0u32..(1 << names.len()) {
                let state: std::collections::BTreeMap<&str, bool> = names
                    .iter()
                    .enumerate()
                    .map(|(i, &n)| (n, bits & (1 << i) != 0))
                    .collect();
                let up = works(sys, &state).unwrap();
                let path_up = paths.iter().any(|p| p.iter().all(|c| state[c.as_str()]));
                let cut_down = cuts.iter().any(|c| c.iter().all(|x| !state[x.as_str()]));
                assert_eq!(up, path_up, "path mismatch for {sys} state {bits:b}");
                assert_eq!(!up, cut_down, "cut mismatch for {sys} state {bits:b}");
            }
        }
    }

    #[test]
    fn validation_errors_propagate() {
        assert!(minimal_path_sets(&Block::series(vec![])).is_err());
        assert!(minimal_cut_sets(&Block::parallel(vec![])).is_err());
    }
}
