//! Difficulty-function models of correlated failure between diverse
//! components (Eckhardt–Lee, Littlewood–Miller).
//!
//! The paper's eq. (3) writes the probability that both the CADT and the
//! reader miss the relevant features as
//!
//! ```text
//! P(detection failure) = PMf·PHmiss + cov(pMf(x), pHmiss(x))
//! ```
//!
//! This is the Littlewood–Miller result \[5\]: when two components fail
//! *conditionally independently* given the demand, but each with a
//! demand-dependent probability ("difficulty function"), the joint failure
//! probability over a demand profile is the product of marginals **plus the
//! covariance of the difficulty functions**. The Eckhardt–Lee model is the
//! special case where both components share one difficulty function, making
//! the covariance a variance — necessarily non-negative, so independence is
//! the *best* one can do. Genuine diversity (negative covariance) requires
//! *different* difficulty functions, which is the design lever the paper
//! explores for the CADT.

use hmdiv_prob::moments::CategoricalMoments;
use hmdiv_prob::{Categorical, Probability};

/// Summary of the joint failure behaviour of two diverse components over a
/// demand profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiversityReport {
    /// Marginal failure probability of component A, `E[θ_A]`.
    pub p_a: Probability,
    /// Marginal failure probability of component B, `E[θ_B]`.
    pub p_b: Probability,
    /// Probability both fail on the same demand, `E[θ_A·θ_B]`.
    pub p_both: Probability,
    /// The covariance `cov(θ_A, θ_B)` over the demand profile.
    pub covariance: f64,
    /// What `p_both` would be under (unconditional) independence,
    /// `E[θ_A]·E[θ_B]`.
    pub independent_product: f64,
    /// Pearson correlation of the difficulty functions, if defined.
    pub difficulty_correlation: Option<f64>,
}

impl DiversityReport {
    /// The factor by which correlated failure inflates (or deflates) the
    /// joint failure probability relative to independence:
    /// `p_both / (p_a·p_b)`. `None` if either marginal is zero.
    #[must_use]
    pub fn correlation_factor(&self) -> Option<f64> {
        (self.independent_product > 0.0).then(|| self.p_both.value() / self.independent_product)
    }

    /// Whether the pair exhibits *useful diversity*: negative covariance,
    /// i.e. the demands hard for A tend to be easy for B and vice versa.
    #[must_use]
    pub fn is_diverse(&self) -> bool {
        self.covariance < 0.0
    }
}

/// Evaluates the Littlewood–Miller model for two components with difficulty
/// functions `theta_a` and `theta_b` over the demand profile.
///
/// Both closures give the per-demand probability of failure of the
/// respective component, conditional on the demand; failures are assumed
/// conditionally independent given the demand (the paper's "conditional
/// independence" for the reader and CADT performing detection separately).
///
/// # Example
///
/// ```
/// use hmdiv_prob::{Categorical, Probability};
/// use hmdiv_rbd::difficulty::littlewood_miller;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let profile = Categorical::new(vec![("easy", 0.8), ("difficult", 0.2)])?;
/// // Machine finds "difficult" cases hard; so does the human: aligned
/// // difficulty, positive covariance, redundancy worth less than it looks.
/// let report = littlewood_miller(
///     &profile,
///     |c| Probability::new(if *c == "easy" { 0.07 } else { 0.41 }).unwrap(),
///     |c| Probability::new(if *c == "easy" { 0.18 } else { 0.90 }).unwrap(),
/// );
/// assert!(report.covariance > 0.0);
/// assert!(report.p_both.value() > report.independent_product);
/// # Ok(())
/// # }
/// ```
pub fn littlewood_miller<T>(
    profile: &Categorical<T>,
    mut theta_a: impl FnMut(&T) -> Probability,
    mut theta_b: impl FnMut(&T) -> Probability,
) -> DiversityReport {
    let p_a = profile.mean_of(|x| theta_a(x).value());
    let p_b = profile.mean_of(|x| theta_b(x).value());
    let p_both = profile.mean_of(|x| theta_a(x).value() * theta_b(x).value());
    let covariance = profile.covariance_of(|x| theta_a(x).value(), |x| theta_b(x).value());
    let var_a = profile.variance_of(|x| theta_a(x).value());
    let var_b = profile.variance_of(|x| theta_b(x).value());
    let difficulty_correlation = (var_a > 0.0 && var_b > 0.0)
        .then(|| (covariance / (var_a * var_b).sqrt()).clamp(-1.0, 1.0));
    DiversityReport {
        p_a: Probability::clamped(p_a),
        p_b: Probability::clamped(p_b),
        p_both: Probability::clamped(p_both),
        covariance,
        independent_product: p_a * p_b,
        difficulty_correlation,
    }
}

/// Evaluates the Eckhardt–Lee model: two versions developed "independently"
/// that share a single difficulty function `theta`.
///
/// The joint failure probability is `E[θ²] = E[θ]² + Var(θ) ≥ E[θ]²`, so
/// common difficulty always *hurts*: the two versions fail together more
/// often than independent coin flips would.
pub fn eckhardt_lee<T>(
    profile: &Categorical<T>,
    theta: impl Fn(&T) -> Probability,
) -> DiversityReport {
    littlewood_miller(profile, &theta, &theta)
}

/// The probability that a 1-out-of-2 system of the two components fails
/// (both must fail), directly from the report: `p_both`.
///
/// Provided as a named function to make call sites read like the paper's
/// eq. (3).
#[must_use]
pub fn one_out_of_two_failure(report: &DiversityReport) -> Probability {
    report.p_both
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn two_class_profile() -> Categorical<&'static str> {
        Categorical::new(vec![("easy", 0.8), ("difficult", 0.2)]).unwrap()
    }

    #[test]
    fn lm_reduces_to_product_plus_covariance() {
        let profile = two_class_profile();
        let report = littlewood_miller(
            &profile,
            |c| p(if *c == "easy" { 0.07 } else { 0.41 }),
            |c| p(if *c == "easy" { 0.2 } else { 0.9 }),
        );
        assert!(
            (report.p_both.value() - (report.independent_product + report.covariance)).abs()
                < 1e-12
        );
    }

    #[test]
    fn aligned_difficulty_is_positive_covariance() {
        let profile = two_class_profile();
        let report = littlewood_miller(
            &profile,
            |c| p(if *c == "easy" { 0.07 } else { 0.41 }),
            |c| p(if *c == "easy" { 0.2 } else { 0.9 }),
        );
        assert!(report.covariance > 0.0);
        assert!(!report.is_diverse());
        assert!(report.correlation_factor().unwrap() > 1.0);
        assert!(report.difficulty_correlation.unwrap() > 0.99);
    }

    #[test]
    fn complementary_difficulty_is_negative_covariance() {
        // The machine is good exactly where the human is bad: the paper's
        // ideal "diverse" CADT.
        let profile = two_class_profile();
        let report = littlewood_miller(
            &profile,
            |c| p(if *c == "easy" { 0.41 } else { 0.07 }),
            |c| p(if *c == "easy" { 0.2 } else { 0.9 }),
        );
        assert!(report.covariance < 0.0);
        assert!(report.is_diverse());
        assert!(report.correlation_factor().unwrap() < 1.0);
        // 1-of-2 failure beats the independence prediction.
        assert!(one_out_of_two_failure(&report).value() < report.independent_product);
    }

    #[test]
    fn eckhardt_lee_never_beats_independence() {
        let profile = two_class_profile();
        let report = eckhardt_lee(&profile, |c| p(if *c == "easy" { 0.1 } else { 0.6 }));
        assert!(report.covariance >= 0.0);
        assert!(report.p_both.value() >= report.independent_product - 1e-15);
        // Variance of difficulty equals covariance here.
        assert!(
            (report.covariance - profile.variance_of(|c| if *c == "easy" { 0.1 } else { 0.6 }))
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn constant_difficulty_is_independence() {
        let profile = two_class_profile();
        let report = eckhardt_lee(&profile, |_| p(0.3));
        assert!(report.covariance.abs() < 1e-15);
        assert!((report.p_both.value() - 0.09).abs() < 1e-12);
        assert!(report.difficulty_correlation.is_none());
    }

    #[test]
    fn marginals_match_expectations() {
        let profile = two_class_profile();
        let report = littlewood_miller(
            &profile,
            |c| p(if *c == "easy" { 0.07 } else { 0.41 }),
            |c| p(if *c == "easy" { 0.14 } else { 0.4 }),
        );
        assert!((report.p_a.value() - (0.8 * 0.07 + 0.2 * 0.41)).abs() < 1e-12);
        assert!((report.p_b.value() - (0.8 * 0.14 + 0.2 * 0.4)).abs() < 1e-12);
    }

    #[test]
    fn correlation_factor_none_when_marginal_zero() {
        let profile = two_class_profile();
        let report = littlewood_miller(&profile, |_| Probability::ZERO, |_| p(0.5));
        assert!(report.correlation_factor().is_none());
        assert_eq!(report.p_both, Probability::ZERO);
    }
}
