use std::error::Error;
use std::fmt;

use hmdiv_prob::ProbError;

/// Error type for reliability-block-diagram operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RbdError {
    /// A series/parallel/k-of-n group was constructed with no children.
    EmptyGroup {
        /// The kind of group ("series", "parallel", "k-of-n").
        kind: &'static str,
    },
    /// A k-out-of-n group was given an inconsistent threshold.
    InvalidThreshold {
        /// The threshold `k` requested.
        k: usize,
        /// The number of children `n`.
        n: usize,
    },
    /// A component referenced in evaluation has no probability assigned.
    UnknownComponent {
        /// The component's name.
        name: String,
    },
    /// An underlying probability computation failed.
    Prob(ProbError),
    /// The diagram is too large for exact evaluation.
    TooLarge {
        /// Number of distinct repeated components that would need
        /// conditioning.
        repeated: usize,
        /// The supported maximum.
        max: usize,
    },
    /// The diagram exceeds the compiler's `u32` index/arity encoding.
    Oversized {
        /// What overflowed ("distinct components", "series group", …).
        what: &'static str,
        /// The offending size.
        len: usize,
    },
}

impl fmt::Display for RbdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RbdError::EmptyGroup { kind } => write!(f, "{kind} group must have at least one child"),
            RbdError::InvalidThreshold { k, n } => {
                write!(f, "k-out-of-n threshold {k} is invalid for {n} children")
            }
            RbdError::UnknownComponent { name } => {
                write!(f, "no failure probability assigned to component `{name}`")
            }
            RbdError::Prob(e) => write!(f, "probability error: {e}"),
            RbdError::TooLarge { repeated, max } => write!(
                f,
                "diagram has {repeated} repeated components, exact evaluation supports at most {max}"
            ),
            RbdError::Oversized { what, len } => {
                write!(f, "{what} has {len} entries, exceeding the u32 encoding")
            }
        }
    }
}

impl Error for RbdError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RbdError::Prob(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProbError> for RbdError {
    fn from(e: ProbError) -> Self {
        RbdError::Prob(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_and_lowercase() {
        let errors = [
            RbdError::EmptyGroup { kind: "series" },
            RbdError::InvalidThreshold { k: 5, n: 3 },
            RbdError::UnknownComponent {
                name: "cadt".into(),
            },
            RbdError::Prob(ProbError::Empty { context: "weights" }),
            RbdError::TooLarge {
                repeated: 40,
                max: 20,
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with('k'));
        }
    }

    #[test]
    fn prob_error_is_source() {
        let e = RbdError::from(ProbError::InvalidConfidence { level: 2.0 });
        assert!(e.source().is_some());
    }
}
