//! Compiled structure functions: flat, allocation-free evaluation of
//! reliability block diagrams.
//!
//! [`crate::structure::works`] interprets the [`Block`] tree recursively
//! against a `BTreeMap<&str, bool>` state — convenient, but on the
//! Monte-Carlo sampling path it pays a string-keyed map lookup per leaf per
//! sample plus the recursion overhead. [`CompiledBlock`] removes both:
//! component names are interned to dense `u32` indices once, the tree is
//! flattened to a postfix program, and evaluation is an iterative loop over
//! a reusable scratch stack with `Vec<bool>` state indexed by component id.
//!
//! The same program also drives *exact* reliability evaluation (with the
//! factoring over repeated components that
//! [`crate::reliability::system_reliability`] performs) and the importance
//! measures, so every evaluation mode shares one interning and one
//! flattening of the diagram. The arithmetic mirrors the recursive
//! evaluator operation-for-operation, so compiled results are bit-identical
//! to the tree walk.
//!
//! # Example
//!
//! ```
//! use hmdiv_rbd::{Block, compiled::CompiledBlock};
//!
//! # fn main() -> Result<(), hmdiv_rbd::RbdError> {
//! let sys = Block::series(vec![
//!     Block::parallel(vec![Block::component("Hd"), Block::component("Md")]),
//!     Block::component("Hc"),
//! ]);
//! let compiled = CompiledBlock::compile(&sys)?;
//! // Components are interned in sorted-name order: Hc, Hd, Md.
//! let state = [true, false, true]; // Hc works, Hd failed, Md works
//! assert!(compiled.eval(&state));
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;

use hmdiv_prob::Probability;

use crate::reliability::MAX_REPEATED;
use crate::{Block, RbdError};

/// One postfix instruction. Children of a group are evaluated (pushed)
/// before the group instruction consumes them, so a single left-to-right
/// pass over the program evaluates the diagram.
///
/// The program is exposed read-only through [`CompiledBlock::ops`] so that
/// external passes (the `hmdiv-analyze` verifier and abstract interpreter)
/// can reason about the exact instruction stream the evaluators execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Push the state of the component with this interned index.
    Comp(u32),
    /// Pop this many values; push their conjunction.
    Series(u32),
    /// Pop this many values; push their disjunction.
    Parallel(u32),
    /// Pop `n` values; push "at least `k` of them work".
    KOfN {
        /// Minimum number of working children.
        k: u32,
        /// Number of children.
        n: u32,
    },
}

/// A [`Block`] compiled to interned component indices and a flat postfix
/// program.
///
/// Construction validates the diagram once; evaluation then never fails and
/// never allocates (with [`CompiledBlock::eval_with`] and a reused scratch
/// stack).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledBlock {
    /// Distinct component names, sorted; position = interned index.
    names: Vec<String>,
    /// The postfix program.
    ops: Vec<Op>,
    /// Interned indices of components occurring more than once, in sorted
    /// name order (the factoring order of the exact evaluator).
    repeated: Vec<u32>,
    /// Deepest stack the program ever needs.
    max_stack: usize,
}

impl CompiledBlock {
    /// Validates and compiles a diagram.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from [`Block::validate`], and returns
    /// [`RbdError::Oversized`] if the diagram exceeds the compiler's `u32`
    /// index/arity representation.
    pub fn compile(block: &Block) -> Result<Self, RbdError> {
        let _span = hmdiv_obs::span("rbd.compile");
        block.validate()?;
        let names: Vec<String> = block
            .component_names()
            .into_iter()
            .map(str::to_owned)
            .collect();
        if u32::try_from(names.len()).is_err() {
            return Err(RbdError::Oversized {
                what: "distinct components",
                len: names.len(),
            });
        }
        let index: BTreeMap<&str, u32> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i as u32))
            .collect();
        let mut ops = Vec::with_capacity(block.leaf_count() * 2);
        emit(block, &index, &mut ops)?;
        let mut depth = 0usize;
        let mut max_stack = 0usize;
        for op in &ops {
            match op {
                Op::Comp(_) => depth += 1,
                Op::Series(n) | Op::Parallel(n) | Op::KOfN { n, .. } => {
                    depth -= *n as usize - 1;
                }
            }
            max_stack = max_stack.max(depth);
        }
        debug_assert_eq!(depth, 1, "program must leave exactly one result");
        let repeated: Vec<u32> = block
            .repeated_names()
            .into_iter()
            .map(|n| index[n])
            .collect();
        Ok(CompiledBlock {
            names,
            ops,
            repeated,
            max_stack,
        })
    }

    /// The distinct component names in interned order (sorted).
    #[must_use]
    pub fn component_names(&self) -> &[String] {
        &self.names
    }

    /// Number of distinct components (the required state length).
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.names.len()
    }

    /// The interned index of `name`, if it occurs in the diagram.
    #[must_use]
    pub fn index_of(&self, name: &str) -> Option<u32> {
        self.names
            .binary_search_by(|n| n.as_str().cmp(name))
            .ok()
            .map(|i| i as u32)
    }

    /// Interned indices of components appearing more than once, sorted.
    #[must_use]
    pub fn repeated_indices(&self) -> &[u32] {
        &self.repeated
    }

    /// The postfix program, read-only. This is the exact instruction stream
    /// every evaluation mode executes; static-analysis passes consume it to
    /// verify well-formedness and to bound reliability abstractly.
    #[must_use]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The deepest evaluation stack the program needs; pre-size scratch
    /// buffers with this to make [`CompiledBlock::eval_with`] allocation-free.
    #[must_use]
    pub fn max_stack(&self) -> usize {
        self.max_stack
    }

    /// Evaluates the structure function over `state` (`true` = working),
    /// indexed by interned component id.
    ///
    /// Allocates a fresh scratch stack; use [`CompiledBlock::eval_with`] on
    /// hot paths.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != self.component_count()`.
    #[must_use]
    pub fn eval(&self, state: &[bool]) -> bool {
        let mut stack = Vec::with_capacity(self.max_stack);
        self.eval_with(state, &mut stack)
    }

    /// Evaluates the structure function using a caller-provided scratch
    /// stack. After the first call with a stack of capacity
    /// [`CompiledBlock::max_stack`], evaluation performs no heap allocation
    /// and no string-keyed lookups.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != self.component_count()`.
    pub fn eval_with(&self, state: &[bool], stack: &mut Vec<bool>) -> bool {
        assert_eq!(
            state.len(),
            self.names.len(),
            "state length must equal component count"
        );
        stack.clear();
        for op in &self.ops {
            match *op {
                Op::Comp(i) => stack.push(state[i as usize]),
                Op::Series(n) => {
                    let base = stack.len() - n as usize;
                    let v = stack[base..].iter().all(|&b| b);
                    stack.truncate(base);
                    stack.push(v);
                }
                Op::Parallel(n) => {
                    let base = stack.len() - n as usize;
                    let v = stack[base..].iter().any(|&b| b);
                    stack.truncate(base);
                    stack.push(v);
                }
                Op::KOfN { k, n } => {
                    let base = stack.len() - n as usize;
                    let working = stack[base..].iter().filter(|&&b| b).count();
                    stack.truncate(base);
                    stack.push(working >= k as usize);
                }
            }
        }
        stack.pop().expect("non-empty program")
    }

    /// Hoists per-component failure probabilities into a dense vector
    /// aligned with the interned indices, calling `failure_of` exactly once
    /// per distinct component in sorted-name order.
    ///
    /// # Errors
    ///
    /// Any error from `failure_of`.
    pub fn failure_probabilities<F>(&self, mut failure_of: F) -> Result<Vec<Probability>, RbdError>
    where
        F: FnMut(&str) -> Result<Probability, RbdError>,
    {
        self.names.iter().map(|n| failure_of(n)).collect()
    }

    /// Exact system reliability given dense per-component failure
    /// probabilities (indexed by interned id), factoring over repeated
    /// components exactly as [`crate::reliability::system_reliability`].
    ///
    /// # Errors
    ///
    /// [`RbdError::TooLarge`] if more than
    /// [`crate::reliability::MAX_REPEATED`] distinct components repeat.
    ///
    /// # Panics
    ///
    /// Panics if `q.len() != self.component_count()`.
    pub fn reliability(&self, q: &[Probability]) -> Result<Probability, RbdError> {
        assert_eq!(
            q.len(),
            self.names.len(),
            "probability vector length must equal component count"
        );
        if self.repeated.len() > MAX_REPEATED {
            return Err(RbdError::TooLarge {
                repeated: self.repeated.len(),
                max: MAX_REPEATED,
            });
        }
        let rel: Vec<Probability> = q.iter().map(|p| p.complement()).collect();
        let mut fixed: Vec<Option<bool>> = vec![None; self.names.len()];
        let mut stack: Vec<Probability> = Vec::with_capacity(self.max_stack);
        Ok(self.factored(&rel, q, &self.repeated, &mut fixed, &mut stack))
    }

    /// Exact system *failure* probability; see [`CompiledBlock::reliability`].
    ///
    /// # Errors
    ///
    /// As [`CompiledBlock::reliability`].
    pub fn failure(&self, q: &[Probability]) -> Result<Probability, RbdError> {
        Ok(self.reliability(q)?.complement())
    }

    /// Conditions on each repeated component in turn (law of total
    /// probability), then composes the conditionally-independent remainder.
    fn factored(
        &self,
        rel: &[Probability],
        q: &[Probability],
        remaining: &[u32],
        fixed: &mut [Option<bool>],
        stack: &mut Vec<Probability>,
    ) -> Probability {
        match remaining.split_first() {
            None => self.independent(rel, fixed, stack),
            Some((&idx, rest)) => {
                let p_fail = q[idx as usize];
                fixed[idx as usize] = Some(true);
                let r_works = self.factored(rel, q, rest, fixed, stack);
                fixed[idx as usize] = Some(false);
                let r_fails = self.factored(rel, q, rest, fixed, stack);
                fixed[idx as usize] = None;
                r_works.mix(r_fails, p_fail.complement())
            }
        }
    }

    /// Series/parallel/k-of-n composition over the program, with conditioned
    /// components pinned to certainty. Arithmetic matches the recursive
    /// evaluator operation-for-operation (same order, same operations) so
    /// results are bit-identical.
    fn independent(
        &self,
        rel: &[Probability],
        fixed: &[Option<bool>],
        stack: &mut Vec<Probability>,
    ) -> Probability {
        stack.clear();
        for op in &self.ops {
            match *op {
                Op::Comp(i) => stack.push(match fixed[i as usize] {
                    Some(true) => Probability::ONE,
                    Some(false) => Probability::ZERO,
                    None => rel[i as usize],
                }),
                Op::Series(n) => {
                    let base = stack.len() - n as usize;
                    let mut r = Probability::ONE;
                    for &child in &stack[base..] {
                        r = r * child;
                    }
                    stack.truncate(base);
                    stack.push(r);
                }
                Op::Parallel(n) => {
                    let base = stack.len() - n as usize;
                    let mut p_all_fail = Probability::ONE;
                    for &child in &stack[base..] {
                        p_all_fail = p_all_fail * child.complement();
                    }
                    stack.truncate(base);
                    stack.push(p_all_fail.complement());
                }
                Op::KOfN { k, n } => {
                    let base = stack.len() - n as usize;
                    // Dynamic programme over "probability that exactly j of
                    // the first i children work" — identical to the
                    // recursive evaluator's.
                    let mut dist = vec![1.0f64];
                    for child in &stack[base..] {
                        let r = child.value();
                        let mut next = vec![0.0f64; dist.len() + 1];
                        for (m, &pm) in dist.iter().enumerate() {
                            next[m] += pm * (1.0 - r);
                            next[m + 1] += pm * r;
                        }
                        dist = next;
                    }
                    let p: f64 = dist.iter().skip(k as usize).sum();
                    stack.truncate(base);
                    stack.push(Probability::clamped(p));
                }
            }
        }
        stack.pop().expect("non-empty program")
    }
}

/// Emits the postfix program for `block`, children before their group.
/// Group arities must fit the `u32` instruction encoding; oversized groups
/// are a typed error rather than a silent truncation.
fn emit(block: &Block, index: &BTreeMap<&str, u32>, ops: &mut Vec<Op>) -> Result<(), RbdError> {
    let arity = |blocks: &[Block], what| {
        u32::try_from(blocks.len()).map_err(|_| RbdError::Oversized {
            what,
            len: blocks.len(),
        })
    };
    match block {
        Block::Component(name) => ops.push(Op::Comp(index[name.as_str()])),
        Block::Series(blocks) => {
            let n = arity(blocks, "series group")?;
            for b in blocks {
                emit(b, index, ops)?;
            }
            ops.push(Op::Series(n));
        }
        Block::Parallel(blocks) => {
            let n = arity(blocks, "parallel group")?;
            for b in blocks {
                emit(b, index, ops)?;
            }
            ops.push(Op::Parallel(n));
        }
        Block::KOfN { k, blocks } => {
            // `validate` guarantees 0 < k ≤ n, so a threshold that fits the
            // arity check below also fits `u32`.
            let n = arity(blocks, "k-of-n group")?;
            for b in blocks {
                emit(b, index, ops)?;
            }
            ops.push(Op::KOfN { k: *k as u32, n });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::{works, State};

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn fig2() -> Block {
        Block::series(vec![
            Block::parallel(vec![Block::component("Hd"), Block::component("Md")]),
            Block::component("Hc"),
        ])
    }

    fn shared() -> Block {
        Block::parallel(vec![
            Block::series(vec![Block::component("a"), Block::component("b")]),
            Block::series(vec![Block::component("a"), Block::component("c")]),
        ])
    }

    #[test]
    fn interning_is_sorted_and_searchable() {
        let compiled = CompiledBlock::compile(&fig2()).unwrap();
        assert_eq!(compiled.component_names(), ["Hc", "Hd", "Md"]);
        assert_eq!(compiled.index_of("Hd"), Some(1));
        assert_eq!(compiled.index_of("ghost"), None);
        assert!(compiled.repeated_indices().is_empty());
    }

    #[test]
    fn repeated_components_are_tracked() {
        let compiled = CompiledBlock::compile(&shared()).unwrap();
        assert_eq!(compiled.component_names(), ["a", "b", "c"]);
        assert_eq!(compiled.repeated_indices(), [0]);
    }

    #[test]
    fn eval_matches_works_exhaustively() {
        for block in [
            fig2(),
            shared(),
            Block::k_of_n(
                2,
                vec![
                    Block::component("x"),
                    Block::component("y"),
                    Block::component("z"),
                ],
            ),
            Block::component("solo"),
        ] {
            let compiled = CompiledBlock::compile(&block).unwrap();
            let names = block.component_names();
            let n = names.len();
            let mut state = vec![false; n];
            let mut stack = Vec::with_capacity(compiled.max_stack());
            for bits in 0u32..(1 << n) {
                let mut map = State::new();
                for (i, &name) in names.iter().enumerate() {
                    state[i] = bits & (1 << i) != 0;
                    map.insert(name, state[i]);
                }
                assert_eq!(
                    compiled.eval_with(&state, &mut stack),
                    works(&block, &map).unwrap(),
                    "{block} bits={bits:b}"
                );
            }
        }
    }

    #[test]
    fn scratch_stack_never_exceeds_max_stack() {
        let block = shared();
        let compiled = CompiledBlock::compile(&block).unwrap();
        let mut stack = Vec::with_capacity(compiled.max_stack());
        let state = vec![true; compiled.component_count()];
        compiled.eval_with(&state, &mut stack);
        assert!(stack.capacity() <= compiled.max_stack().max(1) * 2);
    }

    #[test]
    fn reliability_matches_hand_computation() {
        let compiled = CompiledBlock::compile(&fig2()).unwrap();
        // Interned order Hc, Hd, Md.
        let q = vec![p(0.1), p(0.2), p(0.07)];
        let fail = compiled.failure(&q).unwrap().value();
        let expected = 1.0 - (1.0 - 0.2 * 0.07) * (1.0 - 0.1);
        assert!((fail - expected).abs() < 1e-15, "{fail} vs {expected}");
    }

    #[test]
    fn reliability_factors_shared_components() {
        let compiled = CompiledBlock::compile(&shared()).unwrap();
        // a repeated: R = ra·(1 − (1 − rb)(1 − rc)) by conditioning on a.
        let (qa, qb, qc) = (0.3, 0.25, 0.4);
        let q = vec![p(qa), p(qb), p(qc)];
        let r = compiled.reliability(&q).unwrap().value();
        let expected = (1.0 - qa) * (1.0 - qb * qc);
        assert!((r - expected).abs() < 1e-15, "{r} vs {expected}");
    }

    #[test]
    fn failure_probabilities_hoist_in_interned_order() {
        let compiled = CompiledBlock::compile(&fig2()).unwrap();
        let mut seen = Vec::new();
        let q = compiled
            .failure_probabilities(|name| {
                seen.push(name.to_owned());
                Ok(p(0.5))
            })
            .unwrap();
        assert_eq!(seen, ["Hc", "Hd", "Md"]);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn invalid_diagrams_are_rejected_at_compile_time() {
        let invalid = Block::series(vec![]);
        assert!(CompiledBlock::compile(&invalid).is_err());
    }

    /// Degenerate diagrams never reach the postfix emitter: each edge case
    /// fails compilation with its typed error, even when nested.
    #[test]
    fn edge_case_diagrams_fail_with_typed_errors() {
        let zero_k = Block::k_of_n(0, vec![Block::component("a")]);
        assert_eq!(
            CompiledBlock::compile(&zero_k).unwrap_err(),
            RbdError::InvalidThreshold { k: 0, n: 1 }
        );
        let k_over_n = Block::k_of_n(3, vec![Block::component("a"), Block::component("b")]);
        assert_eq!(
            CompiledBlock::compile(&k_over_n).unwrap_err(),
            RbdError::InvalidThreshold { k: 3, n: 2 }
        );
        for (block, kind) in [
            (Block::series(vec![]), "series"),
            (Block::parallel(vec![]), "parallel"),
            (Block::k_of_n(1, vec![]), "k-of-n"),
        ] {
            assert_eq!(
                CompiledBlock::compile(&block).unwrap_err(),
                RbdError::EmptyGroup { kind }
            );
        }
        let nested = Block::series(vec![
            Block::component("ok"),
            Block::parallel(vec![Block::k_of_n(9, vec![Block::component("x")])]),
        ]);
        assert_eq!(
            CompiledBlock::compile(&nested).unwrap_err(),
            RbdError::InvalidThreshold { k: 9, n: 1 }
        );
    }

    #[test]
    fn ops_are_exposed_read_only() {
        let compiled = CompiledBlock::compile(&fig2()).unwrap();
        // Interned order Hc=0, Hd=1, Md=2; postfix: Hd Md par(2) Hc ser(2).
        assert_eq!(
            compiled.ops(),
            [
                Op::Comp(1),
                Op::Comp(2),
                Op::Parallel(2),
                Op::Comp(0),
                Op::Series(2),
            ]
        );
    }
}
