//! The computer-aided detection tool (CADT) model.
//!
//! The CADT processes the digitised films and prompts features the reader
//! should examine. Its per-lesion detection probability is logistic in the
//! lesion's subtlety relative to an operating threshold:
//!
//! ```text
//! P(prompt lesion) = σ( sharpness · (operating − subtlety − density·difficulty) )
//! ```
//!
//! Raising `operating` prompts more (better sensitivity, more spurious
//! prompts on normal films); `sharpness` controls how decisively the
//! detector separates easy from subtle lesions; `density_penalty` makes
//! dense/confusing films (high difficulty) hurt the algorithm the way they
//! hurt a human — the shared-difficulty coupling that produces correlated
//! failures.
//!
//! On normal films the CADT emits spurious prompts at a rate increasing in
//! the operating threshold and the film difficulty.

use rand::Rng;
use serde::{Deserialize, Serialize};

use hmdiv_prob::Probability;

use crate::case::Case;
use crate::SimError;

/// Output of the CADT on one case.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CadtOutput {
    /// For each lesion of the case (by index), whether it was prompted.
    /// Empty for normal cases.
    pub prompted_lesions: Vec<bool>,
    /// Number of spurious prompts on non-lesion features.
    pub spurious_prompts: usize,
}

impl CadtOutput {
    /// Number of true lesions prompted (0 for normal cases).
    #[must_use]
    pub fn true_prompts(&self) -> usize {
        self.prompted_lesions.iter().filter(|&&p| p).count()
    }

    /// Whether the CADT prompted at least one genuine lesion. For cancer
    /// cases, `false` is the machine's false-negative failure (`Mf`).
    #[must_use]
    pub fn detected_cancer(&self) -> bool {
        self.prompted_lesions.iter().any(|&p| p)
    }

    /// Whether the CADT produced any prompt at all.
    #[must_use]
    pub fn any_prompt(&self) -> bool {
        self.detected_cancer() || self.spurious_prompts > 0
    }
}

/// CADT configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cadt {
    /// Operating threshold in `[0, 1]`: higher prompts more.
    pub operating: f64,
    /// Logistic sharpness (> 0): how decisively subtlety separates
    /// detections from misses.
    pub sharpness: f64,
    /// How much overall film difficulty degrades the algorithm, in `[0, 1]`.
    pub density_penalty: f64,
    /// Expected number of spurious prompts on a maximally difficult normal
    /// film at `operating = 1` (scales down with both).
    pub max_spurious_rate: f64,
}

impl Cadt {
    /// Creates a CADT configuration.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] for out-of-range parameters.
    pub fn new(
        operating: f64,
        sharpness: f64,
        density_penalty: f64,
        max_spurious_rate: f64,
    ) -> Result<Self, SimError> {
        if operating.is_nan() || !(0.0..=1.0).contains(&operating) {
            return Err(SimError::InvalidConfig {
                value: operating,
                context: "CADT operating threshold",
            });
        }
        if sharpness.is_nan() || sharpness <= 0.0 || sharpness.is_infinite() {
            return Err(SimError::InvalidConfig {
                value: sharpness,
                context: "CADT sharpness",
            });
        }
        if density_penalty.is_nan() || !(0.0..=1.0).contains(&density_penalty) {
            return Err(SimError::InvalidConfig {
                value: density_penalty,
                context: "CADT density penalty",
            });
        }
        if max_spurious_rate.is_nan() || max_spurious_rate < 0.0 || max_spurious_rate.is_infinite()
        {
            return Err(SimError::InvalidConfig {
                value: max_spurious_rate,
                context: "CADT spurious-prompt rate",
            });
        }
        Ok(Cadt {
            operating,
            sharpness,
            density_penalty,
            max_spurious_rate,
        })
    }

    /// A reasonable default detector: moderately sensitive, sharp, with a
    /// realistic density penalty.
    ///
    /// # Errors
    ///
    /// Never fails in practice.
    pub fn default_detector() -> Result<Self, SimError> {
        Cadt::new(0.62, 6.0, 0.35, 2.0)
    }

    /// A copy at a different operating threshold (re-tuning, §5 item 4).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] if `operating` is outside `[0, 1]`.
    pub fn with_operating(&self, operating: f64) -> Result<Self, SimError> {
        Cadt::new(
            operating,
            self.sharpness,
            self.density_penalty,
            self.max_spurious_rate,
        )
    }

    /// The probability of prompting one lesion of the given subtlety on a
    /// film of the given difficulty.
    #[must_use]
    pub fn p_prompt_lesion(&self, subtlety: f64, difficulty: f64) -> Probability {
        let x = self.sharpness * (self.operating - subtlety - self.density_penalty * difficulty);
        Probability::from_logit(x)
    }

    /// Runs the CADT on a case.
    pub fn process<R: Rng + ?Sized>(&self, case: &Case, rng: &mut R) -> CadtOutput {
        let prompted_lesions = case
            .lesions
            .iter()
            .map(|lesion| {
                rng.gen::<f64>()
                    < self
                        .p_prompt_lesion(lesion.subtlety, case.difficulty)
                        .value()
            })
            .collect();
        // Spurious prompts: Poisson with rate scaled by threshold and
        // difficulty (confusing normal structures attract prompts).
        let rate = self.max_spurious_rate * self.operating * (0.25 + 0.75 * case.difficulty);
        let spurious_prompts = sample_poisson(rate, rng);
        CadtOutput {
            prompted_lesions,
            spurious_prompts,
        }
    }
}

/// Knuth Poisson sampler; fine for the small rates used here.
fn sample_poisson<R: Rng + ?Sized>(rate: f64, rng: &mut R) -> usize {
    if rate <= 0.0 {
        return 0;
    }
    let l = (-rate).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l || k > 64 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::{CaseKind, Lesion};
    use hmdiv_core::ClassId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn case_with(subtlety: f64, difficulty: f64, kind: CaseKind) -> Case {
        Case {
            id: 0,
            kind,
            class: ClassId::new("x"),
            difficulty,
            lesions: if kind == CaseKind::Cancer {
                vec![Lesion { subtlety }]
            } else {
                vec![]
            },
        }
    }

    #[test]
    fn config_validation() {
        assert!(Cadt::new(-0.1, 1.0, 0.1, 1.0).is_err());
        assert!(Cadt::new(0.5, 0.0, 0.1, 1.0).is_err());
        assert!(Cadt::new(0.5, 1.0, 1.5, 1.0).is_err());
        assert!(Cadt::new(0.5, 1.0, 0.1, -1.0).is_err());
        assert!(Cadt::default_detector().is_ok());
    }

    #[test]
    fn subtle_lesions_are_harder_for_the_machine() {
        let cadt = Cadt::default_detector().unwrap();
        let easy = cadt.p_prompt_lesion(0.1, 0.2);
        let hard = cadt.p_prompt_lesion(0.9, 0.2);
        assert!(
            easy.value() > hard.value() + 0.3,
            "{} vs {}",
            easy.value(),
            hard.value()
        );
    }

    #[test]
    fn difficulty_penalises_detection() {
        let cadt = Cadt::default_detector().unwrap();
        let clean = cadt.p_prompt_lesion(0.4, 0.1);
        let dense = cadt.p_prompt_lesion(0.4, 0.9);
        assert!(clean.value() > dense.value());
    }

    #[test]
    fn higher_operating_prompts_more() {
        let low = Cadt::default_detector()
            .unwrap()
            .with_operating(0.3)
            .unwrap();
        let high = Cadt::default_detector()
            .unwrap()
            .with_operating(0.9)
            .unwrap();
        assert!(high.p_prompt_lesion(0.5, 0.3).value() > low.p_prompt_lesion(0.5, 0.3).value());
        let mut rng = StdRng::seed_from_u64(1);
        let normal = case_with(0.0, 0.5, CaseKind::Normal);
        let n = 5000;
        let low_spurious: usize = (0..n)
            .map(|_| low.process(&normal, &mut rng).spurious_prompts)
            .sum();
        let high_spurious: usize = (0..n)
            .map(|_| high.process(&normal, &mut rng).spurious_prompts)
            .sum();
        assert!(high_spurious > low_spurious);
    }

    #[test]
    fn empirical_detection_rate_matches_probability() {
        let cadt = Cadt::default_detector().unwrap();
        let case = case_with(0.5, 0.4, CaseKind::Cancer);
        let p = cadt.p_prompt_lesion(0.5, 0.4).value();
        let mut rng = StdRng::seed_from_u64(23);
        let n = 50_000;
        let detected = (0..n)
            .filter(|_| cadt.process(&case, &mut rng).detected_cancer())
            .count();
        let rate = detected as f64 / n as f64;
        assert!((rate - p).abs() < 0.01, "{rate} vs {p}");
    }

    #[test]
    fn normal_case_never_true_prompts() {
        let cadt = Cadt::default_detector().unwrap();
        let case = case_with(0.0, 0.9, CaseKind::Normal);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let out = cadt.process(&case, &mut rng);
            assert_eq!(out.true_prompts(), 0);
            assert!(!out.detected_cancer());
        }
    }

    #[test]
    fn multi_lesion_case_easier_to_detect() {
        let cadt = Cadt::default_detector().unwrap();
        let one = case_with(0.7, 0.4, CaseKind::Cancer);
        let mut three = one.clone();
        three.lesions = vec![
            Lesion { subtlety: 0.7 },
            Lesion { subtlety: 0.7 },
            Lesion { subtlety: 0.7 },
        ];
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let d1 = (0..n)
            .filter(|_| cadt.process(&one, &mut rng).detected_cancer())
            .count();
        let d3 = (0..n)
            .filter(|_| cadt.process(&three, &mut rng).detected_cancer())
            .count();
        assert!(d3 > d1);
    }

    #[test]
    fn poisson_sampler_mean() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 50_000;
        let total: usize = (0..n).map(|_| sample_poisson(1.5, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1.5).abs() < 0.05, "{mean}");
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
    }
}
