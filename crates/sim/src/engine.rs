//! The Monte-Carlo simulation engine.
//!
//! Screens a stream of generated cases through a [`ReadingTeam`] across
//! worker threads, accumulating the stratified 2×2 outcome tables the
//! paper's estimation step consumes. Runs are deterministic for a given
//! seed and *independent of the thread count*: every case derives its own
//! RNG stream from `(seed, case id)`, so threading only changes which
//! worker handles which id.

use std::sync::Arc;

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use hmdiv_core::{ClassId, ClassParams, ClassUniverse, ModelError, ModelParams, SequentialModel};
use hmdiv_prob::counts::{JointCounts, StratifiedCounts};
use hmdiv_prob::par::{self, Merge};
use hmdiv_prob::Probability;

use crate::case::CaseKind;
use crate::population::PopulationSpec;
use crate::protocol::ReadingTeam;
use crate::SimError;

/// The simulated world: a population screened by a team.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct World {
    /// The case population.
    pub population: PopulationSpec,
    /// The screening team.
    pub team: ReadingTeam,
}

/// Run parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of cases to screen.
    pub cases: u64,
    /// Base RNG seed; the same seed gives identical results at any thread
    /// count.
    pub seed: u64,
    /// Number of worker threads.
    pub threads: usize,
}

/// A configured simulation, ready to run.
#[derive(Debug, Clone)]
pub struct Simulation {
    world: World,
    config: SimConfig,
}

impl Simulation {
    /// Creates a simulation.
    #[must_use]
    pub fn new(world: World, config: SimConfig) -> Self {
        Simulation { world, config }
    }

    /// Runs the simulation.
    ///
    /// # Errors
    ///
    /// * [`SimError::EmptyRun`] if `cases == 0` or `threads == 0`.
    /// * Team and population validation errors.
    pub fn run(&self) -> Result<SimulationReport, SimError> {
        if self.config.cases == 0 {
            return Err(SimError::EmptyRun {
                context: "case count",
            });
        }
        if self.config.threads == 0 {
            return Err(SimError::EmptyRun {
                context: "thread count",
            });
        }
        self.world.team.validate()?;
        self.world.population.validate()?;
        let world = &self.world;
        // Intern the population's class set once; workers then tally into
        // dense per-index arrays instead of re-hashing class names per case.
        let universe = Arc::new(self.world.population.universe());
        let span = hmdiv_obs::span("sim.engine.run");
        let tallies = par::run_tasks_scoped(
            "sim.engine",
            self.config.seed,
            self.config.cases,
            self.config.threads,
            || DenseTallies::empty(Arc::clone(&universe)),
            |id, rng, tallies| screen_case(world, id, rng, tallies),
        );
        let report = tallies.into_report();
        if let Some(elapsed_ns) = span.elapsed_ns() {
            record_run_metrics(&report, elapsed_ns);
        }
        drop(span);
        Ok(report)
    }
}

/// Publishes stratified outcome counters for a finished run under the
/// `sim.engine` scope. Only called while observability is enabled for
/// `sim.engine` — the report itself is never altered, so instrumented and
/// uninstrumented runs stay bit-identical.
fn record_run_metrics(report: &SimulationReport, elapsed_ns: u64) {
    hmdiv_obs::counter_add("sim.engine.cases", report.total_cases());
    if elapsed_ns > 0 {
        let per_sec = report.total_cases() as f64 / (elapsed_ns as f64 / 1e9);
        hmdiv_obs::gauge_set("sim.engine.cases_per_sec", per_sec);
    }
    for (side, counts) in [
        ("cancer", report.cancer_counts()),
        ("normal", report.normal_counts()),
    ] {
        for (class, table) in counts.iter() {
            let class = class.name();
            hmdiv_obs::counter_add(&format!("sim.engine.{side}.{class}.cases"), table.total());
            hmdiv_obs::counter_add(
                &format!("sim.engine.{side}.{class}.machine_failures"),
                table.machine_failures(),
            );
            hmdiv_obs::counter_add(
                &format!("sim.engine.{side}.{class}.system_failures"),
                table.human_failures(),
            );
        }
    }
    hmdiv_obs::counter_add(
        "sim.engine.unaided.cancer.cases",
        report.unaided_cancer_total,
    );
    hmdiv_obs::counter_add(
        "sim.engine.unaided.cancer.failures",
        report.unaided_cancer_failures,
    );
    hmdiv_obs::counter_add(
        "sim.engine.unaided.normal.cases",
        report.unaided_normal_total,
    );
    hmdiv_obs::counter_add(
        "sim.engine.unaided.normal.failures",
        report.unaided_normal_failures,
    );
}

/// Screens one case into the worker's dense tallies. The case's RNG comes
/// from the `(seed, case id)` stream ([`par::stream_rng`]), so results are
/// identical for any thread count — only the partition of ids across
/// workers changes.
fn screen_case(world: &World, id: u64, rng: &mut StdRng, tallies: &mut DenseTallies) {
    let case = world.population.sample_case(id, rng);
    let record = world.team.screen(&case, rng);
    match tallies.universe.index_of(record.class.name()) {
        Some(idx) => tallies.record(
            &case.kind,
            idx,
            record.machine_failed,
            record.system_failed,
            &record.reader_recalls,
        ),
        // Unreachable when the record's class comes from the population
        // spec (it always does today); kept as a graceful spill so a future
        // protocol that relabels classes cannot lose counts or panic.
        None => tallies.spill.record(
            &case.kind,
            record.class.clone(),
            record.machine_failed,
            record.system_failed,
            &record.reader_recalls,
        ),
    }
}

/// Per-worker tallies, dense over the population's interned
/// [`ClassUniverse`]: each slot of each array is one class's 2×2 table, so
/// the hot recording path is an index instead of a `BTreeMap` walk. Every
/// cell is an exact integer count, so folding worker tallies and then
/// materialising the keyed [`SimulationReport`] is bit-identical to
/// recording into the report directly.
struct DenseTallies {
    universe: Arc<ClassUniverse>,
    cancer: Vec<JointCounts>,
    normal: Vec<JointCounts>,
    per_reader_cancer: Vec<Vec<JointCounts>>,
    pair_given_ms: Vec<JointCounts>,
    pair_given_mf: Vec<JointCounts>,
    unaided_cancer_failures: u64,
    unaided_cancer_total: u64,
    unaided_normal_failures: u64,
    unaided_normal_total: u64,
    /// Classes outside the universe (defensive; empty in practice).
    spill: SimulationReport,
}

impl DenseTallies {
    fn empty(universe: Arc<ClassUniverse>) -> Self {
        let n = universe.len();
        DenseTallies {
            universe,
            cancer: vec![JointCounts::new(); n],
            normal: vec![JointCounts::new(); n],
            per_reader_cancer: Vec::new(),
            pair_given_ms: vec![JointCounts::new(); n],
            pair_given_mf: vec![JointCounts::new(); n],
            unaided_cancer_failures: 0,
            unaided_cancer_total: 0,
            unaided_normal_failures: 0,
            unaided_normal_total: 0,
            spill: SimulationReport::empty(),
        }
    }

    fn record(
        &mut self,
        kind: &CaseKind,
        idx: u32,
        machine_failed: Option<bool>,
        system_failed: bool,
        reader_recalls: &[bool],
    ) {
        let i = idx as usize;
        if *kind == CaseKind::Cancer {
            if let Some(mf) = machine_failed {
                if self.per_reader_cancer.len() < reader_recalls.len() {
                    let n = self.universe.len();
                    self.per_reader_cancer
                        .resize_with(reader_recalls.len(), || vec![JointCounts::new(); n]);
                }
                for (r, &recalled) in reader_recalls.iter().enumerate() {
                    self.per_reader_cancer[r][i].record(mf, !recalled);
                }
                if reader_recalls.len() >= 2 {
                    let table = if mf {
                        &mut self.pair_given_mf
                    } else {
                        &mut self.pair_given_ms
                    };
                    table[i].record(!reader_recalls[0], !reader_recalls[1]);
                }
            }
        }
        match (kind, machine_failed) {
            (CaseKind::Cancer, Some(mf)) => self.cancer[i].record(mf, system_failed),
            (CaseKind::Normal, Some(mf)) => self.normal[i].record(mf, system_failed),
            (CaseKind::Cancer, None) => {
                self.unaided_cancer_total += 1;
                self.unaided_cancer_failures += u64::from(system_failed);
            }
            (CaseKind::Normal, None) => {
                self.unaided_normal_total += 1;
                self.unaided_normal_failures += u64::from(system_failed);
            }
        }
    }

    /// Materialises the keyed report: non-empty slots become strata under
    /// their interned class, exactly as map-based recording would have
    /// produced them (strata exist only for observed classes).
    fn into_report(self) -> SimulationReport {
        let classes = self.universe.classes();
        let densify = |dense: &[JointCounts]| {
            let mut out: StratifiedCounts<ClassId> = StratifiedCounts::new();
            for (i, table) in dense.iter().enumerate() {
                if table.total() > 0 {
                    out.add_table(classes[i].clone(), *table);
                }
            }
            out
        };
        let mut report = SimulationReport {
            cancer: densify(&self.cancer),
            normal: densify(&self.normal),
            per_reader_cancer: self
                .per_reader_cancer
                .iter()
                .map(|dense| densify(dense))
                .collect(),
            pair_given_ms: densify(&self.pair_given_ms),
            pair_given_mf: densify(&self.pair_given_mf),
            unaided_cancer_failures: self.unaided_cancer_failures,
            unaided_cancer_total: self.unaided_cancer_total,
            unaided_normal_failures: self.unaided_normal_failures,
            unaided_normal_total: self.unaided_normal_total,
        };
        report.merge(self.spill);
        report
    }
}

impl Merge for DenseTallies {
    fn merge(&mut self, other: DenseTallies) {
        for (mine, theirs) in self.cancer.iter_mut().zip(&other.cancer) {
            mine.merge(theirs);
        }
        for (mine, theirs) in self.normal.iter_mut().zip(&other.normal) {
            mine.merge(theirs);
        }
        for (mine, theirs) in self.pair_given_ms.iter_mut().zip(&other.pair_given_ms) {
            mine.merge(theirs);
        }
        for (mine, theirs) in self.pair_given_mf.iter_mut().zip(&other.pair_given_mf) {
            mine.merge(theirs);
        }
        if self.per_reader_cancer.len() < other.per_reader_cancer.len() {
            let n = self.universe.len();
            self.per_reader_cancer
                .resize_with(other.per_reader_cancer.len(), || {
                    vec![JointCounts::new(); n]
                });
        }
        for (mine, theirs) in self
            .per_reader_cancer
            .iter_mut()
            .zip(&other.per_reader_cancer)
        {
            for (m, t) in mine.iter_mut().zip(theirs) {
                m.merge(t);
            }
        }
        self.unaided_cancer_failures += other.unaided_cancer_failures;
        self.unaided_cancer_total += other.unaided_cancer_total;
        self.unaided_normal_failures += other.unaided_normal_failures;
        self.unaided_normal_total += other.unaided_normal_total;
        self.spill.merge(other.spill);
    }
}

/// Aggregated outcome tables from a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    cancer: StratifiedCounts<ClassId>,
    normal: StratifiedCounts<ClassId>,
    /// Per-reader cancer-side tables: each reader's OWN recall decision
    /// against the machine event (only the team decision feeds `cancer`).
    per_reader_cancer: Vec<StratifiedCounts<ClassId>>,
    /// Joint (reader 1, reader 2) failure tables on cancer cases where the
    /// machine SUCCEEDED: dims are (r1 failed, r2 failed).
    pair_given_ms: StratifiedCounts<ClassId>,
    /// As above, on cancer cases where the machine FAILED.
    pair_given_mf: StratifiedCounts<ClassId>,
    /// Cases with no machine event (unaided protocol), per side.
    unaided_cancer_failures: u64,
    unaided_cancer_total: u64,
    unaided_normal_failures: u64,
    unaided_normal_total: u64,
}

impl SimulationReport {
    fn empty() -> Self {
        SimulationReport {
            cancer: StratifiedCounts::new(),
            normal: StratifiedCounts::new(),
            per_reader_cancer: Vec::new(),
            pair_given_ms: StratifiedCounts::new(),
            pair_given_mf: StratifiedCounts::new(),
            unaided_cancer_failures: 0,
            unaided_cancer_total: 0,
            unaided_normal_failures: 0,
            unaided_normal_total: 0,
        }
    }

    fn record(
        &mut self,
        kind: &CaseKind,
        class: ClassId,
        machine_failed: Option<bool>,
        system_failed: bool,
        reader_recalls: &[bool],
    ) {
        if *kind == CaseKind::Cancer {
            if let Some(mf) = machine_failed {
                if self.per_reader_cancer.len() < reader_recalls.len() {
                    self.per_reader_cancer
                        .resize_with(reader_recalls.len(), StratifiedCounts::new);
                }
                for (i, &recalled) in reader_recalls.iter().enumerate() {
                    self.per_reader_cancer[i].record(class.clone(), mf, !recalled);
                }
                if reader_recalls.len() >= 2 {
                    let table = if mf {
                        &mut self.pair_given_mf
                    } else {
                        &mut self.pair_given_ms
                    };
                    table.record(class.clone(), !reader_recalls[0], !reader_recalls[1]);
                }
            }
        }
        match (kind, machine_failed) {
            (CaseKind::Cancer, Some(mf)) => self.cancer.record(class, mf, system_failed),
            (CaseKind::Normal, Some(mf)) => self.normal.record(class, mf, system_failed),
            (CaseKind::Cancer, None) => {
                self.unaided_cancer_total += 1;
                self.unaided_cancer_failures += u64::from(system_failed);
            }
            (CaseKind::Normal, None) => {
                self.unaided_normal_total += 1;
                self.unaided_normal_failures += u64::from(system_failed);
            }
        }
    }

    /// The stratified cancer-side (false-negative) tables.
    #[must_use]
    pub fn cancer_counts(&self) -> &StratifiedCounts<ClassId> {
        &self.cancer
    }

    /// Per-reader cancer-side tables: entry `i` records reader `i`'s own
    /// recall decisions against the machine event, regardless of the team's
    /// combined decision. Empty for unaided protocols.
    #[must_use]
    pub fn per_reader_cancer_counts(&self) -> &[StratifiedCounts<ClassId>] {
        &self.per_reader_cancer
    }

    /// The joint (reader 1, reader 2) failure tables on cancer cases,
    /// conditional on the machine outcome. In each [`JointCounts`] the
    /// "machine" dimension holds reader 1's failure and the "human"
    /// dimension reader 2's. Empty unless the team has at least two
    /// readers.
    ///
    /// [`JointCounts`]: hmdiv_prob::counts::JointCounts
    #[must_use]
    pub fn reader_pair_counts(&self, machine_failed: bool) -> &StratifiedCounts<ClassId> {
        if machine_failed {
            &self.pair_given_mf
        } else {
            &self.pair_given_ms
        }
    }

    /// The empirical within-stratum correlation (phi coefficient) of the
    /// two readers' failures for a class and machine outcome — the
    /// *residual* dependence that survives the class refinement. `None`
    /// when inestimable.
    #[must_use]
    pub fn reader_pair_phi(&self, class: &ClassId, machine_failed: bool) -> Option<f64> {
        self.reader_pair_counts(machine_failed)
            .stratum(class)
            .and_then(hmdiv_prob::counts::JointCounts::phi_coefficient)
    }

    /// Point-estimates each reader's personal sequential-model table from
    /// the per-reader records (the raw material for a
    /// [`hmdiv_core::cohort::ReaderCohort`]).
    ///
    /// Classes where a reader's conditionals are inestimable are skipped;
    /// a reader with nothing estimable yields an error entry.
    ///
    /// # Errors
    ///
    /// [`ModelError::Empty`] if no reader has any estimable class.
    pub fn estimated_reader_models(&self) -> Result<Vec<SequentialModel>, ModelError> {
        let mut out = Vec::with_capacity(self.per_reader_cancer.len());
        for counts in &self.per_reader_cancer {
            let mut builder = ModelParams::builder();
            let mut any = false;
            for (class, table) in counts.iter() {
                let (Ok(p_mf), Ok(hf_ms), Ok(hf_mf)) = (
                    table.p_machine_fails(),
                    table.p_human_fails_given_machine_succeeds(),
                    table.p_human_fails_given_machine_fails(),
                ) else {
                    continue;
                };
                builder = builder.class(
                    class.clone(),
                    ClassParams::new(p_mf.point(), hf_ms.point(), hf_mf.point()),
                );
                any = true;
            }
            if !any {
                return Err(ModelError::Empty {
                    context: "per-reader estimable class set",
                });
            }
            out.push(SequentialModel::new(builder.build()?));
        }
        if out.is_empty() {
            return Err(ModelError::Empty {
                context: "per-reader record set",
            });
        }
        Ok(out)
    }

    /// The stratified normal-side (false-positive) tables.
    #[must_use]
    pub fn normal_counts(&self) -> &StratifiedCounts<ClassId> {
        &self.normal
    }

    /// Total cancer cases screened.
    #[must_use]
    pub fn cancer_cases(&self) -> u64 {
        self.cancer.pooled().total() + self.unaided_cancer_total
    }

    /// Total normal cases screened.
    #[must_use]
    pub fn normal_cases(&self) -> u64 {
        self.normal.pooled().total() + self.unaided_normal_total
    }

    /// Total cases screened.
    #[must_use]
    pub fn total_cases(&self) -> u64 {
        self.cancer_cases() + self.normal_cases()
    }

    /// Empirical false-negative rate (cancer side), or `None` with no cancer
    /// cases.
    #[must_use]
    pub fn fn_rate(&self) -> Option<Probability> {
        let total = self.cancer_cases();
        if total == 0 {
            return None;
        }
        let failures = self.cancer.pooled().human_failures() + self.unaided_cancer_failures;
        Some(Probability::clamped(failures as f64 / total as f64))
    }

    /// Empirical false-positive rate (normal side), or `None` with no
    /// normal cases.
    #[must_use]
    pub fn fp_rate(&self) -> Option<Probability> {
        let total = self.normal_cases();
        if total == 0 {
            return None;
        }
        let failures = self.normal.pooled().human_failures() + self.unaided_normal_failures;
        Some(Probability::clamped(failures as f64 / total as f64))
    }

    /// Point-estimates the sequential-model parameter table from the
    /// cancer-side tables, for classes where all three conditionals are
    /// estimable.
    ///
    /// # Errors
    ///
    /// [`ModelError::Empty`] if no class has estimable parameters.
    pub fn estimated_model(&self) -> Result<SequentialModel, ModelError> {
        let mut builder = ModelParams::builder();
        let mut any = false;
        for (class, table) in self.cancer.iter() {
            let (Ok(p_mf), Ok(hf_ms), Ok(hf_mf)) = (
                table.p_machine_fails(),
                table.p_human_fails_given_machine_succeeds(),
                table.p_human_fails_given_machine_fails(),
            ) else {
                continue;
            };
            builder = builder.class(
                class.clone(),
                ClassParams::new(p_mf.point(), hf_ms.point(), hf_mf.point()),
            );
            any = true;
        }
        if !any {
            return Err(ModelError::Empty {
                context: "estimable class set",
            });
        }
        Ok(SequentialModel::new(builder.build()?))
    }
}

/// Partial reports from worker blocks fold in task order; every tally is an
/// exact integer count, so the fold is associative and the merged report is
/// identical at any thread count (the [`Merge`] contract).
impl Merge for SimulationReport {
    fn merge(&mut self, other: SimulationReport) {
        if self.per_reader_cancer.len() < other.per_reader_cancer.len() {
            self.per_reader_cancer
                .resize_with(other.per_reader_cancer.len(), StratifiedCounts::new);
        }
        for (mine, theirs) in self
            .per_reader_cancer
            .iter_mut()
            .zip(other.per_reader_cancer)
        {
            mine.merge(theirs);
        }
        self.pair_given_ms.merge(other.pair_given_ms);
        self.pair_given_mf.merge(other.pair_given_mf);
        self.cancer.merge(other.cancer);
        self.normal.merge(other.normal);
        self.unaided_cancer_failures += other.unaided_cancer_failures;
        self.unaided_cancer_total += other.unaided_cancer_total;
        self.unaided_normal_failures += other.unaided_normal_failures;
        self.unaided_normal_total += other.unaided_normal_total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    fn small_run(cases: u64, seed: u64, threads: usize) -> SimulationReport {
        let world = scenario::default_world().unwrap();
        Simulation::new(
            world,
            SimConfig {
                cases,
                seed,
                threads,
            },
        )
        .run()
        .unwrap()
    }

    #[test]
    fn rejects_empty_runs() {
        let world = scenario::default_world().unwrap();
        assert!(Simulation::new(
            world.clone(),
            SimConfig {
                cases: 0,
                seed: 1,
                threads: 1
            }
        )
        .run()
        .is_err());
        assert!(Simulation::new(
            world,
            SimConfig {
                cases: 10,
                seed: 1,
                threads: 0
            }
        )
        .run()
        .is_err());
    }

    #[test]
    fn case_count_conserved() {
        let report = small_run(5000, 11, 3);
        assert_eq!(report.total_cases(), 5000);
    }

    #[test]
    fn deterministic_for_fixed_seed_any_thread_count() {
        let a = small_run(3000, 42, 2);
        let b = small_run(3000, 42, 2);
        assert_eq!(a, b);
        let c = small_run(3000, 43, 2);
        assert_ne!(a, c, "different seed should differ");
        // Per-case RNG streams make the result independent of threading.
        let serial = small_run(3000, 42, 1);
        let wide = small_run(3000, 42, 7);
        assert_eq!(a, serial);
        assert_eq!(a, wide);
    }

    #[test]
    fn report_identical_across_thread_counts_including_overclamp() {
        // Thread counts above the case count clamp without changing output;
        // the host's actual parallelism is included to exercise a realistic
        // worker split alongside the fixed counts.
        let host = std::thread::available_parallelism().map_or(2, std::num::NonZero::get);
        let reference = small_run(101, 7, 1);
        for threads in [3usize, 7, host, 500] {
            assert_eq!(small_run(101, 7, threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn enriched_world_has_many_cancers() {
        let world = scenario::trial_world().unwrap();
        let report = Simulation::new(
            world,
            SimConfig {
                cases: 4000,
                seed: 5,
                threads: 2,
            },
        )
        .run()
        .unwrap();
        let frac = report.cancer_cases() as f64 / report.total_cases() as f64;
        assert!(frac > 0.3, "{frac}");
        assert!(report.fn_rate().is_some());
        assert!(report.fp_rate().is_some());
    }

    #[test]
    fn estimated_model_recovers_conditionals() {
        let world = scenario::trial_world().unwrap();
        let report = Simulation::new(
            world,
            SimConfig {
                cases: 60_000,
                seed: 9,
                threads: 4,
            },
        )
        .run()
        .unwrap();
        let model = report.estimated_model().unwrap();
        // The difficult class must show a larger coherence index than the
        // easy class: machine failures hurt more exactly where the reader is
        // weakest — the diversity structure built into the simulator.
        let easy_t = model
            .params()
            .class_by_name("easy")
            .unwrap()
            .coherence_index();
        let hard_t = model
            .params()
            .class_by_name("difficult")
            .unwrap()
            .coherence_index();
        assert!(hard_t > easy_t, "{hard_t} vs {easy_t}");
        // Machine fails more on difficult cases.
        let easy_mf = model.params().class_by_name("easy").unwrap().p_mf();
        let hard_mf = model.params().class_by_name("difficult").unwrap().p_mf();
        assert!(hard_mf > easy_mf);
    }

    #[test]
    fn per_reader_tables_recover_individual_behaviour() {
        // In a double-reading world with one expert and one novice, the
        // per-reader tables must separate them: the novice's personal FN
        // conditionals exceed the expert's, even though only the combined
        // decision reaches the team tables.
        use crate::protocol::{DecisionRule, ReadingTeam};
        use crate::reader::Reader;
        let mut world = scenario::trial_world().unwrap();
        world.team = ReadingTeam {
            cadt: world.team.cadt,
            readers: vec![Reader::expert(), Reader::novice()],
            rule: DecisionRule::EitherRecalls,
            procedure: crate::protocol::Procedure::Concurrent,
        };
        let report = Simulation::new(
            world,
            SimConfig {
                cases: 80_000,
                seed: 44,
                threads: 4,
            },
        )
        .run()
        .unwrap();
        assert_eq!(report.per_reader_cancer_counts().len(), 2);
        let models = report.estimated_reader_models().unwrap();
        assert_eq!(models.len(), 2);
        let hf_ms = |m: &SequentialModel, class: &str| {
            m.params()
                .class_by_name(class)
                .unwrap()
                .p_hf_given_ms()
                .value()
        };
        assert!(
            hf_ms(&models[1], "easy") > hf_ms(&models[0], "easy"),
            "novice {} vs expert {}",
            hf_ms(&models[1], "easy"),
            hf_ms(&models[0], "easy")
        );
        // The team's combined failure is below either individual's.
        let team_fn = report.fn_rate().unwrap().value();
        for m in &models {
            let own = report
                .cancer_counts()
                .iter()
                .map(|(c, t)| t.total() as f64 * m.class_failure(c).unwrap().value())
                .sum::<f64>()
                / report.cancer_counts().pooled().total() as f64;
            assert!(team_fn < own, "{team_fn} vs {own}");
        }
    }

    #[test]
    fn per_reader_empty_for_unaided() {
        let world = scenario::unaided_world().unwrap();
        let report = Simulation::new(
            world,
            SimConfig {
                cases: 2000,
                seed: 45,
                threads: 2,
            },
        )
        .run()
        .unwrap();
        assert!(report.per_reader_cancer_counts().is_empty());
        assert!(report.estimated_reader_models().is_err());
    }

    #[test]
    fn unaided_world_counts_flow_to_unaided_tallies() {
        let world = scenario::unaided_world().unwrap();
        let report = Simulation::new(
            world,
            SimConfig {
                cases: 2000,
                seed: 3,
                threads: 2,
            },
        )
        .run()
        .unwrap();
        assert_eq!(report.cancer_counts().pooled().total(), 0);
        assert_eq!(report.total_cases(), 2000);
        assert!(report.fn_rate().is_some() || report.cancer_cases() == 0);
        assert!(report.estimated_model().is_err());
    }
}
