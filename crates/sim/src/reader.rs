//! The behavioural reader model.
//!
//! The reader performs the paper's two (not physically separable) subtasks:
//! *detecting* features worth examining and *classifying* the case into
//! recall / no recall. The model exposes the behavioural knobs the paper's
//! discussion turns on:
//!
//! * **perception / lapses** — detection is logistic in lesion subtlety and
//!   film difficulty; attentional lapses transiently degrade it (the CADT's
//!   design goal is "compensating e.g. for lapses of attention");
//! * **prompt following** — a prompted feature is *examined* with
//!   probability `prompt_trust`, and examination adds `prompt_benefit` of
//!   detection the reader would otherwise have missed;
//! * **automation bias** — when prompts are present, unprompted features
//!   get only `1 − unprompted_neglect` of normal attention ("cause the user
//!   to ignore those parts of a mammogram that the CADT has not prompted" —
//!   the misuse the tool's designers warn against, which the model can turn
//!   on to study the sequential-operation regime);
//! * **classification** — a found cancer is still misclassified with a
//!   probability increasing in film difficulty;
//! * **false positives** — spurious prompts and confusing films can
//!   persuade the reader to recall a healthy patient.

use rand::Rng;
use serde::{Deserialize, Serialize};

use hmdiv_prob::Probability;

use crate::cadt::CadtOutput;
use crate::case::Case;
use crate::SimError;

/// The reader's final decision on a case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReaderDecision {
    /// Whether the reader recalls the patient.
    pub recall: bool,
    /// Whether the reader personally noticed at least one true lesion
    /// (diagnostic for analyses; not observable in a real trial).
    pub noticed_lesion: bool,
}

/// Behavioural parameters of one reader.
///
/// All probabilities in `[0, 1]`; sharpness values strictly positive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reader {
    /// Perceptual skill in `[0, 1]`: the subtlety level at which unaided
    /// detection is 50% on an average film.
    pub perception: f64,
    /// Logistic sharpness of the detection response.
    pub sharpness: f64,
    /// How much overall film difficulty degrades detection, in `[0, 1]`.
    pub density_penalty: f64,
    /// Probability of an attentional lapse on a case.
    pub lapse_rate: f64,
    /// Perception lost during a lapse, in `[0, 1]`.
    pub lapse_penalty: f64,
    /// Probability of properly examining a prompted feature.
    pub prompt_trust: f64,
    /// Extra detection probability for an examined prompted feature:
    /// `p' = 1 − (1 − p)(1 − prompt_benefit)`.
    pub prompt_benefit: f64,
    /// Attention lost on unprompted features when prompts exist (automation
    /// bias), in `[0, 1]`.
    pub unprompted_neglect: f64,
    /// Interpretation skill in `[0, 1]`: difficulty level at which a *found*
    /// cancer is misclassified 50% of the time.
    pub interpretation: f64,
    /// Logistic sharpness of the classification response.
    pub interpret_sharpness: f64,
    /// Probability that one examined spurious prompt persuades recall on a
    /// healthy film.
    pub spurious_persuasion: f64,
    /// Intrinsic false-positive tendency on a maximally confusing healthy
    /// film (scales with difficulty).
    pub intrinsic_fp: f64,
}

impl Reader {
    /// Validates all parameters.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] naming the first out-of-range field.
    pub fn validate(&self) -> Result<(), SimError> {
        let unit_fields = [
            (self.perception, "reader perception"),
            (self.density_penalty, "reader density penalty"),
            (self.lapse_rate, "reader lapse rate"),
            (self.lapse_penalty, "reader lapse penalty"),
            (self.prompt_trust, "reader prompt trust"),
            (self.prompt_benefit, "reader prompt benefit"),
            (self.unprompted_neglect, "reader unprompted neglect"),
            (self.interpretation, "reader interpretation"),
            (self.spurious_persuasion, "reader spurious persuasion"),
            (self.intrinsic_fp, "reader intrinsic false-positive rate"),
        ];
        for (value, context) in unit_fields {
            if value.is_nan() || !(0.0..=1.0).contains(&value) {
                return Err(SimError::InvalidConfig { value, context });
            }
        }
        for (value, context) in [
            (self.sharpness, "reader sharpness"),
            (self.interpret_sharpness, "reader interpretation sharpness"),
        ] {
            if value.is_nan() || value <= 0.0 || value.is_infinite() {
                return Err(SimError::InvalidConfig { value, context });
            }
        }
        Ok(())
    }

    /// An experienced film reader.
    #[must_use]
    pub fn expert() -> Self {
        Reader {
            perception: 0.72,
            sharpness: 5.0,
            density_penalty: 0.3,
            lapse_rate: 0.05,
            lapse_penalty: 0.4,
            prompt_trust: 0.9,
            prompt_benefit: 0.75,
            unprompted_neglect: 0.1,
            interpretation: 0.85,
            interpret_sharpness: 4.0,
            spurious_persuasion: 0.04,
            intrinsic_fp: 0.12,
        }
    }

    /// A less qualified reader (the §7 configuration): weaker perception and
    /// interpretation, more lapses, more reliance on the prompts.
    #[must_use]
    pub fn novice() -> Self {
        Reader {
            perception: 0.55,
            sharpness: 4.0,
            density_penalty: 0.4,
            lapse_rate: 0.12,
            lapse_penalty: 0.5,
            prompt_trust: 0.95,
            prompt_benefit: 0.7,
            unprompted_neglect: 0.25,
            interpretation: 0.7,
            interpret_sharpness: 3.0,
            spurious_persuasion: 0.10,
            intrinsic_fp: 0.2,
        }
    }

    /// A copy with a different automation-bias level.
    #[must_use]
    pub fn with_unprompted_neglect(&self, unprompted_neglect: f64) -> Self {
        Reader {
            unprompted_neglect,
            ..*self
        }
    }

    /// A copy with a different lapse rate.
    #[must_use]
    pub fn with_lapse_rate(&self, lapse_rate: f64) -> Self {
        Reader {
            lapse_rate,
            ..*self
        }
    }

    /// A copy with a different prompt trust.
    #[must_use]
    pub fn with_prompt_trust(&self, prompt_trust: f64) -> Self {
        Reader {
            prompt_trust,
            ..*self
        }
    }

    /// Unaided detection probability for one lesion, before lapses and
    /// prompt effects.
    #[must_use]
    pub fn p_notice_lesion(&self, subtlety: f64, difficulty: f64) -> Probability {
        let x = self.sharpness * (self.perception - subtlety - self.density_penalty * difficulty);
        Probability::from_logit(x)
    }

    /// Misclassification probability for a *found* cancer on a film of the
    /// given difficulty.
    #[must_use]
    pub fn p_misclassify(&self, difficulty: f64) -> Probability {
        let x = self.interpret_sharpness * (difficulty - self.interpretation);
        Probability::from_logit(x)
    }

    /// Reviews the CADT's prompts *after* an unaided pass that decided "no
    /// recall" (the §3 procedure-1 second phase). Returns `true` if the
    /// review upgrades the decision to recall.
    ///
    /// Each prompted feature is examined with probability `prompt_trust`;
    /// examination detects the feature with the prompt-boosted probability,
    /// and a detection leads to recall unless misclassified. Examined
    /// spurious prompts can persuade recall with `spurious_persuasion`.
    /// Unprompted features are not revisited, so the unaided pass's misses
    /// stand — exactly the 1-out-of-2 detection structure of Fig. 2.
    pub fn review_prompts<R: Rng + ?Sized>(
        &self,
        case: &Case,
        output: &CadtOutput,
        rng: &mut R,
    ) -> bool {
        let mut found = false;
        for (i, lesion) in case.lesions.iter().enumerate() {
            if !output.prompted_lesions.get(i).copied().unwrap_or(false) {
                continue;
            }
            if rng.gen::<f64>() >= self.prompt_trust {
                continue; // prompt ignored
            }
            let base = self
                .p_notice_lesion(lesion.subtlety, case.difficulty)
                .value();
            let p = 1.0 - (1.0 - base) * (1.0 - self.prompt_benefit);
            if rng.gen::<f64>() < p {
                found = true;
            }
        }
        if found {
            return rng.gen::<f64>() >= self.p_misclassify(case.difficulty).value();
        }
        let mut p_fp = 0.0;
        for _ in 0..output.spurious_prompts {
            if rng.gen::<f64>() < self.prompt_trust {
                p_fp = 1.0 - (1.0 - p_fp) * (1.0 - self.spurious_persuasion);
            }
        }
        rng.gen::<f64>() < p_fp
    }

    /// Reads a case, optionally with CADT output (None = unaided reading).
    pub fn read<R: Rng + ?Sized>(
        &self,
        case: &Case,
        cadt: Option<&CadtOutput>,
        rng: &mut R,
    ) -> ReaderDecision {
        let lapsed = rng.gen::<f64>() < self.lapse_rate;
        let perception_scale = if lapsed {
            1.0 - self.lapse_penalty
        } else {
            1.0
        };
        let prompts_present = cadt.map(CadtOutput::any_prompt).unwrap_or(false);

        // Detection stage over true lesions.
        let mut noticed_lesion = false;
        for (i, lesion) in case.lesions.iter().enumerate() {
            let prompted = cadt
                .map(|out| out.prompted_lesions.get(i).copied().unwrap_or(false))
                .unwrap_or(false);
            let base = self
                .p_notice_lesion(lesion.subtlety, case.difficulty)
                .value()
                * perception_scale;
            let p = if prompted {
                if rng.gen::<f64>() < self.prompt_trust {
                    // Examined: the prompt recovers most of what the eye missed.
                    1.0 - (1.0 - base) * (1.0 - self.prompt_benefit)
                } else {
                    base
                }
            } else if prompts_present {
                // Automation bias: attention drawn away from unprompted areas.
                base * (1.0 - self.unprompted_neglect)
            } else {
                base
            };
            if rng.gen::<f64>() < p {
                noticed_lesion = true;
            }
        }

        // Classification stage.
        let recall = if noticed_lesion {
            rng.gen::<f64>() >= self.p_misclassify(case.difficulty).value()
        } else {
            // Nothing found: possible false-positive recall driven by
            // spurious prompts and film confusion.
            let spurious = cadt.map(|o| o.spurious_prompts).unwrap_or(0);
            let mut p_fp = self.intrinsic_fp * case.difficulty;
            for _ in 0..spurious {
                if rng.gen::<f64>() < self.prompt_trust {
                    p_fp = 1.0 - (1.0 - p_fp) * (1.0 - self.spurious_persuasion);
                }
            }
            rng.gen::<f64>() < p_fp
        };
        ReaderDecision {
            recall,
            noticed_lesion,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::{CaseKind, Lesion};
    use hmdiv_core::ClassId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cancer(subtlety: f64, difficulty: f64) -> Case {
        Case {
            id: 0,
            kind: CaseKind::Cancer,
            class: ClassId::new("x"),
            difficulty,
            lesions: vec![Lesion { subtlety }],
        }
    }

    fn normal(difficulty: f64) -> Case {
        Case {
            id: 0,
            kind: CaseKind::Normal,
            class: ClassId::new("x"),
            difficulty,
            lesions: vec![],
        }
    }

    fn recall_rate(reader: &Reader, case: &Case, cadt: Option<&CadtOutput>, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 20_000;
        (0..n)
            .filter(|_| reader.read(case, cadt, &mut rng).recall)
            .count() as f64
            / n as f64
    }

    #[test]
    fn presets_validate() {
        Reader::expert().validate().unwrap();
        Reader::novice().validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut r = Reader::expert();
        r.lapse_rate = 1.5;
        assert!(r.validate().is_err());
        let mut r = Reader::expert();
        r.sharpness = 0.0;
        assert!(r.validate().is_err());
        let mut r = Reader::expert();
        r.perception = f64::NAN;
        assert!(r.validate().is_err());
    }

    #[test]
    fn expert_beats_novice_unaided() {
        let case = cancer(0.6, 0.5);
        let expert = recall_rate(&Reader::expert(), &case, None, 1);
        let novice = recall_rate(&Reader::novice(), &case, None, 1);
        assert!(expert > novice + 0.05, "{expert} vs {novice}");
    }

    #[test]
    fn subtle_cancers_are_missed_more() {
        let r = Reader::expert();
        let obvious = recall_rate(&r, &cancer(0.2, 0.3), None, 2);
        let subtle = recall_rate(&r, &cancer(0.9, 0.3), None, 2);
        assert!(obvious > subtle + 0.2, "{obvious} vs {subtle}");
    }

    #[test]
    fn helpful_prompt_raises_detection() {
        let r = Reader::expert();
        let case = cancer(0.85, 0.5); // hard for the unaided eye
        let prompted = CadtOutput {
            prompted_lesions: vec![true],
            spurious_prompts: 0,
        };
        let unaided = recall_rate(&r, &case, None, 3);
        let aided = recall_rate(&r, &case, Some(&prompted), 3);
        assert!(aided > unaided + 0.1, "{aided} vs {unaided}");
    }

    #[test]
    fn machine_miss_plus_automation_bias_hurts() {
        // The CADT missed the lesion but put spurious prompts elsewhere: a
        // biased reader now does *worse* than unaided — the mechanism behind
        // PHf|Mf > unaided failure probability.
        let r = Reader::expert().with_unprompted_neglect(0.6);
        let case = cancer(0.6, 0.5);
        let missed = CadtOutput {
            prompted_lesions: vec![false],
            spurious_prompts: 2,
        };
        let unaided = recall_rate(&r, &case, None, 4);
        let misled = recall_rate(&r, &case, Some(&missed), 4);
        assert!(misled < unaided - 0.05, "{misled} vs {unaided}");
    }

    #[test]
    fn zero_neglect_reader_immune_to_missing_prompts() {
        let r = Reader::expert()
            .with_unprompted_neglect(0.0)
            .with_lapse_rate(0.0);
        let case = cancer(0.6, 0.5);
        let missed = CadtOutput {
            prompted_lesions: vec![false],
            spurious_prompts: 0,
        };
        let unaided = recall_rate(&r, &case, None, 5);
        let with_miss = recall_rate(&r, &case, Some(&missed), 5);
        assert!(
            (unaided - with_miss).abs() < 0.02,
            "{unaided} vs {with_miss}"
        );
    }

    #[test]
    fn spurious_prompts_raise_false_positives() {
        let r = Reader::novice();
        let case = normal(0.7);
        let clean = CadtOutput {
            prompted_lesions: vec![],
            spurious_prompts: 0,
        };
        let noisy = CadtOutput {
            prompted_lesions: vec![],
            spurious_prompts: 3,
        };
        let fp_clean = recall_rate(&r, &case, Some(&clean), 6);
        let fp_noisy = recall_rate(&r, &case, Some(&noisy), 6);
        assert!(fp_noisy > fp_clean, "{fp_noisy} vs {fp_clean}");
    }

    #[test]
    fn lapses_hurt_detection() {
        let alert = Reader::expert().with_lapse_rate(0.0);
        let drowsy = Reader::expert().with_lapse_rate(0.8);
        let case = cancer(0.65, 0.4);
        let a = recall_rate(&alert, &case, None, 7);
        let d = recall_rate(&drowsy, &case, None, 7);
        assert!(a > d, "{a} vs {d}");
    }

    #[test]
    fn difficult_films_cause_misclassification() {
        let r = Reader::expert();
        assert!(r.p_misclassify(0.95).value() > r.p_misclassify(0.2).value());
        // Even a detected cancer on a horrid film can be misclassified.
        let case = cancer(0.1, 0.99); // obvious lesion, awful film
        let rate = recall_rate(&r, &case, None, 8);
        assert!(rate < 0.9, "{rate}");
    }

    #[test]
    fn prompt_trust_zero_means_prompts_ignored() {
        let r = Reader::expert()
            .with_prompt_trust(0.0)
            .with_unprompted_neglect(0.0);
        let case = cancer(0.85, 0.5);
        let prompted = CadtOutput {
            prompted_lesions: vec![true],
            spurious_prompts: 0,
        };
        let unaided = recall_rate(&r, &case, None, 9);
        let aided = recall_rate(&r, &case, Some(&prompted), 9);
        assert!((unaided - aided).abs() < 0.02, "{unaided} vs {aided}");
    }
}
