//! Calibration: tuning simulator knobs to hit target probabilities.
//!
//! The behavioural simulator's conditional probabilities are *emergent*, so
//! matching a prescribed parameter table (e.g. the paper's table 1) requires
//! searching the knob space. This module provides the two searches the
//! experiments need:
//!
//! * [`calibrate_operating`] — find the CADT operating threshold whose
//!   emergent machine failure probability on a chosen class hits a target
//!   (monotone in the threshold, so bisection converges).
//! * [`estimate_machine_failure`] — the measurement primitive: the CADT's
//!   marginal false-negative rate on one class, by simulation.

use rand::rngs::StdRng;
use rand::SeedableRng;

use hmdiv_prob::Probability;

use crate::cadt::Cadt;
use crate::population::PopulationSpec;
use crate::SimError;

/// Estimates the CADT's false-negative probability on cancer cases of one
/// class, by direct simulation of `samples` cases.
///
/// # Errors
///
/// * [`SimError::EmptyRun`] if `samples == 0`.
/// * [`SimError::InvalidConfig`] if the class does not occur in the
///   population's cancer mix (no case of it can ever be sampled).
pub fn estimate_machine_failure(
    cadt: &Cadt,
    population: &PopulationSpec,
    class: &str,
    samples: u64,
    seed: u64,
) -> Result<Probability, SimError> {
    if samples == 0 {
        return Err(SimError::EmptyRun {
            context: "calibration sample count",
        });
    }
    if !population
        .cancer_mix()
        .categories()
        .iter()
        .any(|s| s.class.name() == class)
    {
        return Err(SimError::InvalidConfig {
            value: f64::NAN,
            context: "calibration class (not in the cancer mix)",
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut misses = 0u64;
    let mut seen = 0u64;
    let mut id = 0u64;
    // Rejection-sample cases of the requested class.
    while seen < samples {
        let case = population.sample_cancer_case(id, &mut rng);
        id += 1;
        if case.class.name() != class {
            continue;
        }
        seen += 1;
        if !cadt.process(&case, &mut rng).detected_cancer() {
            misses += 1;
        }
    }
    Probability::from_ratio(misses, samples).map_err(SimError::from)
}

/// Result of an operating-threshold calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// The calibrated CADT.
    pub cadt: Cadt,
    /// The achieved machine failure probability at the returned threshold.
    pub achieved: Probability,
    /// Number of bisection iterations used.
    pub iterations: u32,
}

/// Finds the operating threshold at which the CADT's false-negative
/// probability on `class` is within `tolerance` of `target`, by bisection
/// (the miss rate decreases monotonically in the threshold).
///
/// Returns the boundary threshold if the target is unreachable (e.g. a
/// target below the floor set by the detector's sharpness), with
/// `achieved` reporting the actual value — callers should check it.
///
/// # Errors
///
/// * [`SimError::InvalidConfig`] for a non-positive tolerance.
/// * Errors from [`estimate_machine_failure`].
pub fn calibrate_operating(
    cadt: &Cadt,
    population: &PopulationSpec,
    class: &str,
    target: Probability,
    tolerance: f64,
    samples_per_probe: u64,
    seed: u64,
) -> Result<Calibration, SimError> {
    if tolerance.is_nan() || tolerance <= 0.0 {
        return Err(SimError::InvalidConfig {
            value: tolerance,
            context: "calibration tolerance",
        });
    }
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    let mut best = cadt.with_operating(0.5)?;
    let mut achieved = estimate_machine_failure(&best, population, class, samples_per_probe, seed)?;
    let mut iterations = 0u32;
    // Check the endpoints first: the target may be unreachable.
    let at_hi = estimate_machine_failure(
        &cadt.with_operating(1.0)?,
        population,
        class,
        samples_per_probe,
        seed ^ 0xA5A5,
    )?;
    if at_hi > target {
        return Ok(Calibration {
            cadt: cadt.with_operating(1.0)?,
            achieved: at_hi,
            iterations: 1,
        });
    }
    let at_lo = estimate_machine_failure(
        &cadt.with_operating(0.0)?,
        population,
        class,
        samples_per_probe,
        seed ^ 0x5A5A,
    )?;
    if at_lo < target {
        return Ok(Calibration {
            cadt: cadt.with_operating(0.0)?,
            achieved: at_lo,
            iterations: 1,
        });
    }
    for i in 0..32 {
        iterations = i + 1;
        if achieved.value() > target.value() + tolerance {
            // Missing too much: prompt more.
            lo = best.operating;
        } else if achieved.value() < target.value() - tolerance {
            hi = best.operating;
        } else {
            break;
        }
        let mid = (lo + hi) / 2.0;
        best = cadt.with_operating(mid)?;
        achieved = estimate_machine_failure(
            &best,
            population,
            class,
            samples_per_probe,
            seed.wrapping_add(u64::from(i)),
        )?;
    }
    Ok(Calibration {
        cadt: best,
        achieved,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    #[test]
    fn estimate_is_monotone_in_operating() {
        let population = scenario::field_population().unwrap();
        let base = Cadt::default_detector().unwrap();
        let low = estimate_machine_failure(
            &base.with_operating(0.3).unwrap(),
            &population,
            "difficult",
            4_000,
            1,
        )
        .unwrap();
        let high = estimate_machine_failure(
            &base.with_operating(0.9).unwrap(),
            &population,
            "difficult",
            4_000,
            1,
        )
        .unwrap();
        assert!(high < low, "{} vs {}", high.value(), low.value());
    }

    #[test]
    fn calibration_hits_reachable_target() {
        let population = scenario::field_population().unwrap();
        let base = Cadt::default_detector().unwrap();
        let target = Probability::new(0.35).unwrap();
        let cal = calibrate_operating(&base, &population, "easy", target, 0.02, 6_000, 42).unwrap();
        assert!(
            (cal.achieved.value() - 0.35).abs() <= 0.04,
            "achieved {} at operating {}",
            cal.achieved.value(),
            cal.cadt.operating
        );
        // Verify independently at a fresh seed.
        let check = estimate_machine_failure(&cal.cadt, &population, "easy", 8_000, 777).unwrap();
        assert!((check.value() - 0.35).abs() <= 0.05, "{}", check.value());
    }

    #[test]
    fn unreachable_target_returns_boundary() {
        let population = scenario::field_population().unwrap();
        let base = Cadt::default_detector().unwrap();
        // Nobody misses 100% of easy cancers at threshold 1.
        let impossible_low = calibrate_operating(
            &base,
            &population,
            "easy",
            Probability::new(0.001).unwrap(),
            0.005,
            4_000,
            7,
        )
        .unwrap();
        assert!((impossible_low.cadt.operating - 1.0).abs() < 1e-12);
        assert!(impossible_low.achieved.value() > 0.001);
    }

    #[test]
    fn validation_errors() {
        let population = scenario::field_population().unwrap();
        let base = Cadt::default_detector().unwrap();
        assert!(estimate_machine_failure(&base, &population, "easy", 0, 1).is_err());
        assert!(estimate_machine_failure(&base, &population, "ghost", 10, 1).is_err());
        assert!(
            calibrate_operating(&base, &population, "easy", Probability::HALF, 0.0, 10, 1).is_err()
        );
    }
}
