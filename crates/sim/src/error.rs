use std::error::Error;
use std::fmt;

use hmdiv_core::ModelError;
use hmdiv_prob::ProbError;

/// Error type for simulator configuration and runs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration value was out of its legal range.
    InvalidConfig {
        /// The offending value.
        value: f64,
        /// What the value configures.
        context: &'static str,
    },
    /// A run was requested with zero cases or zero threads.
    EmptyRun {
        /// What was zero.
        context: &'static str,
    },
    /// An underlying model operation failed.
    Model(ModelError),
    /// An underlying probability operation failed.
    Prob(ProbError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { value, context } => {
                write!(f, "invalid {context}: {value}")
            }
            SimError::EmptyRun { context } => write!(f, "{context} must be positive"),
            SimError::Model(e) => write!(f, "model error: {e}"),
            SimError::Prob(e) => write!(f, "probability error: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Model(e) => Some(e),
            SimError::Prob(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for SimError {
    fn from(e: ModelError) -> Self {
        SimError::Model(e)
    }
}

impl From<ProbError> for SimError {
    fn from(e: ProbError) -> Self {
        SimError::Prob(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let errors: Vec<SimError> = vec![
            SimError::InvalidConfig {
                value: -1.0,
                context: "prevalence",
            },
            SimError::EmptyRun {
                context: "case count",
            },
            SimError::Model(ModelError::Empty { context: "profile" }),
            SimError::Prob(ProbError::Empty { context: "weights" }),
        ];
        for e in &errors {
            assert!(!e.to_string().is_empty());
        }
        assert!(errors[2].source().is_some());
        assert!(errors[3].source().is_some());
        assert!(errors[0].source().is_none());
    }
}
