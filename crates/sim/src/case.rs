//! Synthetic screening cases.
//!
//! A case is the set of films about one patient (the paper's "demand"). The
//! simulator gives each case a latent **difficulty** in `[0, 1]` and, for
//! cancer cases, one or more **lesions** with a subtlety score derived from
//! that difficulty. Both the CADT and the reader see the same films —
//! success probabilities for both degrade with the same latent variables —
//! so their failures are correlated *through the case*, exactly the
//! structure the paper's conditional-on-demand modelling captures.

use serde::{Deserialize, Serialize};

use hmdiv_core::ClassId;

/// Ground truth of a case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CaseKind {
    /// The patient has cancer: the correct decision is *recall*.
    Cancer,
    /// The patient is healthy: the correct decision is *no recall*.
    Normal,
}

impl CaseKind {
    /// Whether the correct decision is to recall the patient.
    #[must_use]
    pub fn should_recall(self) -> bool {
        matches!(self, CaseKind::Cancer)
    }
}

/// A suspicious feature on the films of a cancer case.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lesion {
    /// How hard the lesion is to see, in `[0, 1]`; 0 = obvious, 1 = nearly
    /// invisible.
    pub subtlety: f64,
}

/// One screening case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Case {
    /// Sequence number within its generating run.
    pub id: u64,
    /// Ground truth.
    pub kind: CaseKind,
    /// The demand class the case belongs to (known to the experimenter, not
    /// to the reader).
    pub class: ClassId,
    /// Latent overall difficulty in `[0, 1]` (film quality, breast density,
    /// confusing normal structures).
    pub difficulty: f64,
    /// Lesions present (empty for normal cases).
    pub lesions: Vec<Lesion>,
}

impl Case {
    /// The subtlety of the most visible lesion — detection of the case
    /// requires finding at least one lesion, so the easiest one governs.
    ///
    /// Returns `None` for normal cases.
    #[must_use]
    pub fn easiest_lesion(&self) -> Option<f64> {
        self.lesions
            .iter()
            .map(|l| l.subtlety)
            .min_by(f64::total_cmp)
    }

    /// Whether this is a cancer case.
    #[must_use]
    pub fn is_cancer(&self) -> bool {
        self.kind == CaseKind::Cancer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cancer_case(subtleties: &[f64]) -> Case {
        Case {
            id: 0,
            kind: CaseKind::Cancer,
            class: ClassId::new("easy"),
            difficulty: 0.3,
            lesions: subtleties.iter().map(|&s| Lesion { subtlety: s }).collect(),
        }
    }

    #[test]
    fn kind_decides_recall() {
        assert!(CaseKind::Cancer.should_recall());
        assert!(!CaseKind::Normal.should_recall());
    }

    #[test]
    fn easiest_lesion_is_minimum_subtlety() {
        let c = cancer_case(&[0.8, 0.2, 0.5]);
        assert_eq!(c.easiest_lesion(), Some(0.2));
        assert!(c.is_cancer());
    }

    #[test]
    fn normal_case_has_no_lesions() {
        let c = Case {
            id: 1,
            kind: CaseKind::Normal,
            class: ClassId::new("clear"),
            difficulty: 0.1,
            lesions: vec![],
        };
        assert_eq!(c.easiest_lesion(), None);
        assert!(!c.is_cancer());
    }
}
