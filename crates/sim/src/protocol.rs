//! Reading protocols: how CADT and readers are combined on one case.
//!
//! The paper's §3 lists two co-ordination procedures (reader-first review
//! and concurrent reading); in both, what reaches the model is the pair of
//! events (machine failed?, reader failed?). The simulator realises the
//! *concurrent* ("sequential operation", Fig. 3) procedure — the reader sees
//! the films together with the prompts — which is the regime the paper's §4
//! model describes. Double reading and arbitration (§7) are also provided.

use rand::Rng;
use serde::{Deserialize, Serialize};

use hmdiv_core::ClassId;

use crate::cadt::{Cadt, CadtOutput};
use crate::case::{Case, CaseKind};
use crate::reader::Reader;
use crate::SimError;

/// How multiple readers' decisions combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DecisionRule {
    /// The single (first) reader decides.
    Single,
    /// Recall if any reader recalls.
    EitherRecalls,
    /// Recall only if all readers recall.
    Consensus,
}

/// The co-ordination procedure between each reader and the CADT (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Procedure {
    /// Procedure 2 of §3 / Fig. 3: the reader processes the films together
    /// with the CADT's annotations. Faster, but the prompts can bias the
    /// whole reading (automation bias applies).
    Concurrent,
    /// Procedure 1 of §3: the reader first examines the films *alone*, then
    /// reviews the CADT's prompts and may upgrade a no-recall decision.
    /// This is the procedure the CADT's design rationale assumes — the
    /// unaided pass is unaffected by the machine, so the "parallel
    /// detection" model's assumptions hold by construction.
    ReaderFirstReview,
}

/// A reading team: optional CADT, one or more readers, a decision rule,
/// and a co-ordination procedure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadingTeam {
    /// The CADT, if the protocol is computer-assisted.
    pub cadt: Option<Cadt>,
    /// The readers, in reading order.
    pub readers: Vec<Reader>,
    /// The combination rule.
    pub rule: DecisionRule,
    /// How each reader co-ordinates with the CADT (ignored when unaided).
    pub procedure: Procedure,
}

impl ReadingTeam {
    /// Validates team composition.
    ///
    /// # Errors
    ///
    /// [`SimError::EmptyRun`] with context "reader list" if there are no
    /// readers; [`SimError::InvalidConfig`] if a multi-reader rule has one
    /// reader, or any reader fails validation.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.readers.is_empty() {
            return Err(SimError::EmptyRun {
                context: "reader list",
            });
        }
        if self.rule != DecisionRule::Single && self.readers.len() < 2 {
            return Err(SimError::InvalidConfig {
                value: self.readers.len() as f64,
                context: "reader count for a multi-reader rule",
            });
        }
        self.readers.iter().try_for_each(Reader::validate)
    }

    /// Screens one case, producing the observable record.
    pub fn screen<R: Rng + ?Sized>(&self, case: &Case, rng: &mut R) -> CaseRecord {
        let cadt_output: Option<CadtOutput> = self.cadt.map(|c| c.process(case, rng));
        let machine_failed = cadt_output.as_ref().map(|out| match case.kind {
            CaseKind::Cancer => !out.detected_cancer(),
            CaseKind::Normal => out.spurious_prompts > 0,
        });
        let reader_recalls: Vec<bool> = self
            .readers
            .iter()
            .map(|r| match (self.procedure, cadt_output.as_ref()) {
                (_, None) => r.read(case, None, rng).recall,
                (Procedure::Concurrent, Some(out)) => r.read(case, Some(out), rng).recall,
                (Procedure::ReaderFirstReview, Some(out)) => {
                    // Unaided pass first: the machine cannot bias it.
                    let own = r.read(case, None, rng);
                    own.recall || r.review_prompts(case, out, rng)
                }
            })
            .collect();
        let decision = match self.rule {
            DecisionRule::Single => reader_recalls[0],
            DecisionRule::EitherRecalls => reader_recalls.iter().any(|&r| r),
            DecisionRule::Consensus => reader_recalls.iter().all(|&r| r),
        };
        let system_failed = decision != case.kind.should_recall();
        CaseRecord {
            class: case.class.clone(),
            kind: case.kind,
            machine_failed,
            reader_recalls,
            decision,
            system_failed,
        }
    }
}

/// The observable outcome of screening one case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseRecord {
    /// The case's demand class.
    pub class: ClassId,
    /// Ground truth.
    pub kind: CaseKind,
    /// Whether the machine failed on this case (`None` for unaided
    /// protocols). On cancer cases this is `Mf`; on normal cases it means
    /// spurious prompts were emitted.
    pub machine_failed: Option<bool>,
    /// Each reader's recall decision.
    pub reader_recalls: Vec<bool>,
    /// The team's final decision (recall?).
    pub decision: bool,
    /// Whether the decision was wrong for the ground truth.
    pub system_failed: bool,
}

impl CaseRecord {
    /// Whether this record is a false negative (cancer not recalled).
    #[must_use]
    pub fn is_false_negative(&self) -> bool {
        self.kind == CaseKind::Cancer && !self.decision
    }

    /// Whether this record is a false positive (healthy patient recalled).
    #[must_use]
    pub fn is_false_positive(&self) -> bool {
        self.kind == CaseKind::Normal && self.decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::Lesion;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cancer_case(subtlety: f64, difficulty: f64) -> Case {
        Case {
            id: 0,
            kind: CaseKind::Cancer,
            class: ClassId::new("t"),
            difficulty,
            lesions: vec![Lesion { subtlety }],
        }
    }

    fn assisted_single() -> ReadingTeam {
        ReadingTeam {
            cadt: Some(Cadt::default_detector().unwrap()),
            readers: vec![Reader::expert()],
            rule: DecisionRule::Single,
            procedure: Procedure::Concurrent,
        }
    }

    fn fn_rate(team: &ReadingTeam, case: &Case, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 20_000;
        (0..n)
            .filter(|_| team.screen(case, &mut rng).is_false_negative())
            .count() as f64
            / n as f64
    }

    #[test]
    fn validation() {
        assisted_single().validate().unwrap();
        let empty = ReadingTeam {
            cadt: None,
            readers: vec![],
            rule: DecisionRule::Single,
            procedure: Procedure::Concurrent,
        };
        assert!(empty.validate().is_err());
        let lonely_double = ReadingTeam {
            cadt: None,
            readers: vec![Reader::expert()],
            rule: DecisionRule::EitherRecalls,
            procedure: Procedure::Concurrent,
        };
        assert!(lonely_double.validate().is_err());
        let mut bad_reader = Reader::expert();
        bad_reader.lapse_rate = 2.0;
        let team = ReadingTeam {
            cadt: None,
            readers: vec![bad_reader],
            rule: DecisionRule::Single,
            procedure: Procedure::Concurrent,
        };
        assert!(team.validate().is_err());
    }

    #[test]
    fn unaided_has_no_machine_event() {
        let team = ReadingTeam {
            cadt: None,
            readers: vec![Reader::expert()],
            rule: DecisionRule::Single,
            procedure: Procedure::Concurrent,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let rec = team.screen(&cancer_case(0.5, 0.4), &mut rng);
        assert!(rec.machine_failed.is_none());
        assert_eq!(rec.reader_recalls.len(), 1);
    }

    #[test]
    fn assistance_reduces_false_negatives_on_subtle_cases() {
        let unaided = ReadingTeam {
            cadt: None,
            readers: vec![Reader::expert()],
            rule: DecisionRule::Single,
            procedure: Procedure::Concurrent,
        };
        let aided = assisted_single();
        let case = cancer_case(0.8, 0.3);
        let fn_unaided = fn_rate(&unaided, &case, 2);
        let fn_aided = fn_rate(&aided, &case, 2);
        assert!(fn_aided < fn_unaided, "{fn_aided} vs {fn_unaided}");
    }

    #[test]
    fn double_reading_beats_single() {
        let single = assisted_single();
        let double = ReadingTeam {
            cadt: Some(Cadt::default_detector().unwrap()),
            readers: vec![Reader::expert(), Reader::expert()],
            rule: DecisionRule::EitherRecalls,
            procedure: Procedure::Concurrent,
        };
        let case = cancer_case(0.75, 0.5);
        assert!(fn_rate(&double, &case, 3) < fn_rate(&single, &case, 3));
    }

    #[test]
    fn consensus_raises_false_negatives() {
        let either = ReadingTeam {
            cadt: None,
            readers: vec![Reader::expert(), Reader::expert()],
            rule: DecisionRule::EitherRecalls,
            procedure: Procedure::Concurrent,
        };
        let consensus = ReadingTeam {
            rule: DecisionRule::Consensus,
            ..either.clone()
        };
        let case = cancer_case(0.7, 0.5);
        assert!(fn_rate(&consensus, &case, 4) > fn_rate(&either, &case, 4));
    }

    #[test]
    fn record_classification_helpers() {
        let rec = CaseRecord {
            class: ClassId::new("x"),
            kind: CaseKind::Cancer,
            machine_failed: Some(true),
            reader_recalls: vec![false],
            decision: false,
            system_failed: true,
        };
        assert!(rec.is_false_negative());
        assert!(!rec.is_false_positive());
        let fp = CaseRecord {
            kind: CaseKind::Normal,
            decision: true,
            ..rec
        };
        assert!(fp.is_false_positive());
        assert!(!fp.is_false_negative());
    }

    #[test]
    fn machine_failure_semantics_per_kind() {
        let team = assisted_single();
        let mut rng = StdRng::seed_from_u64(5);
        // A maximally obvious cancer: machine essentially always detects.
        let obvious = cancer_case(0.0, 0.0);
        let mut machine_fails = 0;
        for _ in 0..2000 {
            if team.screen(&obvious, &mut rng).machine_failed.unwrap() {
                machine_fails += 1;
            }
        }
        assert!(machine_fails < 200, "{machine_fails}");
    }
}
