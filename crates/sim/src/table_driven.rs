//! Table-driven sampling: Monte-Carlo directly from a parameter table.
//!
//! The behavioural simulator in the rest of this crate produces the
//! conditional probabilities *emergently*. For validating the analytic
//! equations (and regenerating the paper's tables by simulation), it is
//! useful to go the other way: draw `(class, Mf, Hf)` events directly from a
//! [`SequentialModel`]'s table and check that empirical frequencies
//! reproduce eq. (8). Any discrepancy beyond Monte-Carlo noise would be a
//! bug in either the model arithmetic or the sampler.

use rand::Rng;

use hmdiv_core::{ClassId, ClassParams, DemandProfile, ModelError, SequentialModel};
use hmdiv_prob::counts::{JointCounts, StratifiedCounts};
use hmdiv_prob::Probability;

use crate::SimError;

/// Simulates `cases` demands drawn from `profile` through the model's
/// conditional tables, returning the stratified outcome counts.
///
/// The hot loop is dense: the profile's classes resolve once against the
/// model's compiled universe, each case samples a category *index* (the
/// same draws [`DemandProfile::sample`] would make) and tallies into a
/// per-entry [`JointCounts`] vector — no per-case `BTreeMap` lookups or
/// `ClassId` clones. The keyed view is materialised at the end, so results
/// are identical to the original map-walk loop for any seed.
///
/// # Errors
///
/// * [`SimError::EmptyRun`] if `cases == 0`.
/// * [`SimError::Model`] if the profile mentions a class without parameters.
pub fn simulate<R: Rng + ?Sized>(
    model: &SequentialModel,
    profile: &DemandProfile,
    cases: u64,
    rng: &mut R,
) -> Result<StratifiedCounts<ClassId>, SimError> {
    if cases == 0 {
        return Err(SimError::EmptyRun {
            context: "case count",
        });
    }
    // Fail fast on coverage (keeps the `MissingClass` error shape; binding
    // below cannot fail once every profile class has parameters).
    for (class, _) in profile.iter() {
        model.params().class(class).map_err(SimError::from)?;
    }
    let compiled = model.compiled();
    let bound = compiled.bind_profile(profile).map_err(SimError::from)?;
    let dist = profile.as_categorical();
    // Per-profile-entry parameters and tallies, in category order — the
    // index sampled below addresses both directly.
    let entry_params: Vec<ClassParams> = bound
        .indices()
        .iter()
        .map(|&i| compiled.params_at(i))
        .collect();
    let mut tallies: Vec<JointCounts> = vec![JointCounts::new(); bound.len()];
    let span = hmdiv_obs::span("sim.table_driven.simulate");
    for _ in 0..cases {
        let k = dist.sample_index(rng);
        let cp = &entry_params[k];
        let machine_failed = rng.gen::<f64>() < cp.p_mf().value();
        let p_hf = if machine_failed {
            cp.p_hf_given_mf()
        } else {
            cp.p_hf_given_ms()
        };
        let human_failed = rng.gen::<f64>() < p_hf.value();
        tallies[k].record(machine_failed, human_failed);
    }
    let mut counts = StratifiedCounts::new();
    for (k, table) in tallies.into_iter().enumerate() {
        // Only sampled classes get a stratum, as in the keyed loop.
        if table.total() > 0 {
            counts.add_table(dist.categories()[k].clone(), table);
        }
    }
    if let Some(elapsed_ns) = span.elapsed_ns() {
        hmdiv_obs::counter_add("sim.table_driven.cases", cases);
        if elapsed_ns > 0 {
            hmdiv_obs::gauge_set(
                "sim.table_driven.cases_per_sec",
                cases as f64 / (elapsed_ns as f64 / 1e9),
            );
        }
    }
    drop(span);
    Ok(counts)
}

/// The empirical system failure frequency from a table-driven run.
///
/// # Errors
///
/// [`SimError::EmptyRun`] if the counts are empty.
pub fn empirical_failure(counts: &StratifiedCounts<ClassId>) -> Result<Probability, SimError> {
    let pooled = counts.pooled();
    if pooled.total() == 0 {
        return Err(SimError::EmptyRun {
            context: "recorded case count",
        });
    }
    Ok(Probability::clamped(
        pooled.human_failures() as f64 / pooled.total() as f64,
    ))
}

/// Convenience: run a table-driven simulation and report the empirical vs
/// analytic system failure probability.
///
/// Returns `(empirical, analytic)`.
///
/// # Errors
///
/// As [`simulate`], plus model-evaluation errors.
pub fn cross_check<R: Rng + ?Sized>(
    model: &SequentialModel,
    profile: &DemandProfile,
    cases: u64,
    rng: &mut R,
) -> Result<(Probability, Probability), SimError> {
    let counts = simulate(model, profile, cases, rng)?;
    let empirical = empirical_failure(&counts)?;
    let analytic = model.system_failure(profile).map_err(SimError::from)?;
    Ok((empirical, analytic))
}

/// Re-estimates a [`SequentialModel`] from table-driven counts (closing the
/// loop: model → simulate → estimate → model).
///
/// # Errors
///
/// [`ModelError::Empty`] if no class has all conditionals estimable.
pub fn reestimate(counts: &StratifiedCounts<ClassId>) -> Result<SequentialModel, ModelError> {
    let mut builder = hmdiv_core::ModelParams::builder();
    let mut any = false;
    for (class, table) in counts.iter() {
        let (Ok(p_mf), Ok(hf_ms), Ok(hf_mf)) = (
            table.p_machine_fails(),
            table.p_human_fails_given_machine_succeeds(),
            table.p_human_fails_given_machine_fails(),
        ) else {
            continue;
        };
        builder = builder.class(
            class.clone(),
            hmdiv_core::ClassParams::new(p_mf.point(), hf_ms.point(), hf_mf.point()),
        );
        any = true;
    }
    if !any {
        return Err(ModelError::Empty {
            context: "estimable class set",
        });
    }
    Ok(SequentialModel::new(builder.build()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmdiv_core::paper;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empirical_matches_analytic_table2() {
        let model = paper::example_model().unwrap();
        let mut rng = StdRng::seed_from_u64(2003);
        for (profile, expected) in [
            (
                paper::trial_profile().unwrap(),
                paper::published::TRIAL_FAILURE,
            ),
            (
                paper::field_profile().unwrap(),
                paper::published::FIELD_FAILURE,
            ),
        ] {
            let (empirical, analytic) = cross_check(&model, &profile, 400_000, &mut rng).unwrap();
            assert!((analytic.value() - expected).abs() < 1e-9);
            assert!(
                (empirical.value() - expected).abs() < 0.005,
                "{} vs {}",
                empirical.value(),
                expected
            );
        }
    }

    #[test]
    fn reestimation_recovers_parameters() {
        let model = paper::example_model().unwrap();
        let profile = paper::trial_profile().unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let counts = simulate(&model, &profile, 500_000, &mut rng).unwrap();
        let recovered = reestimate(&counts).unwrap();
        for class in ["easy", "difficult"] {
            let truth = model.params().class_by_name(class).unwrap();
            let est = recovered.params().class_by_name(class).unwrap();
            assert!(
                (truth.p_mf().value() - est.p_mf().value()).abs() < 0.01,
                "{class} PMf"
            );
            assert!(
                (truth.p_hf_given_ms().value() - est.p_hf_given_ms().value()).abs() < 0.01,
                "{class} PHf|Ms"
            );
            assert!(
                (truth.p_hf_given_mf().value() - est.p_hf_given_mf().value()).abs() < 0.02,
                "{class} PHf|Mf"
            );
        }
    }

    #[test]
    fn class_frequencies_follow_profile() {
        let model = paper::example_model().unwrap();
        let profile = paper::field_profile().unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let counts = simulate(&model, &profile, 100_000, &mut rng).unwrap();
        let empirical = counts.empirical_profile();
        let difficult_share = empirical
            .iter()
            .find(|(c, _)| c.name() == "difficult")
            .map(|(_, p)| p.value())
            .unwrap();
        assert!((difficult_share - 0.1).abs() < 0.01, "{difficult_share}");
    }

    #[test]
    fn validation_errors() {
        let model = paper::example_model().unwrap();
        let profile = paper::trial_profile().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(simulate(&model, &profile, 0, &mut rng).is_err());
        let missing = hmdiv_core::DemandProfile::builder()
            .class("ghost", 1.0)
            .build()
            .unwrap();
        assert!(simulate(&model, &missing, 10, &mut rng).is_err());
        assert!(empirical_failure(&StratifiedCounts::new()).is_err());
    }
}
