//! Canonical simulated worlds.
//!
//! Ready-made [`World`]s mirroring the paper's setting: a screening
//! population with rare cancers split into "easy" and "difficult" classes,
//! an enriched trial variant, and team variants (unaided, assisted, biased
//! reader, double reading).

use hmdiv_prob::Probability;

use crate::cadt::Cadt;
use crate::engine::World;
use crate::population::{ClassSpec, PopulationSpec};
use crate::protocol::{DecisionRule, Procedure, ReadingTeam};
use crate::reader::Reader;
use crate::SimError;

/// The screened population: ~0.8% cancer prevalence; cancer cases 80% easy
/// (low difficulty) / 20% difficult; normal films mostly clear with a dense
/// minority.
///
/// # Errors
///
/// Never fails in practice; returns `Result` for uniformity.
pub fn field_population() -> Result<PopulationSpec, SimError> {
    PopulationSpec::new(
        Probability::new(0.008)?,
        vec![
            (ClassSpec::new("easy", 2.2, 5.5, 1.3)?, 0.8),
            (ClassSpec::new("difficult", 6.0, 2.2, 1.1)?, 0.2),
        ],
        vec![
            (ClassSpec::new("clear", 1.8, 7.0, 1.0)?, 0.85),
            (ClassSpec::new("dense", 5.0, 2.5, 1.0)?, 0.15),
        ],
    )
}

/// The enriched trial population: same case mix, 50% prevalence (the §1
/// trial-design concession that motivates the extrapolation machinery).
///
/// # Errors
///
/// Never fails in practice.
pub fn trial_population() -> Result<PopulationSpec, SimError> {
    Ok(field_population()?.with_prevalence(Probability::HALF))
}

/// The default world: field population, default CADT, one expert reader in
/// the concurrent ("sequential operation") protocol.
///
/// # Errors
///
/// Never fails in practice.
pub fn default_world() -> Result<World, SimError> {
    Ok(World {
        population: field_population()?,
        team: ReadingTeam {
            cadt: Some(Cadt::default_detector()?),
            readers: vec![Reader::expert()],
            rule: DecisionRule::Single,
            procedure: Procedure::Concurrent,
        },
    })
}

/// The trial world: enriched population, otherwise as [`default_world`].
///
/// # Errors
///
/// Never fails in practice.
pub fn trial_world() -> Result<World, SimError> {
    Ok(World {
        population: trial_population()?,
        ..default_world()?
    })
}

/// The unaided world: no CADT.
///
/// # Errors
///
/// Never fails in practice.
pub fn unaided_world() -> Result<World, SimError> {
    let mut world = default_world()?;
    world.team.cadt = None;
    Ok(world)
}

/// A world whose reader exhibits strong automation bias (heavy neglect of
/// unprompted regions) — the regime where the machine's failures hurt the
/// human most (large `t(x)`).
///
/// # Errors
///
/// Never fails in practice.
pub fn biased_reader_world(neglect: f64) -> Result<World, SimError> {
    let mut world = default_world()?;
    world.team.readers = vec![Reader::expert().with_unprompted_neglect(neglect)];
    world.team.validate()?;
    Ok(world)
}

/// Double reading with unilateral recall, both readers CADT-assisted (§7).
///
/// # Errors
///
/// Never fails in practice.
pub fn double_reading_world() -> Result<World, SimError> {
    let mut world = default_world()?;
    world.team.readers = vec![Reader::expert(), Reader::expert()];
    world.team.rule = DecisionRule::EitherRecalls;
    Ok(world)
}

/// Two novice readers with a CADT, unilateral recall — the paper's "less
/// qualified readers assisted by CADTs" cost-effectiveness configuration.
///
/// # Errors
///
/// Never fails in practice.
pub fn novice_pair_world() -> Result<World, SimError> {
    let mut world = default_world()?;
    world.team.readers = vec![Reader::novice(), Reader::novice()];
    world.team.rule = DecisionRule::EitherRecalls;
    Ok(world)
}

/// The §3 procedure-1 world: the reader examines the films alone first and
/// only then reviews the CADT's prompts. The unaided pass cannot be biased
/// by the machine, so this world realises the "parallel detection" model's
/// assumptions by construction.
///
/// # Errors
///
/// Never fails in practice.
pub fn reader_first_world() -> Result<World, SimError> {
    let mut world = default_world()?;
    world.team.procedure = Procedure::ReaderFirstReview;
    Ok(world)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulation};

    #[test]
    fn all_worlds_validate() {
        for world in [
            default_world().unwrap(),
            trial_world().unwrap(),
            unaided_world().unwrap(),
            biased_reader_world(0.5).unwrap(),
            double_reading_world().unwrap(),
            novice_pair_world().unwrap(),
        ] {
            world.team.validate().unwrap();
        }
        assert!(biased_reader_world(1.5).is_err());
    }

    #[test]
    fn assisted_beats_unaided_on_fn_rate() {
        let run = |world: World| {
            Simulation::new(
                world,
                SimConfig {
                    cases: 30_000,
                    seed: 77,
                    threads: 4,
                },
            )
            .run()
            .unwrap()
        };
        // Use the enriched population so FN rates are well estimated.
        let mut unaided = unaided_world().unwrap();
        unaided.population = trial_population().unwrap();
        let mut aided = default_world().unwrap();
        aided.population = trial_population().unwrap();
        let fn_unaided = run(unaided).fn_rate().unwrap();
        let fn_aided = run(aided).fn_rate().unwrap();
        assert!(
            fn_aided.value() < fn_unaided.value(),
            "{} vs {}",
            fn_aided.value(),
            fn_unaided.value()
        );
    }

    #[test]
    fn double_reading_improves_over_single() {
        let run = |mut world: World| {
            world.population = trial_population().unwrap();
            Simulation::new(
                world,
                SimConfig {
                    cases: 30_000,
                    seed: 78,
                    threads: 4,
                },
            )
            .run()
            .unwrap()
        };
        let single = run(default_world().unwrap()).fn_rate().unwrap();
        let double = run(double_reading_world().unwrap()).fn_rate().unwrap();
        assert!(
            double.value() < single.value(),
            "{} vs {}",
            double.value(),
            single.value()
        );
    }

    #[test]
    fn reader_first_never_worse_than_unaided() {
        // Procedure 1 can only ADD recalls on top of the unaided pass, so
        // its FN rate is at most the unaided one (pure 1-of-2 redundancy).
        let run = |mut world: World| {
            world.population = trial_population().unwrap();
            Simulation::new(
                world,
                SimConfig {
                    cases: 40_000,
                    seed: 90,
                    threads: 4,
                },
            )
            .run()
            .unwrap()
        };
        let unaided = run(unaided_world().unwrap()).fn_rate().unwrap();
        let reader_first = run(reader_first_world().unwrap()).fn_rate().unwrap();
        assert!(
            reader_first.value() < unaided.value(),
            "{} vs {}",
            reader_first.value(),
            unaided.value()
        );
    }

    #[test]
    fn reader_first_machine_failure_does_not_hurt() {
        // The signature of procedure 1: when the machine fails, the decision
        // is (almost) the unaided one, so PHf|Mf ≈ the reader's unaided
        // failure rate on that class. Under concurrent reading with
        // automation bias, machine failures actively mislead: PHf|Mf rises
        // clearly above the unaided rate. (t(x) itself stays large in both
        // procedures — the machine's *successes* help either way.)
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let population = trial_population().unwrap();
        let biased = Reader::expert().with_unprompted_neglect(0.6);
        // Unaided failure rate on difficult cancer cases, measured directly.
        let mut rng = StdRng::seed_from_u64(91);
        let mut misses = 0u64;
        let mut seen = 0u64;
        let mut id = 0u64;
        while seen < 20_000 {
            let case = population.sample_cancer_case(id, &mut rng);
            id += 1;
            if case.class.name() != "difficult" {
                continue;
            }
            seen += 1;
            if !biased.read(&case, None, &mut rng).recall {
                misses += 1;
            }
        }
        let unaided_rate = misses as f64 / seen as f64;

        let run = |procedure: Procedure| {
            let mut w = default_world().unwrap();
            w.population = trial_population().unwrap();
            w.team.readers = vec![biased];
            w.team.procedure = procedure;
            Simulation::new(
                w,
                SimConfig {
                    cases: 150_000,
                    seed: 92,
                    threads: 4,
                },
            )
            .run()
            .unwrap()
            .estimated_model()
            .unwrap()
        };
        let hf_mf = |m: &hmdiv_core::SequentialModel| {
            m.params()
                .class_by_name("difficult")
                .unwrap()
                .p_hf_given_mf()
                .value()
        };
        let rf = run(Procedure::ReaderFirstReview);
        let cc = run(Procedure::Concurrent);
        assert!(
            (hf_mf(&rf) - unaided_rate).abs() < 0.03,
            "reader-first PHf|Mf {} should match unaided {}",
            hf_mf(&rf),
            unaided_rate
        );
        assert!(
            hf_mf(&cc) > unaided_rate + 0.03,
            "concurrent+bias PHf|Mf {} should exceed unaided {}",
            hf_mf(&cc),
            unaided_rate
        );
    }

    #[test]
    fn biased_reader_has_larger_coherence_index() {
        // Strong automation bias inflates PHf|Mf relative to PHf|Ms — the
        // simulated analogue of the paper's high-t classes.
        let run = |world: World| {
            let mut w = world;
            w.population = trial_population().unwrap();
            Simulation::new(
                w,
                SimConfig {
                    cases: 80_000,
                    seed: 79,
                    threads: 4,
                },
            )
            .run()
            .unwrap()
            .estimated_model()
            .unwrap()
        };
        let neutral = run(biased_reader_world(0.0).unwrap());
        let biased = run(biased_reader_world(0.8).unwrap());
        let t = |m: &hmdiv_core::SequentialModel| {
            m.params()
                .class_by_name("difficult")
                .unwrap()
                .coherence_index()
        };
        assert!(
            t(&biased) > t(&neutral),
            "{} vs {}",
            t(&biased),
            t(&neutral)
        );
    }
}
