//! A stochastic screening simulator for the `hmdiv` workspace.
//!
//! The paper's models consume probabilities estimated from trials of a real
//! computer-aided detection tool (CADT) used by real readers on real
//! mammograms. None of those are available here, so this crate builds the
//! closest synthetic equivalent that exercises the same pipeline:
//!
//! * [`case`] — synthetic screening cases: a latent *difficulty*, lesions
//!   with *subtlety* scores for cancer cases, distractor features for
//!   normal ones. The shared latent difficulty is what correlates human and
//!   machine failures — the mechanism behind the paper's covariance terms.
//! * [`population`] — case generators for field populations (cancer
//!   prevalence well under 1%) and enriched trial sets (the paper: "the set
//!   of cases used was chosen to have a much higher proportion of cancers").
//! * [`cadt`] — a pattern-detector model with a tunable operating threshold
//!   (prompt rate vs. sensitivity), logistic in the lesion subtlety.
//! * [`reader`] — a behavioural reader: two-stage (detect, classify),
//!   attention lapses, prompt-following, automation bias (neglect of
//!   unprompted regions), and extra scrutiny of prompted regions.
//! * [`protocol`] — reading protocols: unaided, CADT-assisted (the paper's
//!   "sequential operation"), and double reading with unilateral recall or
//!   arbitration.
//! * [`engine`] — a multi-threaded Monte-Carlo runner producing stratified
//!   outcome counts ready for the estimators in `hmdiv-prob`.
//! * [`table_driven`] — a direct sampler from a `hmdiv_core` parameter
//!   table, used to cross-check the analytic equations by simulation.
//!
//! # Example
//!
//! ```
//! use hmdiv_sim::{engine::{Simulation, SimConfig}, scenario};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let world = scenario::default_world()?;
//! let report = Simulation::new(world, SimConfig { cases: 2_000, seed: 7, threads: 2 })
//!     .run()?;
//! // Cancer cases were screened; some were missed by both parties.
//! assert!(report.cancer_cases() > 0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod cadt;
pub mod calibrate;
pub mod case;
pub mod engine;
mod error;
pub mod population;
pub mod protocol;
pub mod reader;
pub mod scenario;
pub mod session;
pub mod table_driven;

pub use error::SimError;
