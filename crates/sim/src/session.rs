//! Reading sessions: reader drift over time.
//!
//! §5 item 3: "the behaviour of the readers … will evolve over time as they
//! learn more about the behaviour of the CADT, e.g., becoming more
//! complacent about relying on its prompts, or more skilled in detecting its
//! failures." This module simulates a long reading session in which the
//! reader's parameters drift:
//!
//! * **fatigue** — the lapse rate climbs with cases read;
//! * **trust adaptation** — prompt trust moves toward the CADT's observed
//!   precision (spurious prompts erode trust, confirmed prompts build it);
//! * **complacency** — as trust grows, neglect of unprompted regions grows
//!   with it.
//!
//! The output is a per-batch time series of emergent parameters, the data
//! one would need to decide whether the paper's static per-class model is
//! adequate over a session, or must be refit per period.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::cadt::Cadt;
use crate::case::CaseKind;
use crate::population::PopulationSpec;
use crate::reader::Reader;
use crate::SimError;

/// Drift dynamics for a session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Added to the lapse rate per 1000 cases read (fatigue), clamped so the
    /// rate stays in `[0, 1]`.
    pub fatigue_per_1000: f64,
    /// Learning rate for trust adaptation in `[0, 1]`: after each prompted
    /// case, trust moves this fraction toward 1 (if the prompt marked a
    /// real lesion) or toward 0 (if all prompts were spurious).
    pub trust_learning_rate: f64,
    /// Fraction of trust converted into unprompted-region neglect
    /// (complacency coupling), in `[0, 1]`.
    pub complacency_coupling: f64,
}

impl DriftConfig {
    /// No drift: the session degenerates to the static reader.
    #[must_use]
    pub fn none() -> Self {
        DriftConfig {
            fatigue_per_1000: 0.0,
            trust_learning_rate: 0.0,
            complacency_coupling: 0.0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] for out-of-range values.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.fatigue_per_1000.is_nan() || self.fatigue_per_1000 < 0.0 {
            return Err(SimError::InvalidConfig {
                value: self.fatigue_per_1000,
                context: "fatigue per 1000 cases",
            });
        }
        for (value, context) in [
            (self.trust_learning_rate, "trust learning rate"),
            (self.complacency_coupling, "complacency coupling"),
        ] {
            if value.is_nan() || !(0.0..=1.0).contains(&value) {
                return Err(SimError::InvalidConfig { value, context });
            }
        }
        Ok(())
    }
}

/// Summary of one batch of a session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchSummary {
    /// Batch index (0-based).
    pub batch: usize,
    /// Cases in the batch.
    pub cases: u64,
    /// Cancer cases in the batch.
    pub cancers: u64,
    /// False negatives among the cancers.
    pub false_negatives: u64,
    /// The reader's lapse rate at the END of the batch.
    pub lapse_rate: f64,
    /// The reader's prompt trust at the end of the batch.
    pub prompt_trust: f64,
    /// The reader's unprompted neglect at the end of the batch.
    pub unprompted_neglect: f64,
}

impl BatchSummary {
    /// The batch false-negative rate, or `None` without cancers.
    #[must_use]
    pub fn fn_rate(&self) -> Option<f64> {
        (self.cancers > 0).then(|| self.false_negatives as f64 / self.cancers as f64)
    }
}

/// Runs a drifting session of `batches × batch_size` cases and returns the
/// per-batch time series.
///
/// # Errors
///
/// * [`SimError::EmptyRun`] for zero batches or batch size.
/// * Configuration validation errors.
pub fn run_session(
    population: &PopulationSpec,
    cadt: &Cadt,
    reader: &Reader,
    drift: &DriftConfig,
    batches: usize,
    batch_size: u64,
    seed: u64,
) -> Result<Vec<BatchSummary>, SimError> {
    if batches == 0 {
        return Err(SimError::EmptyRun {
            context: "batch count",
        });
    }
    if batch_size == 0 {
        return Err(SimError::EmptyRun {
            context: "batch size",
        });
    }
    drift.validate()?;
    reader.validate()?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = *reader;
    let mut out = Vec::with_capacity(batches);
    let mut case_id = 0u64;
    for batch in 0..batches {
        let mut cancers = 0u64;
        let mut false_negatives = 0u64;
        for _ in 0..batch_size {
            let case = population.sample_case(case_id, &mut rng);
            case_id += 1;
            let output = cadt.process(&case, &mut rng);
            let decision = current.read(&case, Some(&output), &mut rng);
            if case.kind == CaseKind::Cancer {
                cancers += 1;
                if !decision.recall {
                    false_negatives += 1;
                }
            }
            // Trust adaptation: only prompted cases teach anything.
            if output.any_prompt() {
                let informative = output.detected_cancer();
                let target = if informative { 1.0 } else { 0.0 };
                current.prompt_trust += drift.trust_learning_rate * (target - current.prompt_trust);
                current.prompt_trust = current.prompt_trust.clamp(0.0, 1.0);
                current.unprompted_neglect = (drift.complacency_coupling * current.prompt_trust)
                    .clamp(0.0, 1.0)
                    .max(reader.unprompted_neglect.min(1.0));
            }
            // Fatigue.
            current.lapse_rate =
                (current.lapse_rate + drift.fatigue_per_1000 / 1000.0).clamp(0.0, 1.0);
        }
        out.push(BatchSummary {
            batch,
            cases: batch_size,
            cancers,
            false_negatives,
            lapse_rate: current.lapse_rate,
            prompt_trust: current.prompt_trust,
            unprompted_neglect: current.unprompted_neglect,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    fn setup() -> (PopulationSpec, Cadt, Reader) {
        (
            scenario::trial_population().unwrap(),
            Cadt::default_detector().unwrap(),
            Reader::expert(),
        )
    }

    #[test]
    fn no_drift_keeps_parameters_fixed() {
        let (pop, cadt, reader) = setup();
        let series = run_session(&pop, &cadt, &reader, &DriftConfig::none(), 5, 500, 1).unwrap();
        assert_eq!(series.len(), 5);
        for batch in &series {
            assert_eq!(batch.lapse_rate, reader.lapse_rate);
            assert_eq!(batch.prompt_trust, reader.prompt_trust);
            assert!(batch.fn_rate().is_some());
        }
    }

    #[test]
    fn fatigue_raises_lapse_rate_monotonically() {
        let (pop, cadt, reader) = setup();
        let drift = DriftConfig {
            // +0.12 lapse rate per 1000 cases: 0.05 → 0.77 over the session.
            fatigue_per_1000: 0.12,
            trust_learning_rate: 0.0,
            complacency_coupling: 0.0,
        };
        let series = run_session(&pop, &cadt, &reader, &drift, 6, 1000, 2).unwrap();
        for pair in series.windows(2) {
            assert!(pair[1].lapse_rate >= pair[0].lapse_rate);
        }
        assert!(series.last().unwrap().lapse_rate > reader.lapse_rate + 0.5);
        // Fatigue shows up in the outcome: late batches miss more.
        let early: u64 = series[..2].iter().map(|b| b.false_negatives).sum();
        let early_cancers: u64 = series[..2].iter().map(|b| b.cancers).sum();
        let late: u64 = series[4..].iter().map(|b| b.false_negatives).sum();
        let late_cancers: u64 = series[4..].iter().map(|b| b.cancers).sum();
        let early_rate = early as f64 / early_cancers as f64;
        let late_rate = late as f64 / late_cancers as f64;
        assert!(late_rate > early_rate, "{early_rate} vs {late_rate}");
    }

    #[test]
    fn trust_adapts_toward_machine_precision() {
        let (pop, cadt, _) = setup();
        let mut skeptic = Reader::expert();
        skeptic.prompt_trust = 0.2;
        let drift = DriftConfig {
            fatigue_per_1000: 0.0,
            trust_learning_rate: 0.02,
            complacency_coupling: 0.0,
        };
        let series = run_session(&pop, &cadt, &skeptic, &drift, 4, 1000, 3).unwrap();
        // On the enriched population most prompted cases include a true
        // prompt, so trust should climb from 0.2.
        assert!(
            series.last().unwrap().prompt_trust > 0.4,
            "{:?}",
            series.last()
        );
    }

    #[test]
    fn complacency_couples_neglect_to_trust() {
        let (pop, cadt, reader) = setup();
        let drift = DriftConfig {
            fatigue_per_1000: 0.0,
            trust_learning_rate: 0.05,
            complacency_coupling: 0.8,
        };
        let series = run_session(&pop, &cadt, &reader, &drift, 4, 1000, 4).unwrap();
        let last = series.last().unwrap();
        assert!(last.unprompted_neglect >= reader.unprompted_neglect);
        assert!(
            (last.unprompted_neglect - 0.8 * last.prompt_trust).abs() < 0.05
                || last.unprompted_neglect >= reader.unprompted_neglect
        );
    }

    #[test]
    fn validation_errors() {
        let (pop, cadt, reader) = setup();
        assert!(run_session(&pop, &cadt, &reader, &DriftConfig::none(), 0, 10, 1).is_err());
        assert!(run_session(&pop, &cadt, &reader, &DriftConfig::none(), 1, 0, 1).is_err());
        let bad = DriftConfig {
            fatigue_per_1000: -1.0,
            ..DriftConfig::none()
        };
        assert!(run_session(&pop, &cadt, &reader, &bad, 1, 10, 1).is_err());
        let bad = DriftConfig {
            trust_learning_rate: 1.5,
            ..DriftConfig::none()
        };
        assert!(run_session(&pop, &cadt, &reader, &bad, 1, 10, 1).is_err());
    }
}
