//! Case population generators.
//!
//! A [`PopulationSpec`] describes the screened population: cancer
//! prevalence, the mix of demand classes on each side, and per-class latent
//! difficulty distributions. The same spec with a different prevalence
//! models an *enriched trial set* — the paper's concern that trials use "a
//! much higher proportion of cancers than that (less than 1%) of the
//! screened population".

use rand::Rng;
use serde::{Deserialize, Serialize};

use hmdiv_core::{ClassId, ClassUniverse};
use hmdiv_prob::bayes::Beta;
use hmdiv_prob::{Categorical, Probability};

use crate::case::{Case, CaseKind, Lesion};
use crate::SimError;

/// Static description of one demand class's case generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassSpec {
    /// The class label.
    pub class: ClassId,
    /// Beta shape `alpha` of the latent difficulty distribution.
    pub difficulty_alpha: f64,
    /// Beta shape `beta` of the latent difficulty distribution.
    pub difficulty_beta: f64,
    /// Expected number of lesions for cancer cases of this class (at least
    /// one lesion is always generated; extra lesions follow a geometric
    /// law with this mean). Ignored for normal classes.
    pub mean_lesions: f64,
}

impl ClassSpec {
    /// Creates a class spec.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] if the Beta shapes are not strictly
    /// positive or `mean_lesions < 1`.
    pub fn new(
        class: impl Into<ClassId>,
        difficulty_alpha: f64,
        difficulty_beta: f64,
        mean_lesions: f64,
    ) -> Result<Self, SimError> {
        let spec = ClassSpec {
            class: class.into(),
            difficulty_alpha,
            difficulty_beta,
            mean_lesions,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Checks the invariants [`ClassSpec::new`] enforces. The fields are
    /// public, so a hand-assembled spec can violate them; callers that
    /// accept arbitrary specs (e.g. [`crate::engine::Simulation::run`])
    /// re-validate here instead of panicking mid-sample.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] if the Beta shapes are not strictly
    /// positive or `mean_lesions < 1`.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.difficulty_alpha.is_nan() || self.difficulty_alpha <= 0.0 {
            return Err(SimError::InvalidConfig {
                value: self.difficulty_alpha,
                context: "difficulty alpha",
            });
        }
        if self.difficulty_beta.is_nan() || self.difficulty_beta <= 0.0 {
            return Err(SimError::InvalidConfig {
                value: self.difficulty_beta,
                context: "difficulty beta",
            });
        }
        if self.mean_lesions.is_nan() || self.mean_lesions < 1.0 {
            return Err(SimError::InvalidConfig {
                value: self.mean_lesions,
                context: "mean lesions",
            });
        }
        Ok(())
    }

    /// The mean of the latent difficulty distribution.
    #[must_use]
    pub fn mean_difficulty(&self) -> f64 {
        self.difficulty_alpha / (self.difficulty_alpha + self.difficulty_beta)
    }

    fn sample_difficulty<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        Beta::new(self.difficulty_alpha, self.difficulty_beta)
            .expect("shapes validated at construction")
            .sample(rng)
            .value()
    }
}

/// The screened population: prevalence plus per-side class mixes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationSpec {
    prevalence: Probability,
    cancer_mix: Categorical<ClassSpec>,
    normal_mix: Categorical<ClassSpec>,
}

impl PopulationSpec {
    /// Creates a population.
    ///
    /// `cancer_mix` and `normal_mix` are `(spec, weight)` pairs for the two
    /// ground-truth sides.
    ///
    /// # Errors
    ///
    /// [`SimError::Prob`] if either mix is empty or has invalid weights.
    pub fn new(
        prevalence: Probability,
        cancer_mix: Vec<(ClassSpec, f64)>,
        normal_mix: Vec<(ClassSpec, f64)>,
    ) -> Result<Self, SimError> {
        Ok(PopulationSpec {
            prevalence,
            cancer_mix: Categorical::new(cancer_mix)?,
            normal_mix: Categorical::new(normal_mix)?,
        })
    }

    /// The cancer prevalence.
    #[must_use]
    pub fn prevalence(&self) -> Probability {
        self.prevalence
    }

    /// A copy of the population with a different prevalence — the enriched
    /// trial set of §1 ("necessary to make the trial reasonably short").
    #[must_use]
    pub fn with_prevalence(&self, prevalence: Probability) -> Self {
        PopulationSpec {
            prevalence,
            ..self.clone()
        }
    }

    /// The weighted mix of cancer classes.
    #[must_use]
    pub fn cancer_mix(&self) -> &Categorical<ClassSpec> {
        &self.cancer_mix
    }

    /// A copy with the cancer-class weights multiplied per class — modelling
    /// a trial case set that *oversamples* certain classes (e.g. difficult
    /// cases chosen to be "interesting"), on top of prevalence enrichment.
    ///
    /// `multiplier` receives each class spec and its current weight and
    /// returns the new (unnormalised) weight.
    ///
    /// # Errors
    ///
    /// [`SimError::Prob`] if the resulting weights are invalid.
    pub fn with_cancer_mix_reweighted(
        &self,
        mut multiplier: impl FnMut(&ClassSpec, Probability) -> f64,
    ) -> Result<Self, SimError> {
        let cancer_mix = self.cancer_mix.reweighted(|spec, w| multiplier(spec, w))?;
        Ok(PopulationSpec {
            cancer_mix,
            ..self.clone()
        })
    }

    /// The weighted mix of normal classes.
    #[must_use]
    pub fn normal_mix(&self) -> &Categorical<ClassSpec> {
        &self.normal_mix
    }

    /// The interned universe of every class this population can emit,
    /// across both ground-truth sides. The simulation engine resolves each
    /// screened case against this universe so per-worker tallies can be
    /// dense arrays instead of keyed maps.
    #[must_use]
    pub fn universe(&self) -> ClassUniverse {
        ClassUniverse::from_names(
            self.cancer_mix
                .iter()
                .chain(self.normal_mix.iter())
                .map(|(spec, _)| spec.class.clone()),
        )
    }

    /// Validates every class spec in both mixes (see
    /// [`ClassSpec::validate`]).
    ///
    /// # Errors
    ///
    /// The first [`SimError::InvalidConfig`] found.
    pub fn validate(&self) -> Result<(), SimError> {
        for (spec, _) in self.cancer_mix.iter().chain(self.normal_mix.iter()) {
            spec.validate()?;
        }
        Ok(())
    }

    /// Samples one case.
    pub fn sample_case<R: Rng + ?Sized>(&self, id: u64, rng: &mut R) -> Case {
        let is_cancer = rng.gen::<f64>() < self.prevalence.value();
        let spec = if is_cancer {
            self.cancer_mix.sample(rng)
        } else {
            self.normal_mix.sample(rng)
        };
        let difficulty = spec.sample_difficulty(rng);
        let lesions = if is_cancer {
            let mut lesions = vec![sample_lesion(difficulty, rng)];
            // Extra lesions: geometric with mean (mean_lesions − 1).
            let extra_mean = spec.mean_lesions - 1.0;
            if extra_mean > 0.0 {
                let p_continue = extra_mean / (1.0 + extra_mean);
                while rng.gen::<f64>() < p_continue && lesions.len() < 16 {
                    lesions.push(sample_lesion(difficulty, rng));
                }
            }
            lesions
        } else {
            Vec::new()
        };
        Case {
            id,
            kind: if is_cancer {
                CaseKind::Cancer
            } else {
                CaseKind::Normal
            },
            class: spec.class.clone(),
            difficulty,
            lesions,
        }
    }

    /// Samples a *cancer* case unconditionally (used by harnesses that study
    /// false negatives only, like the paper's §2.3 restriction).
    pub fn sample_cancer_case<R: Rng + ?Sized>(&self, id: u64, rng: &mut R) -> Case {
        let spec = self.cancer_mix.sample(rng);
        let difficulty = spec.sample_difficulty(rng);
        let mut lesions = vec![sample_lesion(difficulty, rng)];
        let extra_mean = spec.mean_lesions - 1.0;
        if extra_mean > 0.0 {
            let p_continue = extra_mean / (1.0 + extra_mean);
            while rng.gen::<f64>() < p_continue && lesions.len() < 16 {
                lesions.push(sample_lesion(difficulty, rng));
            }
        }
        Case {
            id,
            kind: CaseKind::Cancer,
            class: spec.class.clone(),
            difficulty,
            lesions,
        }
    }
}

/// Lesion subtlety tracks the case difficulty with moderate noise.
fn sample_lesion<R: Rng + ?Sized>(difficulty: f64, rng: &mut R) -> Lesion {
    let noise = (rng.gen::<f64>() - 0.5) * 0.3;
    Lesion {
        subtlety: (difficulty + noise).clamp(0.0, 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec() -> PopulationSpec {
        PopulationSpec::new(
            Probability::new(0.008).unwrap(),
            vec![
                (ClassSpec::new("easy", 2.0, 5.0, 1.2).unwrap(), 0.9),
                (ClassSpec::new("difficult", 5.0, 2.0, 1.0).unwrap(), 0.1),
            ],
            vec![(ClassSpec::new("clear", 2.0, 8.0, 1.0).unwrap(), 1.0)],
        )
        .unwrap()
    }

    #[test]
    fn class_spec_validation() {
        assert!(ClassSpec::new("x", 0.0, 1.0, 1.0).is_err());
        assert!(ClassSpec::new("x", 1.0, -1.0, 1.0).is_err());
        assert!(ClassSpec::new("x", 1.0, 1.0, 0.5).is_err());
        assert!(ClassSpec::new("x", 1.0, 1.0, 1.0).is_ok());
    }

    #[test]
    fn mean_difficulty_reflects_shapes() {
        let easy = ClassSpec::new("easy", 2.0, 8.0, 1.0).unwrap();
        let hard = ClassSpec::new("hard", 8.0, 2.0, 1.0).unwrap();
        assert!(easy.mean_difficulty() < hard.mean_difficulty());
    }

    #[test]
    fn prevalence_respected() {
        let pop = spec();
        let mut rng = StdRng::seed_from_u64(13);
        let n = 200_000;
        let cancers = (0..n)
            .filter(|&i| pop.sample_case(i, &mut rng).is_cancer())
            .count();
        let rate = cancers as f64 / n as f64;
        assert!((rate - 0.008).abs() < 0.002, "{rate}");
    }

    #[test]
    fn cancer_cases_always_have_lesions() {
        let pop = spec();
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..1000 {
            let c = pop.sample_cancer_case(i, &mut rng);
            assert!(c.is_cancer());
            assert!(!c.lesions.is_empty());
            assert!((0.0..=1.0).contains(&c.difficulty));
            for l in &c.lesions {
                assert!((0.0..=1.0).contains(&l.subtlety));
            }
        }
    }

    #[test]
    fn normal_cases_have_no_lesions() {
        let pop = spec().with_prevalence(Probability::ZERO);
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..100 {
            let c = pop.sample_case(i, &mut rng);
            assert!(!c.is_cancer());
            assert!(c.lesions.is_empty());
            assert_eq!(c.class.name(), "clear");
        }
    }

    #[test]
    fn enrichment_changes_only_prevalence() {
        let pop = spec();
        let enriched = pop.with_prevalence(Probability::new(0.5).unwrap());
        assert_eq!(enriched.prevalence().value(), 0.5);
        assert_eq!(enriched.cancer_mix(), pop.cancer_mix());
        let mut rng = StdRng::seed_from_u64(99);
        let n = 20_000;
        let cancers = (0..n)
            .filter(|&i| enriched.sample_case(i, &mut rng).is_cancer())
            .count();
        assert!((cancers as f64 / n as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn difficult_class_cases_are_harder_on_average() {
        let pop = spec().with_prevalence(Probability::ONE);
        let mut rng = StdRng::seed_from_u64(17);
        let mut easy_sum = (0.0, 0u32);
        let mut hard_sum = (0.0, 0u32);
        for i in 0..20_000 {
            let c = pop.sample_case(i, &mut rng);
            if c.class.name() == "easy" {
                easy_sum = (easy_sum.0 + c.difficulty, easy_sum.1 + 1);
            } else {
                hard_sum = (hard_sum.0 + c.difficulty, hard_sum.1 + 1);
            }
        }
        let easy_mean = easy_sum.0 / f64::from(easy_sum.1);
        let hard_mean = hard_sum.0 / f64::from(hard_sum.1);
        assert!(hard_mean > easy_mean + 0.2, "{easy_mean} vs {hard_mean}");
        // Class mix ~ 90/10.
        let frac_easy = f64::from(easy_sum.1) / 20_000.0;
        assert!((frac_easy - 0.9).abs() < 0.02, "{frac_easy}");
    }

    #[test]
    fn extra_lesions_follow_mean() {
        let pop = PopulationSpec::new(
            Probability::ONE,
            vec![(ClassSpec::new("multi", 2.0, 2.0, 2.0).unwrap(), 1.0)],
            vec![(ClassSpec::new("clear", 2.0, 8.0, 1.0).unwrap(), 1.0)],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let n = 20_000;
        let total: usize = (0..n)
            .map(|i| pop.sample_case(i, &mut rng).lesions.len())
            .sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "{mean}");
    }

    #[test]
    fn empty_mix_rejected() {
        assert!(PopulationSpec::new(Probability::HALF, vec![], vec![]).is_err());
    }

    #[test]
    fn universe_spans_both_sides_sorted() {
        let u = spec().universe();
        assert_eq!(u.len(), 3);
        let names: Vec<&str> = u.classes().iter().map(|c| c.name()).collect();
        assert_eq!(names, ["clear", "difficult", "easy"]);
        // Every sampled case resolves in the universe.
        let pop = spec();
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..500 {
            let case = pop.sample_case(i, &mut rng);
            assert!(u.contains(case.class.name()), "{}", case.class);
        }
    }
}
