//! Property-based tests of the simulator: empirical frequencies must track
//! the configured probabilities, and the behavioural mechanisms must move
//! outcomes in their documented directions over random configurations.

use hmdiv_core::ClassId;
use hmdiv_sim::cadt::{Cadt, CadtOutput};
use hmdiv_sim::case::{Case, CaseKind, Lesion};
use hmdiv_sim::reader::Reader;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn case_with(subtlety: f64, difficulty: f64) -> Case {
    Case {
        id: 0,
        kind: CaseKind::Cancer,
        class: ClassId::new("t"),
        difficulty,
        lesions: vec![Lesion { subtlety }],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cadt_detection_frequency_matches_probability(
        operating in 0.1..=0.9f64,
        subtlety in 0.0..=1.0f64,
        difficulty in 0.0..=1.0f64,
        seed in 0u64..500
    ) {
        let cadt = Cadt::new(operating, 6.0, 0.35, 1.0).unwrap();
        let case = case_with(subtlety, difficulty);
        let p = cadt.p_prompt_lesion(subtlety, difficulty).value();
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 4_000;
        let hits = (0..n)
            .filter(|_| cadt.process(&case, &mut rng).detected_cancer())
            .count();
        let freq = hits as f64 / n as f64;
        // 4k draws: 4σ ≈ 0.032 at worst.
        prop_assert!((freq - p).abs() < 0.04, "{freq} vs {p}");
    }

    #[test]
    fn cadt_monotone_in_operating(
        lo in 0.0..=0.45f64,
        delta in 0.1..=0.5f64,
        subtlety in 0.0..=1.0f64,
        difficulty in 0.0..=1.0f64
    ) {
        let hi = (lo + delta).min(1.0);
        let a = Cadt::new(lo, 6.0, 0.35, 1.0).unwrap();
        let b = Cadt::new(hi, 6.0, 0.35, 1.0).unwrap();
        prop_assert!(
            b.p_prompt_lesion(subtlety, difficulty).value()
                >= a.p_prompt_lesion(subtlety, difficulty).value() - 1e-12
        );
    }

    #[test]
    fn reader_detection_monotone_in_subtlety(
        s_lo in 0.0..=0.5f64,
        delta in 0.1..=0.5f64,
        difficulty in 0.0..=1.0f64
    ) {
        let s_hi = (s_lo + delta).min(1.0);
        let r = Reader::expert();
        prop_assert!(
            r.p_notice_lesion(s_hi, difficulty).value()
                <= r.p_notice_lesion(s_lo, difficulty).value() + 1e-12
        );
    }

    #[test]
    fn prompt_benefit_never_hurts_detection(
        subtlety in 0.0..=1.0f64,
        difficulty in 0.0..=1.0f64,
        trust in 0.0..=1.0f64,
        seed in 0u64..200
    ) {
        // A truly-prompted case is never detected LESS often than the same
        // case read unaided, for a reader without automation bias.
        let reader = Reader { prompt_trust: trust, unprompted_neglect: 0.0, ..Reader::expert() };
        let case = case_with(subtlety, difficulty);
        let prompted = CadtOutput { prompted_lesions: vec![true], spurious_prompts: 0 };
        let n = 4_000;
        let mut rng = StdRng::seed_from_u64(seed);
        let unaided = (0..n)
            .filter(|_| reader.read(&case, None, &mut rng).noticed_lesion)
            .count() as f64;
        let mut rng = StdRng::seed_from_u64(seed);
        let aided = (0..n)
            .filter(|_| reader.read(&case, Some(&prompted), &mut rng).noticed_lesion)
            .count() as f64;
        // Allow Monte-Carlo noise in the null direction.
        prop_assert!(aided >= unaided - 4.0 * (n as f64).sqrt() / 2.0,
            "aided {aided} vs unaided {unaided}");
    }

    #[test]
    fn table_driven_class_shares_track_profile(w in 0.05..=0.95f64, seed in 0u64..200) {
        use hmdiv_core::{ClassParams, DemandProfile, ModelParams, SequentialModel};
        use hmdiv_prob::Probability;
        let p = |v: f64| Probability::new(v).unwrap();
        let model = SequentialModel::new(
            ModelParams::builder()
                .class("a", ClassParams::new(p(0.3), p(0.2), p(0.6)))
                .class("b", ClassParams::new(p(0.5), p(0.4), p(0.8)))
                .build()
                .unwrap(),
        );
        let profile = DemandProfile::builder().class("a", w).class("b", 1.0 - w).build().unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let counts =
            hmdiv_sim::table_driven::simulate(&model, &profile, 20_000, &mut rng).unwrap();
        let share = counts
            .stratum(&ClassId::new("a"))
            .map(|t| t.total() as f64 / 20_000.0)
            .unwrap_or(0.0);
        prop_assert!((share - w).abs() < 0.02, "{share} vs {w}");
    }
}
