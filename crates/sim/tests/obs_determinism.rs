//! Pins the tentpole invariant of the observability layer: turning metrics
//! on changes **no simulated result bit**. Instrumented and uninstrumented
//! runs execute the same `(seed, case id)` RNG streams and the same fold;
//! the metrics ride alongside as timing-only side data.

use hmdiv_sim::engine::{SimConfig, Simulation, SimulationReport};
use hmdiv_sim::scenario;

fn run(cases: u64, seed: u64, threads: usize) -> SimulationReport {
    let world = scenario::trial_world().expect("scenario builds");
    Simulation::new(
        world,
        SimConfig {
            cases,
            seed,
            threads,
        },
    )
    .run()
    .expect("run succeeds")
}

#[test]
fn instrumented_runs_are_bit_identical_to_uninstrumented() {
    // One process-global toggle, so exercise both states in one test rather
    // than racing parallel test threads over it.
    hmdiv_obs::set_enabled(false);
    let baseline: Vec<SimulationReport> = [1usize, 2, 7]
        .iter()
        .map(|&threads| run(4000, 99, threads))
        .collect();
    for (a, b) in baseline.iter().zip(baseline.iter().skip(1)) {
        assert_eq!(a, b, "uninstrumented runs must be thread-count invariant");
    }

    hmdiv_obs::set_enabled(true);
    hmdiv_obs::reset();
    for (i, &threads) in [1usize, 2, 7].iter().enumerate() {
        let instrumented = run(4000, 99, threads);
        assert_eq!(
            instrumented, baseline[i],
            "metrics changed a simulated result at threads={threads}"
        );
    }
    // The instrumented runs must actually have recorded something — this
    // test is vacuous if observability silently stayed off.
    let snap = hmdiv_obs::snapshot();
    assert_eq!(snap.counters["sim.engine.cases"], 3 * 4000);
    assert_eq!(snap.counters["sim.engine.runs"], 3);
    assert!(snap.histograms.contains_key("sim.engine.run"));
    hmdiv_obs::set_enabled(false);
}
