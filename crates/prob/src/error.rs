use std::error::Error;
use std::fmt;

/// Error type for every fallible operation in this crate.
///
/// All variants carry enough context to diagnose the offending input without
/// a debugger; the `Display` output is lowercase and concise per C-GOOD-ERR.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProbError {
    /// A value expected to be a probability fell outside `[0, 1]` or was NaN.
    OutOfRange {
        /// The offending value.
        value: f64,
        /// Description of what the value was supposed to be.
        context: &'static str,
    },
    /// A collection that must be non-empty was empty.
    Empty {
        /// Description of the collection.
        context: &'static str,
    },
    /// Weights of a distribution were invalid (negative, NaN, or all zero).
    InvalidWeights {
        /// Description of the failure.
        detail: String,
    },
    /// A count pair was inconsistent (e.g. successes greater than trials).
    InvalidCounts {
        /// Number of successes supplied.
        successes: u64,
        /// Number of trials supplied.
        trials: u64,
    },
    /// A confidence level was not strictly inside `(0, 1)`.
    InvalidConfidence {
        /// The offending level.
        level: f64,
    },
    /// A shape parameter of a distribution was not strictly positive.
    InvalidShape {
        /// The offending value.
        value: f64,
        /// Name of the parameter.
        name: &'static str,
    },
    /// Two paired sequences had different lengths.
    LengthMismatch {
        /// Length of the first sequence.
        left: usize,
        /// Length of the second sequence.
        right: usize,
    },
}

impl fmt::Display for ProbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbError::OutOfRange { value, context } => {
                write!(f, "{context} must lie in [0, 1], got {value}")
            }
            ProbError::Empty { context } => write!(f, "{context} must not be empty"),
            ProbError::InvalidWeights { detail } => write!(f, "invalid weights: {detail}"),
            ProbError::InvalidCounts { successes, trials } => {
                write!(
                    f,
                    "invalid counts: {successes} successes out of {trials} trials"
                )
            }
            ProbError::InvalidConfidence { level } => {
                write!(
                    f,
                    "confidence level must lie strictly in (0, 1), got {level}"
                )
            }
            ProbError::InvalidShape { value, name } => {
                write!(
                    f,
                    "shape parameter {name} must be strictly positive, got {value}"
                )
            }
            ProbError::LengthMismatch { left, right } => {
                write!(f, "paired sequences differ in length: {left} vs {right}")
            }
        }
    }
}

impl Error for ProbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errors = [
            ProbError::OutOfRange {
                value: 1.5,
                context: "probability",
            },
            ProbError::Empty { context: "sample" },
            ProbError::InvalidWeights {
                detail: "all weights zero".into(),
            },
            ProbError::InvalidCounts {
                successes: 5,
                trials: 3,
            },
            ProbError::InvalidConfidence { level: 1.0 },
            ProbError::InvalidShape {
                value: -1.0,
                name: "alpha",
            },
            ProbError::LengthMismatch { left: 3, right: 4 },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProbError>();
    }
}
