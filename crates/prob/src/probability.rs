use std::fmt;
use std::ops::{Mul, Not};

use serde::{Deserialize, Serialize};

use crate::odds::Odds;
use crate::ProbError;

/// A probability: a finite `f64` guaranteed to lie in `[0, 1]`.
///
/// Every event probability in the `hmdiv` workspace — machine failure
/// `P(Mf)`, conditional human failure `P(Hf|Ms)`, demand-class weights — is a
/// `Probability`, so invalid values are rejected at the boundary once rather
/// than checked in every formula (C-NEWTYPE, C-VALIDATE).
///
/// Multiplication of two probabilities (the probability of the conjunction of
/// independent events) is closed and available through `*`. Addition is *not*
/// closed, so it is exposed as the fallible [`Probability::try_add`] and the
/// disjunction helpers [`Probability::or_independent`] and
/// [`Probability::mix`], which are closed.
///
/// # Example
///
/// ```
/// use hmdiv_prob::Probability;
///
/// # fn main() -> Result<(), hmdiv_prob::ProbError> {
/// let p_mf = Probability::new(0.07)?;
/// let p_hf = Probability::new(0.18)?;
/// // probability that both machine and human fail, were they independent:
/// let both = p_mf * p_hf;
/// assert!((both.value() - 0.0126).abs() < 1e-12);
/// // complement via `!`:
/// assert!(((!p_mf).value() - 0.93).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
// Derived `PartialOrd` expands to `partial_cmp`, which clippy.toml disallows
// for hand-written float comparisons; the derive itself is fine.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(try_from = "f64", into = "f64")]
pub struct Probability(f64);

impl Probability {
    /// The impossible event, probability `0`.
    pub const ZERO: Probability = Probability(0.0);
    /// The certain event, probability `1`.
    pub const ONE: Probability = Probability(1.0);
    /// A fair coin, probability `0.5`.
    pub const HALF: Probability = Probability(0.5);

    /// Creates a probability from a raw value.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::OutOfRange`] if `value` is NaN or outside
    /// `[0, 1]`.
    pub fn new(value: f64) -> Result<Self, ProbError> {
        if value.is_nan() || !(0.0..=1.0).contains(&value) {
            return Err(ProbError::OutOfRange {
                value,
                context: "probability",
            });
        }
        Ok(Probability(value))
    }

    /// Creates a probability, clamping the value into `[0, 1]`.
    ///
    /// Useful when a value is known to be a probability up to floating-point
    /// round-off (e.g. `1.0 - p - q` computed from probabilities that sum to
    /// at most one).
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN: a NaN is a logic error, not round-off.
    #[must_use]
    pub fn clamped(value: f64) -> Self {
        assert!(!value.is_nan(), "cannot clamp NaN into a probability");
        Probability(value.clamp(0.0, 1.0))
    }

    /// Creates the probability `k / n` of drawing one of `k` favourable
    /// outcomes out of `n` equally likely ones.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidCounts`] if `k > n` or `n == 0`.
    pub fn from_ratio(k: u64, n: u64) -> Result<Self, ProbError> {
        if n == 0 || k > n {
            return Err(ProbError::InvalidCounts {
                successes: k,
                trials: n,
            });
        }
        Ok(Probability(k as f64 / n as f64))
    }

    /// Returns the raw `f64` value.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Returns the complement `1 − p` (also available through `!`).
    #[must_use]
    pub fn complement(self) -> Self {
        Probability(1.0 - self.0)
    }

    /// Fallible addition: `p + q` as the probability of the union of two
    /// *mutually exclusive* events.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::OutOfRange`] if the sum exceeds `1` by more than
    /// floating-point round-off (`1e-9`); sums within round-off are clamped.
    pub fn try_add(self, other: Self) -> Result<Self, ProbError> {
        let sum = self.0 + other.0;
        if sum > 1.0 + 1e-9 {
            return Err(ProbError::OutOfRange {
                value: sum,
                context: "sum of probabilities",
            });
        }
        Ok(Probability(sum.min(1.0)))
    }

    /// The probability that at least one of two *independent* events occurs:
    /// `1 − (1 − p)(1 − q)`.
    ///
    /// This is the 1-out-of-2 parallel-redundancy law used by the paper's
    /// Fig. 2 detection stage.
    #[must_use]
    pub fn or_independent(self, other: Self) -> Self {
        Probability(1.0 - (1.0 - self.0) * (1.0 - other.0))
    }

    /// Convex mixture: `w·p + (1 − w)·q`, the law of total probability over a
    /// binary partition with weight `w` on `self`.
    #[must_use]
    pub fn mix(self, other: Self, weight: Probability) -> Self {
        let w = weight.0;
        Probability::clamped(w * self.0 + (1.0 - w) * other.0)
    }

    /// Converts to odds `p / (1 − p)`.
    ///
    /// `Probability::ONE` maps to [`Odds::infinite`].
    #[must_use]
    pub fn to_odds(self) -> Odds {
        Odds::from_probability(self)
    }

    /// The log-odds (logit) of the probability; `±∞` at the endpoints.
    #[must_use]
    pub fn logit(self) -> f64 {
        (self.0 / (1.0 - self.0)).ln()
    }

    /// Inverse of [`Probability::logit`]: the standard logistic function.
    ///
    /// Accepts any finite or infinite `x`; NaN input panics.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    #[must_use]
    pub fn from_logit(x: f64) -> Self {
        assert!(!x.is_nan(), "logit input must not be NaN");
        if x == f64::INFINITY {
            return Probability::ONE;
        }
        if x == f64::NEG_INFINITY {
            return Probability::ZERO;
        }
        // Numerically stable logistic.
        let p = if x >= 0.0 {
            1.0 / (1.0 + (-x).exp())
        } else {
            let e = x.exp();
            e / (1.0 + e)
        };
        Probability::clamped(p)
    }

    /// Returns `true` if the probability is exactly `0`.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Returns `true` if the probability is exactly `1`.
    #[must_use]
    pub fn is_one(self) -> bool {
        self.0 == 1.0
    }

    /// Absolute difference `|p − q|`, itself a probability.
    #[must_use]
    pub fn abs_diff(self, other: Self) -> Self {
        Probability((self.0 - other.0).abs())
    }

    /// Returns the larger of two probabilities.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two probabilities.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Default for Probability {
    /// The default probability is `0` (the impossible event).
    fn default() -> Self {
        Probability::ZERO
    }
}

impl fmt::Display for Probability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl Mul for Probability {
    type Output = Probability;

    /// Probability of the conjunction of two independent events.
    fn mul(self, rhs: Self) -> Self {
        Probability(self.0 * rhs.0)
    }
}

impl Not for Probability {
    type Output = Probability;

    /// The complement `1 − p`.
    fn not(self) -> Self {
        self.complement()
    }
}

impl TryFrom<f64> for Probability {
    type Error = ProbError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Probability::new(value)
    }
}

impl From<Probability> for f64 {
    fn from(p: Probability) -> f64 {
        p.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    #[test]
    fn new_accepts_endpoints() {
        assert_eq!(p(0.0), Probability::ZERO);
        assert_eq!(p(1.0), Probability::ONE);
    }

    #[test]
    fn new_rejects_out_of_range() {
        assert!(Probability::new(-0.001).is_err());
        assert!(Probability::new(1.001).is_err());
        assert!(Probability::new(f64::NAN).is_err());
        assert!(Probability::new(f64::INFINITY).is_err());
    }

    #[test]
    fn clamped_clamps() {
        assert_eq!(Probability::clamped(-0.5), Probability::ZERO);
        assert_eq!(Probability::clamped(1.5), Probability::ONE);
        assert_eq!(Probability::clamped(0.25).value(), 0.25);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn clamped_panics_on_nan() {
        let _ = Probability::clamped(f64::NAN);
    }

    #[test]
    fn from_ratio_basic() {
        assert_eq!(Probability::from_ratio(1, 4).unwrap().value(), 0.25);
        assert_eq!(Probability::from_ratio(0, 4).unwrap(), Probability::ZERO);
        assert_eq!(Probability::from_ratio(4, 4).unwrap(), Probability::ONE);
        assert!(Probability::from_ratio(5, 4).is_err());
        assert!(Probability::from_ratio(0, 0).is_err());
    }

    #[test]
    fn complement_involutes() {
        let x = p(0.37);
        assert!((x.complement().complement().value() - 0.37).abs() < 1e-15);
        assert_eq!(!Probability::ZERO, Probability::ONE);
    }

    #[test]
    fn try_add_respects_bound() {
        assert_eq!(p(0.3).try_add(p(0.4)).unwrap().value(), 0.7);
        assert!(p(0.7).try_add(p(0.4)).is_err());
        // Round-off-level overshoot is clamped, not rejected.
        let a = p(0.1 + 0.2); // 0.30000000000000004
        let b = p(0.7);
        assert_eq!(a.try_add(b).unwrap(), Probability::ONE);
    }

    #[test]
    fn or_independent_matches_formula() {
        let got = p(0.07).or_independent(p(0.18));
        assert!((got.value() - (1.0 - 0.93 * 0.82)).abs() < 1e-15);
        // An impossible event is the identity of `or`.
        assert_eq!(p(0.4).or_independent(Probability::ZERO).value(), 0.4);
        // A certain event absorbs.
        assert_eq!(p(0.4).or_independent(Probability::ONE), Probability::ONE);
    }

    #[test]
    fn mix_interpolates() {
        let a = p(0.2);
        let b = p(0.8);
        assert_eq!(a.mix(b, Probability::ONE), a);
        assert_eq!(a.mix(b, Probability::ZERO), b);
        assert!((a.mix(b, Probability::HALF).value() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn logit_roundtrip() {
        for &v in &[0.001, 0.07, 0.5, 0.93, 0.999] {
            let back = Probability::from_logit(p(v).logit());
            assert!((back.value() - v).abs() < 1e-12, "{v}");
        }
        assert_eq!(Probability::from_logit(f64::INFINITY), Probability::ONE);
        assert_eq!(
            Probability::from_logit(f64::NEG_INFINITY),
            Probability::ZERO
        );
        assert_eq!(Probability::ONE.logit(), f64::INFINITY);
        assert_eq!(Probability::ZERO.logit(), f64::NEG_INFINITY);
    }

    #[test]
    fn multiplication_is_conjunction() {
        assert!(((p(0.5) * p(0.5)).value() - 0.25).abs() < 1e-15);
        assert_eq!(p(0.3) * Probability::ZERO, Probability::ZERO);
        assert_eq!((p(0.3) * Probability::ONE).value(), 0.3);
    }

    #[test]
    fn ordering_and_minmax() {
        assert!(p(0.2) < p(0.3));
        assert_eq!(p(0.2).max(p(0.3)).value(), 0.3);
        assert_eq!(p(0.2).min(p(0.3)).value(), 0.2);
        assert_eq!(p(0.2).abs_diff(p(0.5)).value(), 0.3);
    }

    #[test]
    fn serde_roundtrip_and_validation() {
        let x = p(0.42);
        let json = serde_json_like_roundtrip(x);
        assert_eq!(json, x);
    }

    // Avoids a serde_json dev-dependency: drive the serde impls through the
    // f64 conversions they are declared with.
    fn serde_json_like_roundtrip(x: Probability) -> Probability {
        Probability::try_from(f64::from(x)).unwrap()
    }
}
