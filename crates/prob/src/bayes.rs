//! Bayesian estimation for probability parameters: the Beta distribution and
//! beta–binomial conjugate updating.
//!
//! The paper's conclusions stress that trial data for rare classes of cases
//! is scarce; Bayesian updating with an explicit prior is the standard
//! defensible way to combine scarce trial counts with prior knowledge (e.g.
//! published reader-performance studies) into the per-class parameters the
//! models consume.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::special::{beta_quantile, incomplete_beta, ln_beta};
use crate::{ProbError, Probability};

/// A Beta(α, β) distribution over a probability parameter.
///
/// # Example
///
/// ```
/// use hmdiv_prob::bayes::Beta;
///
/// # fn main() -> Result<(), hmdiv_prob::ProbError> {
/// // Jeffreys prior, updated with 7 failures in 100 cases:
/// let posterior = Beta::jeffreys().updated(7, 93);
/// assert!((posterior.mean().value() - 7.5 / 101.0).abs() < 1e-12);
/// let (lo, hi) = posterior.credible_interval(0.95)?;
/// assert!(lo.value() < 0.07 && hi.value() > 0.07);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Beta {
    alpha: f64,
    beta: f64,
}

impl Beta {
    /// Creates a Beta distribution with the given shape parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidShape`] unless both parameters are
    /// strictly positive and finite.
    pub fn new(alpha: f64, beta: f64) -> Result<Self, ProbError> {
        if alpha.is_nan() || alpha <= 0.0 || alpha.is_infinite() {
            return Err(ProbError::InvalidShape {
                value: alpha,
                name: "alpha",
            });
        }
        if beta.is_nan() || beta <= 0.0 || beta.is_infinite() {
            return Err(ProbError::InvalidShape {
                value: beta,
                name: "beta",
            });
        }
        Ok(Beta { alpha, beta })
    }

    /// The uniform prior `Beta(1, 1)`.
    #[must_use]
    pub fn uniform() -> Self {
        Beta {
            alpha: 1.0,
            beta: 1.0,
        }
    }

    /// The Jeffreys prior `Beta(½, ½)`.
    #[must_use]
    pub fn jeffreys() -> Self {
        Beta {
            alpha: 0.5,
            beta: 0.5,
        }
    }

    /// The α shape parameter.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The β shape parameter.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Posterior after observing `successes` occurrences and `failures`
    /// non-occurrences (conjugate update).
    #[must_use]
    pub fn updated(&self, successes: u64, failures: u64) -> Beta {
        Beta {
            alpha: self.alpha + successes as f64,
            beta: self.beta + failures as f64,
        }
    }

    /// The mean `α / (α + β)`.
    #[must_use]
    pub fn mean(&self) -> Probability {
        Probability::clamped(self.alpha / (self.alpha + self.beta))
    }

    /// The mode, defined for `α, β > 1`; `None` otherwise.
    #[must_use]
    pub fn mode(&self) -> Option<Probability> {
        if self.alpha > 1.0 && self.beta > 1.0 {
            Some(Probability::clamped(
                (self.alpha - 1.0) / (self.alpha + self.beta - 2.0),
            ))
        } else {
            None
        }
    }

    /// The variance `αβ / ((α+β)²(α+β+1))`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        let s = self.alpha + self.beta;
        self.alpha * self.beta / (s * s * (s + 1.0))
    }

    /// The cumulative distribution function at `x`.
    #[must_use]
    pub fn cdf(&self, x: Probability) -> Probability {
        Probability::clamped(incomplete_beta(self.alpha, self.beta, x.value()))
    }

    /// The probability density function at `x`.
    #[must_use]
    pub fn pdf(&self, x: Probability) -> f64 {
        let x = x.value();
        if x == 0.0 || x == 1.0 {
            // Density may be infinite at the endpoints; report 0 for the
            // measure-zero endpoints of the open support when shape > 1,
            // and +∞ when the density genuinely diverges.
            if (x == 0.0 && self.alpha < 1.0) || (x == 1.0 && self.beta < 1.0) {
                return f64::INFINITY;
            }
            if (x == 0.0 && self.alpha == 1.0) || (x == 1.0 && self.beta == 1.0) {
                return (-ln_beta(self.alpha, self.beta)).exp();
            }
            return 0.0;
        }
        ((self.alpha - 1.0) * x.ln() + (self.beta - 1.0) * (1.0 - x).ln()
            - ln_beta(self.alpha, self.beta))
        .exp()
    }

    /// The `q`-th quantile.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::OutOfRange`] if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Result<Probability, ProbError> {
        if q.is_nan() || !(0.0..=1.0).contains(&q) {
            return Err(ProbError::OutOfRange {
                value: q,
                context: "quantile order",
            });
        }
        Ok(Probability::clamped(beta_quantile(
            self.alpha, self.beta, q,
        )))
    }

    /// An equal-tailed credible interval at the given `level`.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidConfidence`] if `level` is not strictly
    /// inside `(0, 1)`.
    pub fn credible_interval(&self, level: f64) -> Result<(Probability, Probability), ProbError> {
        if !(level > 0.0 && level < 1.0) {
            return Err(ProbError::InvalidConfidence { level });
        }
        let alpha_tail = (1.0 - level) / 2.0;
        Ok((self.quantile(alpha_tail)?, self.quantile(1.0 - alpha_tail)?))
    }

    /// Draws a sample using Jöhnk/Cheng-style gamma ratio sampling
    /// (two `Gamma(shape, 1)` draws via Marsaglia–Tsang).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Probability {
        let x = sample_gamma(self.alpha, rng);
        let y = sample_gamma(self.beta, rng);
        Probability::clamped(x / (x + y))
    }
}

/// Marsaglia–Tsang gamma sampler, shape `k > 0`, scale 1.
fn sample_gamma<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
    if shape < 1.0 {
        // Boost: Gamma(k) = Gamma(k+1) · U^{1/k}
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return sample_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller.
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = 1.0 + c * z;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * z * z + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn new_validates_shapes() {
        assert!(Beta::new(0.0, 1.0).is_err());
        assert!(Beta::new(1.0, -1.0).is_err());
        assert!(Beta::new(f64::NAN, 1.0).is_err());
        assert!(Beta::new(f64::INFINITY, 1.0).is_err());
        assert!(Beta::new(0.5, 0.5).is_ok());
    }

    #[test]
    fn conjugate_update_moves_mean_toward_data() {
        let prior = Beta::uniform();
        let posterior = prior.updated(41, 59); // 41% observed
        let m = posterior.mean().value();
        assert!((m - 42.0 / 102.0).abs() < 1e-12);
        // More data pulls the mean closer to the empirical rate.
        let tighter = prior.updated(410, 590);
        assert!((tighter.mean().value() - 0.41).abs() < (m - 0.41).abs());
    }

    #[test]
    fn moments_of_uniform() {
        let u = Beta::uniform();
        assert_eq!(u.mean(), Probability::HALF);
        assert!((u.variance() - 1.0 / 12.0).abs() < 1e-12);
        assert!(u.mode().is_none());
    }

    #[test]
    fn mode_when_defined() {
        let b = Beta::new(3.0, 2.0).unwrap();
        assert!((b.mode().unwrap().value() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_quantile_inverse() {
        let b = Beta::new(8.0, 93.0).unwrap();
        for &q in &[0.025, 0.5, 0.975] {
            let x = b.quantile(q).unwrap();
            assert!((b.cdf(x).value() - q).abs() < 1e-9);
        }
    }

    #[test]
    fn credible_interval_narrows_with_data() {
        let few = Beta::jeffreys().updated(7, 93);
        let many = Beta::jeffreys().updated(70, 930);
        let (lo1, hi1) = few.credible_interval(0.95).unwrap();
        let (lo2, hi2) = many.credible_interval(0.95).unwrap();
        assert!(hi2.value() - lo2.value() < hi1.value() - lo1.value());
        assert!(few.credible_interval(1.0).is_err());
    }

    #[test]
    fn pdf_integrates_to_one() {
        let b = Beta::new(2.5, 4.0).unwrap();
        // Trapezoidal rule on a fine grid.
        let n = 20_000;
        let mut sum = 0.0;
        for i in 0..n {
            let x0 = i as f64 / n as f64;
            let x1 = (i + 1) as f64 / n as f64;
            sum += (b.pdf(Probability::clamped(x0)) + b.pdf(Probability::clamped(x1))) / 2.0
                * (x1 - x0);
        }
        assert!((sum - 1.0).abs() < 1e-5, "{sum}");
    }

    #[test]
    fn pdf_endpoint_conventions() {
        assert!((Beta::uniform().pdf(Probability::ZERO) - 1.0).abs() < 1e-12);
        assert_eq!(Beta::new(2.0, 2.0).unwrap().pdf(Probability::ZERO), 0.0);
        assert_eq!(Beta::jeffreys().pdf(Probability::ZERO), f64::INFINITY);
    }

    #[test]
    fn sampling_matches_moments() {
        let b = Beta::new(3.0, 7.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2024);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = b.sample(&mut rng).value();
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - 0.3).abs() < 0.005, "mean {mean}");
        assert!(
            (var - b.variance()).abs() < 0.002,
            "var {var} vs {}",
            b.variance()
        );
    }

    #[test]
    fn sampling_small_shapes() {
        // Shape < 1 exercises the boost branch.
        let b = Beta::jeffreys();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| b.sample(&mut rng).value()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }

    #[test]
    fn quantile_rejects_bad_order() {
        let b = Beta::uniform();
        assert!(b.quantile(-0.1).is_err());
        assert!(b.quantile(1.1).is_err());
        assert!(b.quantile(f64::NAN).is_err());
    }
}
