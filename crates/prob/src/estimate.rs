//! Binomial parameter estimation: point estimates and confidence intervals.
//!
//! The trial harness (`hmdiv-trial`) observes, for each class of cases,
//! counts such as "the machine failed on 14 of 200 difficult cases" and must
//! turn them into the per-class probabilities the paper's models consume —
//! with honest uncertainty. This module provides the five standard interval
//! methods for a binomial proportion, chosen because they behave differently
//! exactly where screening data lives (small counts, probabilities near 0).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::special::{beta_quantile, normal_quantile};
use crate::{ProbError, Probability};

/// Which confidence-interval construction to use for a binomial proportion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum CiMethod {
    /// The classical normal approximation `p̂ ± z·√(p̂(1−p̂)/n)`.
    ///
    /// Simple but badly behaved for small `n` or extreme `p̂` (can produce
    /// zero-width intervals at `p̂ ∈ {0, 1}`); included as the baseline.
    Wald,
    /// Wilson score interval: inverts the score test. Good coverage even for
    /// small counts; the recommended default.
    Wilson,
    /// Clopper–Pearson "exact" interval from beta quantiles. Conservative
    /// (coverage ≥ nominal).
    ClopperPearson,
    /// Agresti–Coull: Wald computed after adding `z²/2` pseudo-successes and
    /// failures.
    AgrestiCoull,
    /// Bayesian credible interval under the Jeffreys prior `Beta(½, ½)`.
    Jeffreys,
}

impl fmt::Display for CiMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CiMethod::Wald => "wald",
            CiMethod::Wilson => "wilson",
            CiMethod::ClopperPearson => "clopper-pearson",
            CiMethod::AgrestiCoull => "agresti-coull",
            CiMethod::Jeffreys => "jeffreys",
        };
        f.write_str(name)
    }
}

/// A two-sided confidence interval for a probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    lo: Probability,
    hi: Probability,
    level: f64,
}

impl ConfidenceInterval {
    /// Builds an interval, validating that `lo <= hi` and `level ∈ (0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidConfidence`] for a bad level, or
    /// [`ProbError::OutOfRange`] if `lo > hi`.
    pub fn new(lo: Probability, hi: Probability, level: f64) -> Result<Self, ProbError> {
        if !(level > 0.0 && level < 1.0) {
            return Err(ProbError::InvalidConfidence { level });
        }
        if lo > hi {
            return Err(ProbError::OutOfRange {
                value: lo.value(),
                context: "interval lower bound (exceeds upper bound)",
            });
        }
        Ok(ConfidenceInterval { lo, hi, level })
    }

    /// The lower bound.
    #[must_use]
    pub fn lo(&self) -> Probability {
        self.lo
    }

    /// The upper bound.
    #[must_use]
    pub fn hi(&self) -> Probability {
        self.hi
    }

    /// The nominal confidence level (e.g. `0.95`).
    #[must_use]
    pub fn level(&self) -> f64 {
        self.level
    }

    /// The width `hi − lo`.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi.value() - self.lo.value()
    }

    /// Whether the interval contains `p`.
    #[must_use]
    pub fn contains(&self, p: Probability) -> bool {
        self.lo <= p && p <= self.hi
    }

    /// The midpoint of the interval.
    #[must_use]
    pub fn midpoint(&self) -> Probability {
        Probability::clamped((self.lo.value() + self.hi.value()) / 2.0)
    }
}

impl fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.6}, {:.6}] @ {:.0}%",
            self.lo.value(),
            self.hi.value(),
            self.level * 100.0
        )
    }
}

/// A binomial observation: `successes` out of `trials`.
///
/// "Success" here means *the event being counted occurred* — in this
/// workspace the counted event is usually a failure (e.g. a machine false
/// negative), so read it as "occurrences".
///
/// # Example
///
/// ```
/// use hmdiv_prob::estimate::{BinomialEstimate, CiMethod};
///
/// # fn main() -> Result<(), hmdiv_prob::ProbError> {
/// let est = BinomialEstimate::new(82, 200)?;
/// assert!((est.point().value() - 0.41).abs() < 1e-12);
/// let wilson = est.interval(CiMethod::Wilson, 0.95)?;
/// let exact = est.interval(CiMethod::ClopperPearson, 0.95)?;
/// // Clopper–Pearson is conservative: at least as wide as Wilson.
/// assert!(exact.width() >= wilson.width() - 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BinomialEstimate {
    successes: u64,
    trials: u64,
}

impl BinomialEstimate {
    /// Creates an estimate from observed counts.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidCounts`] if `trials == 0` or
    /// `successes > trials`.
    pub fn new(successes: u64, trials: u64) -> Result<Self, ProbError> {
        if trials == 0 || successes > trials {
            return Err(ProbError::InvalidCounts { successes, trials });
        }
        Ok(BinomialEstimate { successes, trials })
    }

    /// The observed number of occurrences.
    #[must_use]
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// The number of trials.
    #[must_use]
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// The maximum-likelihood point estimate `k / n`.
    #[must_use]
    pub fn point(&self) -> Probability {
        Probability::clamped(self.successes as f64 / self.trials as f64)
    }

    /// The estimated standard error `√(p̂(1−p̂)/n)`.
    #[must_use]
    pub fn standard_error(&self) -> f64 {
        let p = self.point().value();
        (p * (1.0 - p) / self.trials as f64).sqrt()
    }

    /// A two-sided confidence interval at the given `level` (e.g. `0.95`).
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidConfidence`] if `level` is not strictly
    /// inside `(0, 1)`.
    pub fn interval(&self, method: CiMethod, level: f64) -> Result<ConfidenceInterval, ProbError> {
        if !(level > 0.0 && level < 1.0) {
            return Err(ProbError::InvalidConfidence { level });
        }
        let alpha = 1.0 - level;
        let z = normal_quantile(1.0 - alpha / 2.0);
        let n = self.trials as f64;
        let k = self.successes as f64;
        let p_hat = k / n;
        let (lo, hi) = match method {
            CiMethod::Wald => {
                let half = z * (p_hat * (1.0 - p_hat) / n).sqrt();
                (p_hat - half, p_hat + half)
            }
            CiMethod::Wilson => {
                let z2 = z * z;
                let denom = 1.0 + z2 / n;
                let centre = (p_hat + z2 / (2.0 * n)) / denom;
                let half = z * ((p_hat * (1.0 - p_hat) + z2 / (4.0 * n)) / n).sqrt() / denom;
                (centre - half, centre + half)
            }
            CiMethod::ClopperPearson => {
                let lo = if self.successes == 0 {
                    0.0
                } else {
                    beta_quantile(k, n - k + 1.0, alpha / 2.0)
                };
                let hi = if self.successes == self.trials {
                    1.0
                } else {
                    beta_quantile(k + 1.0, n - k, 1.0 - alpha / 2.0)
                };
                (lo, hi)
            }
            CiMethod::AgrestiCoull => {
                let z2 = z * z;
                let n_tilde = n + z2;
                let p_tilde = (k + z2 / 2.0) / n_tilde;
                let half = z * (p_tilde * (1.0 - p_tilde) / n_tilde).sqrt();
                (p_tilde - half, p_tilde + half)
            }
            CiMethod::Jeffreys => {
                let a = k + 0.5;
                let b = n - k + 0.5;
                let lo = if self.successes == 0 {
                    0.0
                } else {
                    beta_quantile(a, b, alpha / 2.0)
                };
                let hi = if self.successes == self.trials {
                    1.0
                } else {
                    beta_quantile(a, b, 1.0 - alpha / 2.0)
                };
                (lo, hi)
            }
        };
        // At the boundary counts the true bound is exactly the endpoint; pin
        // it there so the interval always contains the point estimate despite
        // floating-point round-off in the closed forms above.
        let lo = if self.successes == 0 { 0.0 } else { lo };
        let hi = if self.successes == self.trials {
            1.0
        } else {
            hi
        };
        ConfidenceInterval::new(Probability::clamped(lo), Probability::clamped(hi), level)
    }

    /// Pools two estimates drawn from the *same* underlying proportion.
    #[must_use]
    pub fn pooled(self, other: BinomialEstimate) -> BinomialEstimate {
        BinomialEstimate {
            successes: self.successes + other.successes,
            trials: self.trials + other.trials,
        }
    }
}

impl fmt::Display for BinomialEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} (p̂={:.4})",
            self.successes,
            self.trials,
            self.point().value()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(k: u64, n: u64) -> BinomialEstimate {
        BinomialEstimate::new(k, n).unwrap()
    }

    #[test]
    fn new_rejects_bad_counts() {
        assert!(BinomialEstimate::new(1, 0).is_err());
        assert!(BinomialEstimate::new(5, 4).is_err());
        assert!(BinomialEstimate::new(0, 1).is_ok());
    }

    #[test]
    fn point_and_se() {
        let e = est(41, 100);
        assert!((e.point().value() - 0.41).abs() < 1e-12);
        assert!((e.standard_error() - (0.41 * 0.59 / 100.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn wilson_matches_published_example() {
        // Known reference: k=10, n=100, 95% Wilson ≈ [0.0552, 0.1744]
        let ci = est(10, 100).interval(CiMethod::Wilson, 0.95).unwrap();
        assert!((ci.lo().value() - 0.0552).abs() < 5e-4, "{ci}");
        assert!((ci.hi().value() - 0.1744).abs() < 5e-4, "{ci}");
    }

    #[test]
    fn clopper_pearson_matches_published_example() {
        // Known reference: k=10, n=100, 95% CP ≈ [0.0490, 0.1762]
        let ci = est(10, 100)
            .interval(CiMethod::ClopperPearson, 0.95)
            .unwrap();
        assert!((ci.lo().value() - 0.0490).abs() < 5e-4, "{ci}");
        assert!((ci.hi().value() - 0.1762).abs() < 5e-4, "{ci}");
    }

    #[test]
    fn zero_and_full_counts_have_sane_intervals() {
        for method in [
            CiMethod::Wilson,
            CiMethod::ClopperPearson,
            CiMethod::AgrestiCoull,
            CiMethod::Jeffreys,
        ] {
            let lo_ci = est(0, 50).interval(method, 0.95).unwrap();
            assert_eq!(lo_ci.lo(), Probability::ZERO, "{method}");
            assert!(lo_ci.hi().value() > 0.0, "{method}");
            let hi_ci = est(50, 50).interval(method, 0.95).unwrap();
            assert_eq!(hi_ci.hi(), Probability::ONE, "{method}");
            assert!(hi_ci.lo().value() < 1.0, "{method}");
        }
        // Wald degenerates to zero width here — documented behaviour.
        let wald = est(0, 50).interval(CiMethod::Wald, 0.95).unwrap();
        assert_eq!(wald.width(), 0.0);
    }

    #[test]
    fn rule_of_three_approximation() {
        // For k=0 the Clopper–Pearson 95% upper bound ≈ 3/n ("rule of three").
        let ci = est(0, 300)
            .interval(CiMethod::ClopperPearson, 0.95)
            .unwrap();
        assert!((ci.hi().value() - 3.0 / 300.0).abs() < 3e-3, "{ci}");
    }

    #[test]
    fn intervals_contain_point_estimate() {
        for method in [
            CiMethod::Wald,
            CiMethod::Wilson,
            CiMethod::ClopperPearson,
            CiMethod::AgrestiCoull,
            CiMethod::Jeffreys,
        ] {
            for &(k, n) in &[(1u64, 10u64), (7, 100), (41, 100), (90, 100), (199, 200)] {
                let e = est(k, n);
                let ci = e.interval(method, 0.95).unwrap();
                assert!(
                    ci.contains(e.point()),
                    "{method} k={k} n={n}: {ci} vs {}",
                    e.point()
                );
            }
        }
    }

    #[test]
    fn higher_level_is_wider() {
        let e = est(7, 100);
        for method in [
            CiMethod::Wilson,
            CiMethod::ClopperPearson,
            CiMethod::Jeffreys,
        ] {
            let ci90 = e.interval(method, 0.90).unwrap();
            let ci99 = e.interval(method, 0.99).unwrap();
            assert!(ci99.width() > ci90.width(), "{method}");
        }
    }

    #[test]
    fn more_data_is_narrower() {
        for method in [CiMethod::Wilson, CiMethod::ClopperPearson] {
            let small = est(7, 100).interval(method, 0.95).unwrap();
            let large = est(70, 1000).interval(method, 0.95).unwrap();
            assert!(large.width() < small.width(), "{method}");
        }
    }

    #[test]
    fn invalid_level_rejected() {
        let e = est(1, 10);
        assert!(e.interval(CiMethod::Wilson, 0.0).is_err());
        assert!(e.interval(CiMethod::Wilson, 1.0).is_err());
        assert!(e.interval(CiMethod::Wilson, -0.5).is_err());
    }

    #[test]
    fn pooling_adds_counts() {
        let pooled = est(3, 10).pooled(est(7, 30));
        assert_eq!(pooled.successes(), 10);
        assert_eq!(pooled.trials(), 40);
    }

    #[test]
    fn interval_accessors() {
        let ci = est(10, 100).interval(CiMethod::Wilson, 0.95).unwrap();
        assert!(ci.midpoint() > ci.lo() && ci.midpoint() < ci.hi());
        assert!((ci.level() - 0.95).abs() < 1e-12);
        assert!(!ci.to_string().is_empty());
    }

    #[test]
    fn interval_new_validates() {
        let p = |v| Probability::new(v).unwrap();
        assert!(ConfidenceInterval::new(p(0.6), p(0.4), 0.95).is_err());
        assert!(ConfidenceInterval::new(p(0.4), p(0.6), 1.5).is_err());
        assert!(ConfidenceInterval::new(p(0.4), p(0.6), 0.95).is_ok());
    }
}
