//! Odds and odds ratios.
//!
//! Odds are an alternative parameterisation of probability used when
//! comparing failure rates between strata (e.g. the odds ratio of human
//! failure given machine failure vs. machine success is a scale-free measure
//! of human–machine coupling).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ProbError, Probability};

/// Odds `p / (1 − p)`: a non-negative value, possibly infinite.
///
/// # Example
///
/// ```
/// use hmdiv_prob::{Odds, Probability};
///
/// # fn main() -> Result<(), hmdiv_prob::ProbError> {
/// let o = Odds::new(3.0)?; // 3:1 on
/// assert!((o.to_probability().value() - 0.75).abs() < 1e-12);
/// let p = Probability::new(0.2)?;
/// assert!((p.to_odds().value() - 0.25).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
// Derived `PartialOrd` expands to `partial_cmp`, which clippy.toml disallows
// for hand-written float comparisons; the derive itself is fine.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Odds(f64);

impl Odds {
    /// Creates odds from a raw non-negative value.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::OutOfRange`] if `value` is negative or NaN.
    /// `f64::INFINITY` is accepted (the odds of a certain event).
    pub fn new(value: f64) -> Result<Self, ProbError> {
        if value.is_nan() || value < 0.0 {
            return Err(ProbError::OutOfRange {
                value,
                context: "odds",
            });
        }
        Ok(Odds(value))
    }

    /// The odds of a certain event.
    #[must_use]
    pub fn infinite() -> Self {
        Odds(f64::INFINITY)
    }

    /// Converts a probability to odds.
    #[must_use]
    pub fn from_probability(p: Probability) -> Self {
        if p.is_one() {
            Odds::infinite()
        } else {
            Odds(p.value() / (1.0 - p.value()))
        }
    }

    /// Returns the raw value.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Converts back to a probability `o / (1 + o)`.
    #[must_use]
    pub fn to_probability(self) -> Probability {
        if self.0.is_infinite() {
            Probability::ONE
        } else {
            Probability::clamped(self.0 / (1.0 + self.0))
        }
    }

    /// The odds ratio `self / other`, a standard effect-size measure.
    ///
    /// Conventions: `0/0` and `∞/∞` are undefined and return `None`;
    /// any finite odds divided by zero odds gives infinite ratio.
    #[must_use]
    pub fn ratio(self, other: Odds) -> Option<f64> {
        if (self.0 == 0.0 && other.0 == 0.0) || (self.0.is_infinite() && other.0.is_infinite()) {
            return None;
        }
        if other.0 == 0.0 {
            return Some(f64::INFINITY);
        }
        Some(self.0 / other.0)
    }
}

impl fmt::Display for Odds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl Default for Odds {
    /// Default odds are `0` (the impossible event), matching
    /// `Probability::default`.
    fn default() -> Self {
        Odds(0.0)
    }
}

/// Computes the odds ratio between two probabilities:
/// `[p/(1−p)] / [q/(1−q)]`.
///
/// Returns `None` where the ratio is undefined (both zero or both one).
///
/// # Example
///
/// ```
/// use hmdiv_prob::{odds, Probability};
///
/// # fn main() -> Result<(), hmdiv_prob::ProbError> {
/// // Paper §5, "difficult" cases: P(Hf|Mf) = 0.9 vs P(Hf|Ms) = 0.4 —
/// // the odds of human failure are 13.5 times higher when the machine fails.
/// let or = odds::odds_ratio(Probability::new(0.9)?, Probability::new(0.4)?).unwrap();
/// assert!((or - 13.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn odds_ratio(p: Probability, q: Probability) -> Option<f64> {
    p.to_odds().ratio(q.to_odds())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    #[test]
    fn roundtrip_probability_odds() {
        for &v in &[0.0, 0.1, 0.5, 0.9, 0.999] {
            let back = p(v).to_odds().to_probability();
            assert!((back.value() - v).abs() < 1e-12, "{v}");
        }
        assert_eq!(Probability::ONE.to_odds(), Odds::infinite());
        assert_eq!(Odds::infinite().to_probability(), Probability::ONE);
    }

    #[test]
    fn new_rejects_negative_and_nan() {
        assert!(Odds::new(-0.1).is_err());
        assert!(Odds::new(f64::NAN).is_err());
        assert!(Odds::new(f64::INFINITY).is_ok());
    }

    #[test]
    fn odds_ratio_conventions() {
        assert!(odds_ratio(Probability::ZERO, Probability::ZERO).is_none());
        assert!(odds_ratio(Probability::ONE, Probability::ONE).is_none());
        assert_eq!(odds_ratio(p(0.5), Probability::ZERO), Some(f64::INFINITY));
        let or = odds_ratio(p(0.5), p(0.5)).unwrap();
        assert!((or - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_nonempty() {
        assert!(!Odds::new(2.5).unwrap().to_string().is_empty());
    }
}
