//! Probability and statistics substrate for the `hmdiv` workspace.
//!
//! The DSN 2003 paper this workspace reproduces ("Human-machine diversity in
//! the use of computerised advisory systems", Strigini, Povyakalo & Alberdi)
//! manipulates probabilities of discrete events conditional on classes of
//! demands, and estimates those probabilities from trial data. Rust's
//! ecosystem of statistics crates is thin, so this crate provides the exact
//! toolbox the models need, self-contained:
//!
//! * [`Probability`] — a validated `[0, 1]` newtype that all other crates use
//!   for event probabilities, plus [`Odds`] / log-odds conversions.
//! * [`Categorical`] — a discrete distribution over arbitrary categories with
//!   O(1) alias-method sampling, the foundation of demand profiles.
//! * [`estimate`] — binomial point estimates and five confidence-interval
//!   methods (Wald, Wilson, Clopper–Pearson, Agresti–Coull, Jeffreys).
//! * [`moments`] — weighted means, variances, covariances and correlations
//!   over discrete distributions (the paper's eq. 10 covariance term).
//! * [`bootstrap`] — non-parametric bootstrap resampling and percentile CIs.
//! * [`bayes`] — the Beta distribution and beta–binomial conjugate updating
//!   for probability parameters.
//! * [`counts`] — success/failure tallies and stratified 2×2 contingency
//!   tables, the raw material produced by trials and consumed by estimators.
//! * [`seq`] — streaming (Welford) moment accumulators for Monte-Carlo runs.
//! * [`par`] — deterministic parallel execution of seeded Monte-Carlo work:
//!   per-task `(seed, id)` RNG streams and in-order partial merging make
//!   results identical at any thread count.
//!
//! # Example
//!
//! ```
//! use hmdiv_prob::{Probability, estimate::{BinomialEstimate, CiMethod}};
//!
//! # fn main() -> Result<(), hmdiv_prob::ProbError> {
//! // 7 machine failures observed in 100 "easy" cases:
//! let est = BinomialEstimate::new(7, 100)?;
//! let p: Probability = est.point();
//! assert!((p.value() - 0.07).abs() < 1e-12);
//! let ci = est.interval(CiMethod::Wilson, 0.95)?;
//! assert!(ci.lo().value() < 0.07 && ci.hi().value() > 0.07);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod bayes;
pub mod bootstrap;
pub mod compare;
pub mod counts;
pub mod discrete;
mod error;
pub mod estimate;
pub mod moments;
pub mod odds;
pub mod par;
mod probability;
pub mod seq;
pub mod special;

pub use discrete::Categorical;
pub use error::ProbError;
pub use odds::Odds;
pub use probability::Probability;
