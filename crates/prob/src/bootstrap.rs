//! Non-parametric bootstrap resampling.
//!
//! When a statistic has no closed-form interval — e.g. the covariance
//! `cov(PMf(x), t(x))` estimated from per-class trial counts, or a system
//! failure probability that is a non-linear function of several estimated
//! parameters — the trial harness falls back to bootstrap percentile
//! intervals over resampled case sets.

use rand::Rng;

use crate::{ProbError, Probability};

/// Result of a bootstrap run: the replicated statistic values, sorted.
#[derive(Debug, Clone, PartialEq)]
pub struct Bootstrap {
    replicates: Vec<f64>,
}

impl Bootstrap {
    /// Resamples `data` with replacement `replicates` times, applying
    /// `statistic` to each resample.
    ///
    /// # Errors
    ///
    /// * [`ProbError::Empty`] if `data` is empty or `replicates == 0`.
    ///
    /// # Example
    ///
    /// ```
    /// use hmdiv_prob::bootstrap::Bootstrap;
    /// use rand::SeedableRng;
    ///
    /// # fn main() -> Result<(), hmdiv_prob::ProbError> {
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    /// let data: Vec<f64> = (0..100).map(|i| f64::from(i % 10 == 0)).collect();
    /// let boot = Bootstrap::run(&data, 1000, &mut rng, |xs| {
    ///     xs.iter().sum::<f64>() / xs.len() as f64
    /// })?;
    /// let (lo, hi) = boot.percentile_interval(0.95)?;
    /// assert!(lo <= 0.1 && 0.1 <= hi);
    /// # Ok(())
    /// # }
    /// ```
    pub fn run<T: Clone, R: Rng + ?Sized, F: FnMut(&[T]) -> f64>(
        data: &[T],
        replicates: usize,
        rng: &mut R,
        mut statistic: F,
    ) -> Result<Self, ProbError> {
        if data.is_empty() {
            return Err(ProbError::Empty {
                context: "bootstrap sample",
            });
        }
        if replicates == 0 {
            return Err(ProbError::Empty {
                context: "bootstrap replicate count",
            });
        }
        let _span = hmdiv_obs::span("prob.bootstrap.run");
        let n = data.len();
        let mut resample: Vec<T> = Vec::with_capacity(n);
        let mut values = Vec::with_capacity(replicates);
        for _ in 0..replicates {
            resample.clear();
            for _ in 0..n {
                resample.push(data[rng.gen_range(0..n)].clone());
            }
            values.push(statistic(&resample));
        }
        values.sort_by(f64::total_cmp);
        Ok(Bootstrap { replicates: values })
    }

    /// Parallel [`Bootstrap::run`]: deterministic for `(seed, replicates)`
    /// and identical at any `threads` value.
    ///
    /// Each replicate draws from its own `(seed, replicate id)` RNG stream
    /// (see [`crate::par::stream_rng`]), so the thread count only decides
    /// which worker computes which replicate. The replicate set differs
    /// numerically from a sequential [`Bootstrap::run`] with a single
    /// caller-provided stream, but has the same distribution. `statistic`
    /// must be `Fn + Sync` (it is called concurrently).
    ///
    /// # Errors
    ///
    /// As [`Bootstrap::run`].
    pub fn run_par<T, F>(
        data: &[T],
        replicates: usize,
        seed: u64,
        threads: usize,
        statistic: F,
    ) -> Result<Self, ProbError>
    where
        T: Clone + Send + Sync,
        F: Fn(&[T]) -> f64 + Sync,
    {
        if data.is_empty() {
            return Err(ProbError::Empty {
                context: "bootstrap sample",
            });
        }
        if replicates == 0 {
            return Err(ProbError::Empty {
                context: "bootstrap replicate count",
            });
        }
        let n = data.len();
        // Accumulator: per-worker reusable resample buffer + the replicate
        // values. Only the values participate in merging (in-order
        // concatenation), so results are thread-count invariant.
        struct Acc<T> {
            resample: Vec<T>,
            values: Vec<f64>,
        }
        impl<T> crate::par::Merge for Acc<T> {
            fn merge(&mut self, later: Self) {
                crate::par::Merge::merge(&mut self.values, later.values);
            }
        }
        // The "prob.bootstrap" scope reports replicate throughput as
        // `prob.bootstrap.tasks_per_sec` (one task = one replicate).
        let acc = crate::par::run_tasks_scoped(
            "prob.bootstrap",
            seed,
            replicates as u64,
            threads,
            || Acc {
                resample: Vec::with_capacity(n),
                values: Vec::new(),
            },
            |_id, rng, acc: &mut Acc<T>| {
                acc.resample.clear();
                for _ in 0..n {
                    acc.resample.push(data[rng.gen_range(0..n)].clone());
                }
                acc.values.push(statistic(&acc.resample));
            },
        );
        let mut values = acc.values;
        values.sort_by(f64::total_cmp);
        Ok(Bootstrap { replicates: values })
    }

    /// The sorted replicate values.
    #[must_use]
    pub fn replicates(&self) -> &[f64] {
        &self.replicates
    }

    /// The mean of the replicates.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.replicates.iter().sum::<f64>() / self.replicates.len() as f64
    }

    /// The standard error (standard deviation of the replicates).
    #[must_use]
    pub fn standard_error(&self) -> f64 {
        let mean = self.mean();
        let n = self.replicates.len() as f64;
        (self
            .replicates
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / n)
            .sqrt()
    }

    /// The `q`-th quantile of the replicates (linear interpolation).
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::OutOfRange`] if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Result<f64, ProbError> {
        if q.is_nan() || !(0.0..=1.0).contains(&q) {
            return Err(ProbError::OutOfRange {
                value: q,
                context: "quantile order",
            });
        }
        let n = self.replicates.len();
        if n == 1 {
            return Ok(self.replicates[0]);
        }
        let pos = q * (n - 1) as f64;
        let idx = pos.floor() as usize;
        let frac = pos - idx as f64;
        if idx + 1 >= n {
            return Ok(self.replicates[n - 1]);
        }
        Ok(self.replicates[idx] * (1.0 - frac) + self.replicates[idx + 1] * frac)
    }

    /// The two-sided percentile interval at confidence `level`.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidConfidence`] if `level` is not strictly
    /// inside `(0, 1)`.
    pub fn percentile_interval(&self, level: f64) -> Result<(f64, f64), ProbError> {
        if !(level > 0.0 && level < 1.0) {
            return Err(ProbError::InvalidConfidence { level });
        }
        let alpha = 1.0 - level;
        Ok((
            self.quantile(alpha / 2.0)?,
            self.quantile(1.0 - alpha / 2.0)?,
        ))
    }

    /// Percentile interval for a statistic known to be a probability, with
    /// the bounds returned as [`Probability`] values.
    ///
    /// # Errors
    ///
    /// As [`Bootstrap::percentile_interval`], plus
    /// [`ProbError::OutOfRange`] if any replicate strays outside `[0, 1]`
    /// by more than round-off.
    pub fn probability_interval(
        &self,
        level: f64,
    ) -> Result<(Probability, Probability), ProbError> {
        let (lo, hi) = self.percentile_interval(level)?;
        Ok((
            Probability::new(lo.clamp(0.0, 1.0))?,
            Probability::new(hi.clamp(0.0, 1.0))?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_stat(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn run_par_is_thread_count_invariant() {
        let data: Vec<f64> = (0..200).map(|i| f64::from(i % 7)).collect();
        let reference = Bootstrap::run_par(&data, 500, 11, 1, mean_stat).unwrap();
        for threads in [2usize, 3, 8] {
            let boot = Bootstrap::run_par(&data, 500, 11, threads, mean_stat).unwrap();
            assert_eq!(boot, reference, "threads={threads}");
        }
    }

    #[test]
    fn run_par_interval_brackets_true_mean() {
        let data: Vec<f64> = (0..300).map(|i| f64::from(i % 10 == 0)).collect();
        let boot = Bootstrap::run_par(&data, 2000, 3, 4, mean_stat).unwrap();
        let (lo, hi) = boot.percentile_interval(0.95).unwrap();
        assert!(lo <= 0.1 && 0.1 <= hi, "[{lo}, {hi}]");
    }

    #[test]
    fn run_par_rejects_empty_inputs() {
        let empty: [f64; 0] = [];
        assert!(Bootstrap::run_par(&empty, 10, 1, 2, mean_stat).is_err());
        assert!(Bootstrap::run_par(&[1.0], 0, 1, 2, mean_stat).is_err());
    }

    #[test]
    fn rejects_empty_inputs() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(Bootstrap::run::<f64, _, _>(&[], 10, &mut rng, mean_stat).is_err());
        assert!(Bootstrap::run(&[1.0], 0, &mut rng, mean_stat).is_err());
    }

    #[test]
    fn interval_brackets_true_mean() {
        let mut rng = StdRng::seed_from_u64(42);
        // Bernoulli(0.3) sample of size 500.
        let data: Vec<f64> = (0..500)
            .map(|_| f64::from(rng.gen::<f64>() < 0.3))
            .collect();
        let boot = Bootstrap::run(&data, 2000, &mut rng, mean_stat).unwrap();
        let (lo, hi) = boot.percentile_interval(0.99).unwrap();
        assert!(lo < 0.3 && 0.3 < hi, "[{lo}, {hi}]");
        assert!(boot.standard_error() > 0.0);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut rng = StdRng::seed_from_u64(7);
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let boot = Bootstrap::run(&data, 500, &mut rng, mean_stat).unwrap();
        let q10 = boot.quantile(0.1).unwrap();
        let q50 = boot.quantile(0.5).unwrap();
        let q90 = boot.quantile(0.9).unwrap();
        assert!(q10 <= q50 && q50 <= q90);
        assert!(boot.quantile(-0.1).is_err());
        assert!(boot.quantile(1.1).is_err());
    }

    #[test]
    fn constant_data_gives_degenerate_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = vec![0.25; 50];
        let boot = Bootstrap::run(&data, 100, &mut rng, mean_stat).unwrap();
        let (lo, hi) = boot.percentile_interval(0.95).unwrap();
        assert_eq!(lo, 0.25);
        assert_eq!(hi, 0.25);
        assert_eq!(boot.standard_error(), 0.0);
    }

    #[test]
    fn probability_interval_returns_probabilities() {
        let mut rng = StdRng::seed_from_u64(9);
        let data: Vec<f64> = (0..200).map(|i| f64::from(i % 5 == 0)).collect();
        let boot = Bootstrap::run(&data, 500, &mut rng, mean_stat).unwrap();
        let (lo, hi) = boot.probability_interval(0.95).unwrap();
        assert!(lo <= hi);
        assert!(lo.value() >= 0.0 && hi.value() <= 1.0);
    }

    #[test]
    fn invalid_level_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let boot = Bootstrap::run(&[1.0, 2.0], 10, &mut rng, mean_stat).unwrap();
        assert!(boot.percentile_interval(0.0).is_err());
        assert!(boot.percentile_interval(1.0).is_err());
    }
}
