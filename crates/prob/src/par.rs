//! Deterministic parallel execution of seeded Monte-Carlo work.
//!
//! Every sampling loop in this workspace needs the same three guarantees:
//!
//! 1. **Reproducible** — a fixed seed gives identical results on every run;
//! 2. **Thread-count invariant** — the *same* results at any worker count,
//!    so `threads` is purely a performance knob;
//! 3. **Scalable** — workers share no mutable state until a final merge.
//!
//! The pattern that delivers all three (first grown inside the simulation
//! engine, now shared here): number the independent units of work
//! `0..tasks`, derive each task's RNG stream from `(seed, task id)` with a
//! SplitMix64 mix ([`stream_rng`]), hand each worker a contiguous block of
//! task ids, and fold each worker's partial accumulator into the result in
//! task order. Threading then only changes *which worker* executes a task,
//! never the randomness a task sees nor the order contributions are
//! combined.
//!
//! # Accumulator requirements
//!
//! Thread-count invariance needs two properties of the accumulator, which
//! implementors of [`Merge`] must uphold:
//!
//! * the `init` value passed to [`run_tasks`] is an identity for `merge`
//!   (an "empty" accumulator);
//! * merging is associative over per-task contributions, so grouping tasks
//!   into different worker blocks cannot change the fold. Integer counters,
//!   order-preserving concatenation, and min/max all qualify; `f64`
//!   summation does **not** (floating-point addition is not associative) —
//!   accumulate exact representations (counts, `Vec<f64>` of per-task
//!   values) and reduce after the run instead.
//!
//! # Example
//!
//! ```
//! use hmdiv_prob::par::run_tasks;
//! use rand::Rng;
//!
//! // Count heads over one million coin flips, 4 ways in parallel.
//! let heads: u64 = run_tasks(7, 1_000_000, 4, || 0u64, |_id, rng, acc| {
//!     *acc += u64::from(rng.gen::<f64>() < 0.5);
//! });
//! // Identical at any thread count.
//! assert_eq!(heads, run_tasks(7, 1_000_000, 1, || 0u64, |_id, rng, acc| {
//!     *acc += u64::from(rng.gen::<f64>() < 0.5);
//! }));
//! ```

use std::ops::Range;
use std::time::Instant;

use hmdiv_obs::{MetricSink, WorkerStat};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG stream for task `stream` under `seed`: a SplitMix64-style mix of
/// the pair into a seed for [`StdRng`].
///
/// This is the exact mixing the simulation engine has always used for its
/// per-case streams, so adopting [`run_tasks`] preserves engine output bit
/// for bit.
#[must_use]
pub fn stream_rng(seed: u64, stream: u64) -> StdRng {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// A partial result that can absorb another partial produced later in task
/// order. See the module docs for the identity/associativity requirements.
pub trait Merge {
    /// Folds `later` (covering strictly later task ids) into `self`.
    fn merge(&mut self, later: Self);
}

/// Counting accumulator: merge is addition (exact, associative).
impl Merge for u64 {
    fn merge(&mut self, later: Self) {
        *self += later;
    }
}

/// Order-preserving concatenation: partials covering later task ids append
/// after earlier ones, reproducing the sequential collection order.
impl<T> Merge for Vec<T> {
    fn merge(&mut self, mut later: Self) {
        self.append(&mut later);
    }
}

/// Pairs merge componentwise.
impl<A: Merge, B: Merge> Merge for (A, B) {
    fn merge(&mut self, later: Self) {
        self.0.merge(later.0);
        self.1.merge(later.1);
    }
}

/// Observability sinks satisfy the contract by construction: counters add
/// (associative with identity 0) and per-worker stats concatenate in task
/// order — the same shapes as the `u64` and `Vec` impls above. This lets
/// instrumentation ride the deterministic fold instead of introducing
/// shared mutable state.
impl Merge for MetricSink {
    fn merge(&mut self, later: Self) {
        self.absorb(later);
    }
}

/// Splits `0..total` into `workers` contiguous ranges, the first
/// `total % workers` of them one longer — the canonical partition used by
/// [`run_tasks`] (and by the simulation engine before it).
///
/// Returns an empty vector when `workers == 0` or `total == 0`.
#[must_use]
pub fn split_evenly(total: u64, workers: usize) -> Vec<Range<u64>> {
    if workers == 0 || total == 0 {
        return Vec::new();
    }
    let per_worker = total / workers as u64;
    let remainder = total % workers as u64;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0u64;
    for worker in 0..workers {
        let quota = per_worker + u64::from((worker as u64) < remainder);
        ranges.push(start..start + quota);
        start += quota;
    }
    ranges
}

/// Runs tasks `0..tasks` across up to `threads` workers, giving task `id`
/// the RNG `stream_rng(seed, id)`, and folds the per-worker accumulators in
/// task order.
///
/// `threads` is clamped to `[1, tasks]`; the single-threaded case runs
/// inline without spawning. Results are identical for every `threads`
/// value provided the accumulator meets the [`Merge`] contract.
///
/// Equivalent to [`run_tasks_scoped`] under the generic `"par"` metric
/// scope; hot layers with names of their own pass them via
/// [`run_tasks_scoped`] instead.
pub fn run_tasks<A, I, F>(seed: u64, tasks: u64, threads: usize, init: I, task: F) -> A
where
    A: Merge + Send,
    I: Fn() -> A + Sync,
    F: Fn(u64, &mut StdRng, &mut A) + Sync,
{
    run_tasks_scoped("par", seed, tasks, threads, init, task)
}

/// [`run_tasks`] with an explicit observability scope.
///
/// When observability is enabled for `scope` (see
/// [`hmdiv_obs::enabled_for`]), the run also records — *without touching
/// the task RNG streams or the fold order, so results stay bit-identical
/// to an uninstrumented run*:
///
/// * `{scope}.runs`, `{scope}.tasks`, `{scope}.wall_ns` counters and a
///   `{scope}.tasks_per_sec` gauge for the run as a whole;
/// * per-worker `{scope}.worker{i}.busy_ns` / `.tasks` gauges, a pooled
///   `{scope}.busy_ns` counter and a `{scope}.imbalance` gauge (busiest
///   worker over mean), carried by [`MetricSink`] accumulators that ride
///   the same in-order merge as the caller's accumulator.
///
/// While disabled, the only cost over the raw loop is one atomic load and
/// branch per *run* (never per task), keeping the disabled-path overhead
/// well under the workspace's 2% budget.
pub fn run_tasks_scoped<A, I, F>(
    scope: &str,
    seed: u64,
    tasks: u64,
    threads: usize,
    init: I,
    task: F,
) -> A
where
    A: Merge + Send,
    I: Fn() -> A + Sync,
    F: Fn(u64, &mut StdRng, &mut A) + Sync,
{
    if tasks == 0 {
        return init();
    }
    let threads = threads
        .min(usize::try_from(tasks).unwrap_or(usize::MAX))
        .max(1);
    let observing = hmdiv_obs::enabled_for(scope);
    let wall = observing.then(Instant::now);
    let (acc, sink) = if threads == 1 {
        let worker_start = observing.then(Instant::now);
        let mut acc = init();
        run_range(0..tasks, seed, &task, &mut acc);
        let mut sink = MetricSink::new();
        if let Some(start) = worker_start {
            sink.push_worker(WorkerStat {
                tasks,
                busy_ns: elapsed_ns(start),
            });
        }
        (acc, sink)
    } else {
        let init = &init;
        let task = &task;
        crossbeam::thread::scope(|thread_scope| {
            let handles: Vec<_> = split_evenly(tasks, threads)
                .into_iter()
                .map(|range| {
                    thread_scope.spawn(move |_| {
                        let worker_start = observing.then(Instant::now);
                        let quota = range.end - range.start;
                        let mut acc = init();
                        run_range(range, seed, task, &mut acc);
                        let mut sink = MetricSink::new();
                        if let Some(start) = worker_start {
                            sink.push_worker(WorkerStat {
                                tasks: quota,
                                busy_ns: elapsed_ns(start),
                            });
                        }
                        (acc, sink)
                    })
                })
                .collect();
            let mut acc = init();
            let mut sink = MetricSink::new();
            for handle in handles {
                let (worker_acc, worker_sink) = handle.join().expect("parallel worker panicked");
                acc.merge(worker_acc);
                sink.merge(worker_sink);
            }
            (acc, sink)
        })
        .expect("parallel scope panicked")
    };
    if let Some(start) = wall {
        let wall_ns = elapsed_ns(start);
        let registry = hmdiv_obs::global();
        registry.counter_add(&format!("{scope}.runs"), 1);
        registry.counter_add(&format!("{scope}.tasks"), tasks);
        registry.counter_add(&format!("{scope}.wall_ns"), wall_ns);
        if wall_ns > 0 {
            registry.gauge_set(
                &format!("{scope}.tasks_per_sec"),
                tasks as f64 * 1e9 / wall_ns as f64,
            );
        }
        sink.flush(scope, registry);
    }
    acc
}

/// Saturating elapsed nanoseconds since `start`.
fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Executes a contiguous block of task ids against one accumulator.
fn run_range<A, F>(range: Range<u64>, seed: u64, task: &F, acc: &mut A)
where
    F: Fn(u64, &mut StdRng, &mut A) + Sync,
{
    for id in range {
        let mut rng = stream_rng(seed, id);
        task(id, &mut rng, acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn stream_rng_is_deterministic_and_stream_separated() {
        let a: f64 = stream_rng(1, 0).gen();
        let b: f64 = stream_rng(1, 0).gen();
        assert_eq!(a.to_bits(), b.to_bits());
        let c: f64 = stream_rng(1, 1).gen();
        let d: f64 = stream_rng(2, 0).gen();
        assert_ne!(a.to_bits(), c.to_bits());
        assert_ne!(a.to_bits(), d.to_bits());
    }

    #[test]
    fn split_evenly_is_contiguous_and_exhaustive() {
        for total in [1u64, 7, 100, 101] {
            for workers in [1usize, 2, 3, 7, 16] {
                let ranges = split_evenly(total, workers);
                assert_eq!(ranges.len(), workers.min(ranges.len().max(1)));
                assert_eq!(ranges.first().map(|r| r.start), Some(0));
                assert_eq!(ranges.last().map(|r| r.end), Some(total));
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].end, pair[1].start);
                }
                let sizes: Vec<u64> = ranges.iter().map(|r| r.end - r.start).collect();
                let max = sizes.iter().max().unwrap();
                let min = sizes.iter().min().unwrap();
                assert!(max - min <= 1, "{sizes:?}");
            }
        }
    }

    #[test]
    fn split_evenly_degenerate_inputs() {
        assert!(split_evenly(0, 4).is_empty());
        assert!(split_evenly(10, 0).is_empty());
    }

    fn count_heads(threads: usize) -> u64 {
        run_tasks(
            99,
            10_000,
            threads,
            || 0u64,
            |_id, rng, acc| {
                *acc += u64::from(rng.gen::<f64>() < 0.3);
            },
        )
    }

    #[test]
    fn counts_are_thread_count_invariant() {
        let reference = count_heads(1);
        for threads in [2usize, 3, 7, 64] {
            assert_eq!(count_heads(threads), reference, "threads={threads}");
        }
        // And the empirical rate is sane.
        let frac = reference as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "{frac}");
    }

    fn collect_values(threads: usize) -> Vec<u64> {
        run_tasks(5, 1000, threads, Vec::new, |id, rng, acc: &mut Vec<u64>| {
            acc.push(id ^ rng.gen::<u64>());
        })
    }

    #[test]
    fn concatenation_preserves_task_order_at_any_thread_count() {
        let reference = collect_values(1);
        assert_eq!(reference.len(), 1000);
        for threads in [2usize, 5, 13] {
            assert_eq!(collect_values(threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn thread_count_clamps_to_task_count() {
        // More workers than tasks must not panic or change results.
        let wide = run_tasks(3, 4, 100, || 0u64, |id, _rng, acc| *acc += id);
        let narrow = run_tasks(3, 4, 1, || 0u64, |id, _rng, acc| *acc += id);
        assert_eq!(wide, narrow);
        assert_eq!(wide, 1 + 2 + 3);
    }

    #[test]
    fn zero_tasks_returns_identity() {
        let acc: Vec<u64> = run_tasks(1, 0, 4, Vec::new, |_, _, _| unreachable!());
        assert!(acc.is_empty());
    }

    #[test]
    fn metric_sinks_ride_the_fold_in_worker_order() {
        // A MetricSink used AS the caller accumulator: counters sum and
        // worker stats concatenate in block order at any thread count.
        let collect = |threads: usize| -> MetricSink {
            run_tasks(3, 120, threads, MetricSink::new, |_id, _rng, sink| {
                sink.inc("seen", 1);
            })
        };
        for threads in [1usize, 2, 5] {
            let sink = collect(threads);
            assert_eq!(sink.counters()["seen"], 120, "threads={threads}");
        }
    }

    #[test]
    fn scoped_run_records_metrics_without_changing_results() {
        let scope = "par.test.scoped";
        let run = || {
            run_tasks_scoped(
                scope,
                11,
                500,
                3,
                || 0u64,
                |_id, rng, acc| {
                    *acc += u64::from(rng.gen::<f64>() < 0.4);
                },
            )
        };
        hmdiv_obs::set_enabled(false);
        let plain = run();
        hmdiv_obs::set_enabled(true);
        let observed = run();
        hmdiv_obs::set_enabled(false);
        assert_eq!(plain, observed, "instrumentation must not perturb results");
        let snap = hmdiv_obs::snapshot();
        assert!(snap.counters[&format!("{scope}.runs")] >= 1);
        assert_eq!(snap.counters[&format!("{scope}.tasks")], 500);
        assert!(snap.gauges.contains_key(&format!("{scope}.worker0.tasks")));
        assert!(snap
            .gauges
            .contains_key(&format!("{scope}.worker2.busy_ns")));
    }

    #[test]
    fn pair_accumulators_merge_componentwise() {
        let (count, values): (u64, Vec<u64>) = run_tasks(
            8,
            100,
            3,
            || (0u64, Vec::new()),
            |id, _rng, acc| {
                acc.0 += 1;
                acc.1.push(id);
            },
        );
        assert_eq!(count, 100);
        assert_eq!(values, (0..100).collect::<Vec<_>>());
    }
}
