//! Comparing two proportions: significance tests and effect sizes.
//!
//! A trial of a human–machine system constantly asks comparison questions:
//! did the CADT change the reader's failure rate (`PHf|Mf` vs `PHf|Ms`)? Is
//! reader A better than reader B on difficult cases? Is the improved CADT
//! measurably better? This module provides the classical two-sample tools:
//! the two-proportion z-test, Fisher's exact test (for the sparse counts
//! screening data produces), and a Woolf confidence interval for the odds
//! ratio.

use serde::{Deserialize, Serialize};

use crate::estimate::BinomialEstimate;
use crate::special::{ln_gamma, normal_cdf, normal_quantile};
use crate::ProbError;

/// Result of a two-proportion comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Difference of proportions `p̂₁ − p̂₂`.
    pub difference: f64,
    /// The test statistic (z for the z-test; not meaningful for exact tests).
    pub statistic: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

impl Comparison {
    /// Whether the difference is significant at level `alpha`.
    #[must_use]
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-proportion z-test (pooled standard error), two-sided.
///
/// Appropriate for large counts; for sparse tables prefer
/// [`fisher_exact`].
///
/// # Errors
///
/// [`ProbError::InvalidCounts`] if either sample is empty.
///
/// # Example
///
/// ```
/// use hmdiv_prob::compare::two_proportion_z_test;
/// use hmdiv_prob::estimate::BinomialEstimate;
///
/// # fn main() -> Result<(), hmdiv_prob::ProbError> {
/// // Reader failures with machine failed (74/82) vs succeeded (47/118):
/// let with_mf = BinomialEstimate::new(74, 82)?;
/// let with_ms = BinomialEstimate::new(47, 118)?;
/// let cmp = two_proportion_z_test(with_mf, with_ms)?;
/// assert!(cmp.significant_at(0.001), "automation dependence is large");
/// # Ok(())
/// # }
/// ```
pub fn two_proportion_z_test(
    a: BinomialEstimate,
    b: BinomialEstimate,
) -> Result<Comparison, ProbError> {
    let n1 = a.trials() as f64;
    let n2 = b.trials() as f64;
    let p1 = a.point().value();
    let p2 = b.point().value();
    let pooled = (a.successes() + b.successes()) as f64 / (n1 + n2);
    let se = (pooled * (1.0 - pooled) * (1.0 / n1 + 1.0 / n2)).sqrt();
    let difference = p1 - p2;
    if se == 0.0 {
        // Both proportions identical and degenerate: no evidence of any
        // difference.
        return Ok(Comparison {
            difference,
            statistic: 0.0,
            p_value: 1.0,
        });
    }
    let z = difference / se;
    let p_value = 2.0 * (1.0 - normal_cdf(z.abs()));
    Ok(Comparison {
        difference,
        statistic: z,
        p_value: p_value.clamp(0.0, 1.0),
    })
}

/// Fisher's exact test (two-sided, by summation of hypergeometric
/// probabilities no larger than the observed table's).
///
/// Suited to the sparse per-class tables screening trials produce (e.g. a
/// handful of machine failures in a rare class).
///
/// # Errors
///
/// [`ProbError::InvalidCounts`] if either sample is empty.
pub fn fisher_exact(a: BinomialEstimate, b: BinomialEstimate) -> Result<Comparison, ProbError> {
    let k1 = a.successes();
    let n1 = a.trials();
    let k2 = b.successes();
    let n2 = b.trials();
    let total_success = k1 + k2;
    // Hypergeometric probability of seeing x successes in sample 1, given
    // the margins.
    let ln_choose = |n: u64, k: u64| -> f64 {
        if k > n {
            return f64::NEG_INFINITY;
        }
        ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
    };
    let ln_denom = ln_choose(n1 + n2, total_success);
    let prob_of = |x: u64| -> f64 {
        if x > n1 || total_success < x || (total_success - x) > n2 {
            return 0.0;
        }
        (ln_choose(n1, x) + ln_choose(n2, total_success - x) - ln_denom).exp()
    };
    let observed = prob_of(k1);
    let lo = total_success.saturating_sub(n2);
    let hi = total_success.min(n1);
    let mut p_value = 0.0;
    for x in lo..=hi {
        let p = prob_of(x);
        if p <= observed * (1.0 + 1e-7) {
            p_value += p;
        }
    }
    Ok(Comparison {
        difference: a.point().value() - b.point().value(),
        statistic: f64::NAN, // exact test has no z statistic
        p_value: p_value.clamp(0.0, 1.0),
    })
}

/// McNemar's test for *paired* binary outcomes — the design of real CAD
/// reader studies, where the same cases are read with and without the tool
/// and only the discordant pairs are informative.
///
/// `b` counts pairs that failed under condition 1 but not condition 2;
/// `c` the reverse. Uses the exact binomial form (discordant pairs are
/// Binomial(b+c, ½) under the null), which is valid at any count — the
/// χ² approximation is not needed.
///
/// Returns a [`Comparison`] whose `difference` is the discordance asymmetry
/// `(b − c)/(b + c)`, or `p_value = 1` when there are no discordant pairs.
///
/// # Example
///
/// ```
/// use hmdiv_prob::compare::mcnemar_exact;
///
/// // 30 cancers missed unaided but caught with the CADT; 9 the reverse.
/// let cmp = mcnemar_exact(30, 9);
/// assert!(cmp.significant_at(0.01), "p = {}", cmp.p_value);
/// ```
#[must_use]
pub fn mcnemar_exact(b: u64, c: u64) -> Comparison {
    let n = b + c;
    if n == 0 {
        return Comparison {
            difference: 0.0,
            statistic: 0.0,
            p_value: 1.0,
        };
    }
    let difference = (b as f64 - c as f64) / n as f64;
    let k = b.min(c);
    // Two-sided exact binomial p-value: 2·P(X <= k) for X ~ Bin(n, ½),
    // capped at 1 (and halved correctly when b == c).
    let ln_choose = |n: u64, k: u64| -> f64 {
        ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
    };
    let ln_half_n = n as f64 * 0.5f64.ln();
    let tail: f64 = (0..=k).map(|i| (ln_choose(n, i) + ln_half_n).exp()).sum();
    let p_value = if b == c { 1.0 } else { (2.0 * tail).min(1.0) };
    Comparison {
        difference,
        statistic: f64::NAN,
        p_value,
    }
}

/// Woolf (log) confidence interval for the odds ratio of two proportions,
/// with the Haldane–Anscombe 0.5 correction when any cell is zero.
///
/// Returns `(or, lo, hi)`.
///
/// # Errors
///
/// [`ProbError::InvalidConfidence`] if `level` is not strictly in `(0, 1)`.
pub fn odds_ratio_interval(
    a: BinomialEstimate,
    b: BinomialEstimate,
    level: f64,
) -> Result<(f64, f64, f64), ProbError> {
    if !(level > 0.0 && level < 1.0) {
        return Err(ProbError::InvalidConfidence { level });
    }
    let mut x1 = a.successes() as f64;
    let mut y1 = (a.trials() - a.successes()) as f64;
    let mut x2 = b.successes() as f64;
    let mut y2 = (b.trials() - b.successes()) as f64;
    if x1 == 0.0 || y1 == 0.0 || x2 == 0.0 || y2 == 0.0 {
        x1 += 0.5;
        y1 += 0.5;
        x2 += 0.5;
        y2 += 0.5;
    }
    let or = (x1 / y1) / (x2 / y2);
    let se = (1.0 / x1 + 1.0 / y1 + 1.0 / x2 + 1.0 / y2).sqrt();
    let z = normal_quantile(1.0 - (1.0 - level) / 2.0);
    let lo = (or.ln() - z * se).exp();
    let hi = (or.ln() + z * se).exp();
    Ok((or, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(k: u64, n: u64) -> BinomialEstimate {
        BinomialEstimate::new(k, n).unwrap()
    }

    #[test]
    fn z_test_detects_large_differences() {
        let cmp = two_proportion_z_test(est(74, 82), est(47, 118)).unwrap();
        assert!(cmp.difference > 0.4);
        assert!(cmp.p_value < 1e-6);
        assert!(cmp.significant_at(0.01));
    }

    #[test]
    fn z_test_accepts_equal_proportions() {
        let cmp = two_proportion_z_test(est(30, 100), est(30, 100)).unwrap();
        assert!((cmp.difference).abs() < 1e-12);
        assert!(cmp.p_value > 0.99);
        assert!(!cmp.significant_at(0.05));
    }

    #[test]
    fn z_test_degenerate_pool() {
        // No successes anywhere: se = 0, p-value 1.
        let cmp = two_proportion_z_test(est(0, 50), est(0, 70)).unwrap();
        assert_eq!(cmp.p_value, 1.0);
        assert_eq!(cmp.statistic, 0.0);
    }

    #[test]
    fn fisher_matches_known_example() {
        // Classic tea-tasting table: 3/4 vs 1/4 → two-sided p ≈ 0.486.
        let cmp = fisher_exact(est(3, 4), est(1, 4)).unwrap();
        assert!((cmp.p_value - 0.485_714).abs() < 1e-4, "{}", cmp.p_value);
    }

    #[test]
    fn fisher_extreme_table_is_significant() {
        let cmp = fisher_exact(est(20, 20), est(0, 20)).unwrap();
        assert!(cmp.p_value < 1e-8, "{}", cmp.p_value);
    }

    #[test]
    fn fisher_and_z_agree_for_large_counts() {
        let a = est(300, 1000);
        let b = est(250, 1000);
        let z = two_proportion_z_test(a, b).unwrap();
        let f = fisher_exact(a, b).unwrap();
        // Same order of magnitude; both clearly significant.
        assert!(z.p_value < 0.02 && f.p_value < 0.02);
        assert!(
            (z.p_value.ln() - f.p_value.ln()).abs() < 1.0,
            "{} vs {}",
            z.p_value,
            f.p_value
        );
    }

    #[test]
    fn fisher_pvalue_never_exceeds_one() {
        for (k1, n1, k2, n2) in [(0u64, 5u64, 0u64, 5u64), (2, 4, 2, 4), (5, 10, 5, 10)] {
            let cmp = fisher_exact(est(k1, n1), est(k2, n2)).unwrap();
            assert!(cmp.p_value <= 1.0 && cmp.p_value > 0.9, "{cmp:?}");
        }
    }

    #[test]
    fn mcnemar_detects_asymmetric_discordance() {
        let cmp = mcnemar_exact(30, 9);
        assert!(cmp.p_value < 0.01, "{}", cmp.p_value);
        assert!(cmp.difference > 0.5);
        // Known value: 2·P(Bin(39, ½) <= 9) ≈ 0.00103.
        assert!((cmp.p_value - 0.00103).abs() < 2e-4, "{}", cmp.p_value);
    }

    #[test]
    fn mcnemar_symmetric_is_null() {
        let cmp = mcnemar_exact(12, 12);
        assert_eq!(cmp.p_value, 1.0);
        assert_eq!(cmp.difference, 0.0);
        let cmp = mcnemar_exact(0, 0);
        assert_eq!(cmp.p_value, 1.0);
    }

    #[test]
    fn mcnemar_small_counts_exact() {
        // b=5, c=0: p = 2·(½)^5 = 0.0625 — not significant at 5%, the
        // classic sparse-data caution.
        let cmp = mcnemar_exact(5, 0);
        assert!((cmp.p_value - 0.0625).abs() < 1e-10, "{}", cmp.p_value);
        assert!(!cmp.significant_at(0.05));
    }

    #[test]
    fn odds_ratio_interval_basics() {
        // Difficult class: 74/82 failures with Mf vs 47/118 with Ms.
        let (or, lo, hi) = odds_ratio_interval(est(74, 82), est(47, 118), 0.95).unwrap();
        assert!(or > 10.0, "{or}");
        assert!(lo < or && or < hi);
        assert!(lo > 1.0, "clearly above no-effect");
        assert!(odds_ratio_interval(est(1, 10), est(1, 10), 1.0).is_err());
    }

    #[test]
    fn odds_ratio_zero_cells_corrected() {
        let (or, lo, hi) = odds_ratio_interval(est(0, 10), est(5, 10), 0.95).unwrap();
        assert!(or.is_finite() && or > 0.0);
        assert!(lo < hi);
        assert!(
            or < 0.1,
            "zero successes vs 50%: OR point estimate well below 1, got {or}"
        );
        // At n=10 the corrected interval is wide — it may graze 1 — but the
        // bulk of it must sit below no-effect.
        assert!(hi < 1.5, "{hi}");
    }

    #[test]
    fn equal_odds_ratio_is_one() {
        let (or, lo, hi) = odds_ratio_interval(est(20, 100), est(20, 100), 0.95).unwrap();
        assert!((or - 1.0).abs() < 1e-12);
        assert!(lo < 1.0 && hi > 1.0);
    }
}
