//! Event tallies and contingency tables.
//!
//! A trial of a human–machine system produces, for each case, a pair of
//! binary outcomes: did the machine fail (`Mf`) and did the human fail
//! (`Hf`)? [`JointCounts`] accumulates the 2×2 table of those outcomes;
//! [`StratifiedCounts`] keeps one table per class of demand (the paper's
//! stratification by case difficulty). The estimators in
//! [`crate::estimate`] consume the marginal and conditional counts these
//! tables expose.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::estimate::BinomialEstimate;
use crate::{ProbError, Probability};

/// A 2×2 contingency table of (machine outcome) × (human outcome) counts.
///
/// The four cells count cases by whether the machine failed and whether the
/// human (and hence the system) failed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct JointCounts {
    /// Machine succeeded, human succeeded.
    pub ms_hs: u64,
    /// Machine succeeded, human failed.
    pub ms_hf: u64,
    /// Machine failed, human succeeded.
    pub mf_hs: u64,
    /// Machine failed, human failed.
    pub mf_hf: u64,
}

impl JointCounts {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        JointCounts::default()
    }

    /// Records one case.
    pub fn record(&mut self, machine_failed: bool, human_failed: bool) {
        match (machine_failed, human_failed) {
            (false, false) => self.ms_hs += 1,
            (false, true) => self.ms_hf += 1,
            (true, false) => self.mf_hs += 1,
            (true, true) => self.mf_hf += 1,
        }
    }

    /// Total number of recorded cases.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.ms_hs + self.ms_hf + self.mf_hs + self.mf_hf
    }

    /// Number of cases on which the machine failed.
    #[must_use]
    pub fn machine_failures(&self) -> u64 {
        self.mf_hs + self.mf_hf
    }

    /// Number of cases on which the human failed (= system failures in the
    /// sequential model).
    #[must_use]
    pub fn human_failures(&self) -> u64 {
        self.ms_hf + self.mf_hf
    }

    /// The estimate of `P(Mf)` for this stratum.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidCounts`] if the table is empty.
    pub fn p_machine_fails(&self) -> Result<BinomialEstimate, ProbError> {
        BinomialEstimate::new(self.machine_failures(), self.total())
    }

    /// The estimate of `P(Hf)` for this stratum.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidCounts`] if the table is empty.
    pub fn p_human_fails(&self) -> Result<BinomialEstimate, ProbError> {
        BinomialEstimate::new(self.human_failures(), self.total())
    }

    /// The estimate of `P(Hf | Ms)`: human failures among machine successes.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidCounts`] if the machine never succeeded
    /// in this stratum (the conditional is then inestimable).
    pub fn p_human_fails_given_machine_succeeds(&self) -> Result<BinomialEstimate, ProbError> {
        BinomialEstimate::new(self.ms_hf, self.ms_hs + self.ms_hf)
    }

    /// The estimate of `P(Hf | Mf)`: human failures among machine failures.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidCounts`] if the machine never failed in
    /// this stratum.
    pub fn p_human_fails_given_machine_fails(&self) -> Result<BinomialEstimate, ProbError> {
        BinomialEstimate::new(self.mf_hf, self.mf_hs + self.mf_hf)
    }

    /// The empirical coherence index `t̂ = P̂(Hf|Mf) − P̂(Hf|Ms)`
    /// (the paper's eq. 9 slope), or `None` if either conditional is
    /// inestimable.
    #[must_use]
    pub fn coherence_index(&self) -> Option<f64> {
        let given_mf = self.p_human_fails_given_machine_fails().ok()?;
        let given_ms = self.p_human_fails_given_machine_succeeds().ok()?;
        Some(given_mf.point().value() - given_ms.point().value())
    }

    /// The phi coefficient (Pearson correlation of the two binary outcomes),
    /// or `None` if any margin is zero.
    #[must_use]
    pub fn phi_coefficient(&self) -> Option<f64> {
        let a = self.mf_hf as f64;
        let b = self.mf_hs as f64;
        let c = self.ms_hf as f64;
        let d = self.ms_hs as f64;
        let denom = ((a + b) * (c + d) * (a + c) * (b + d)).sqrt();
        if denom == 0.0 {
            return None;
        }
        Some((a * d - b * c) / denom)
    }

    /// Merges another table into this one.
    pub fn merge(&mut self, other: &JointCounts) {
        self.ms_hs += other.ms_hs;
        self.ms_hf += other.ms_hf;
        self.mf_hs += other.mf_hs;
        self.mf_hf += other.mf_hf;
    }
}

impl fmt::Display for JointCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[Ms∧Hs={}, Ms∧Hf={}, Mf∧Hs={}, Mf∧Hf={}]",
            self.ms_hs, self.ms_hf, self.mf_hs, self.mf_hf
        )
    }
}

/// Per-class 2×2 tables, keyed by a class label.
///
/// # Example
///
/// ```
/// use hmdiv_prob::counts::StratifiedCounts;
///
/// let mut counts = StratifiedCounts::new();
/// counts.record("easy", false, false);
/// counts.record("easy", true, true);
/// counts.record("difficult", true, true);
/// assert_eq!(counts.stratum(&"easy").unwrap().total(), 2);
/// assert_eq!(counts.pooled().total(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StratifiedCounts<K: Ord> {
    strata: BTreeMap<K, JointCounts>,
}

impl<K: Ord> StratifiedCounts<K> {
    /// An empty set of strata.
    #[must_use]
    pub fn new() -> Self {
        StratifiedCounts {
            strata: BTreeMap::new(),
        }
    }

    /// Records one case in the given stratum.
    pub fn record(&mut self, class: K, machine_failed: bool, human_failed: bool) {
        self.strata
            .entry(class)
            .or_default()
            .record(machine_failed, human_failed);
    }

    /// The table for a stratum, if any case has been recorded there.
    #[must_use]
    pub fn stratum(&self, class: &K) -> Option<&JointCounts> {
        self.strata.get(class)
    }

    /// Iterates over `(class, table)` pairs in class order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &JointCounts)> {
        self.strata.iter()
    }

    /// Number of non-empty strata.
    #[must_use]
    pub fn len(&self) -> usize {
        self.strata.len()
    }

    /// Whether no case has been recorded at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.strata.is_empty()
    }

    /// All cases pooled into a single table (discarding stratification).
    #[must_use]
    pub fn pooled(&self) -> JointCounts {
        let mut out = JointCounts::new();
        for t in self.strata.values() {
            out.merge(t);
        }
        out
    }

    /// The empirical demand profile: each stratum's share of total cases.
    ///
    /// Returns `(class, share)` pairs in class order; empty if no cases.
    #[must_use]
    pub fn empirical_profile(&self) -> Vec<(&K, Probability)> {
        let total = self.pooled().total();
        if total == 0 {
            return Vec::new();
        }
        self.strata
            .iter()
            .map(|(k, t)| (k, Probability::clamped(t.total() as f64 / total as f64)))
            .collect()
    }

    /// Merges a whole pre-accumulated table into a stratum. Used by dense
    /// accumulators (indexed by an interned class universe) to materialise a
    /// keyed view at the end of a run.
    pub fn add_table(&mut self, class: K, table: JointCounts) {
        self.strata.entry(class).or_default().merge(&table);
    }

    /// Merges another stratified tally into this one.
    pub fn merge(&mut self, other: StratifiedCounts<K>) {
        for (k, t) in other.strata {
            self.strata.entry(k).or_default().merge(&t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(ms_hs: u64, ms_hf: u64, mf_hs: u64, mf_hf: u64) -> JointCounts {
        JointCounts {
            ms_hs,
            ms_hf,
            mf_hs,
            mf_hf,
        }
    }

    #[test]
    fn record_fills_correct_cells() {
        let mut t = JointCounts::new();
        t.record(false, false);
        t.record(false, true);
        t.record(true, false);
        t.record(true, true);
        t.record(true, true);
        assert_eq!(t, table(1, 1, 1, 2));
        assert_eq!(t.total(), 5);
        assert_eq!(t.machine_failures(), 3);
        assert_eq!(t.human_failures(), 3);
    }

    #[test]
    fn conditional_estimates() {
        // 93 Ms (of which 13 Hf), 7 Mf (of which 2 Hf).
        let t = table(80, 13, 5, 2);
        let p_mf = t.p_machine_fails().unwrap().point().value();
        assert!((p_mf - 0.07).abs() < 1e-12);
        let hf_ms = t
            .p_human_fails_given_machine_succeeds()
            .unwrap()
            .point()
            .value();
        assert!((hf_ms - 13.0 / 93.0).abs() < 1e-12);
        let hf_mf = t
            .p_human_fails_given_machine_fails()
            .unwrap()
            .point()
            .value();
        assert!((hf_mf - 2.0 / 7.0).abs() < 1e-12);
        let t_hat = t.coherence_index().unwrap();
        assert!((t_hat - (2.0 / 7.0 - 13.0 / 93.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_margins_are_errors_not_panics() {
        let no_mf = table(10, 2, 0, 0);
        assert!(no_mf.p_human_fails_given_machine_fails().is_err());
        assert!(no_mf.coherence_index().is_none());
        let no_ms = table(0, 0, 10, 2);
        assert!(no_ms.p_human_fails_given_machine_succeeds().is_err());
        let empty = JointCounts::new();
        assert!(empty.p_machine_fails().is_err());
    }

    #[test]
    fn phi_coefficient_signs() {
        // Perfect positive association.
        assert!((table(50, 0, 0, 50).phi_coefficient().unwrap() - 1.0).abs() < 1e-12);
        // Perfect negative association.
        assert!((table(0, 50, 50, 0).phi_coefficient().unwrap() + 1.0).abs() < 1e-12);
        // Independence-ish.
        let phi = table(45, 5, 45, 5).phi_coefficient().unwrap();
        assert!(phi.abs() < 1e-12);
        // Zero margin → undefined.
        assert!(table(10, 0, 10, 0).phi_coefficient().is_none());
    }

    #[test]
    fn merge_adds_cellwise() {
        let mut a = table(1, 2, 3, 4);
        a.merge(&table(10, 20, 30, 40));
        assert_eq!(a, table(11, 22, 33, 44));
    }

    #[test]
    fn stratified_basic_flow() {
        let mut s = StratifiedCounts::new();
        assert!(s.is_empty());
        for _ in 0..8 {
            s.record("easy", false, false);
        }
        s.record("easy", true, true);
        s.record("difficult", true, true);
        assert_eq!(s.len(), 2);
        assert_eq!(s.stratum(&"easy").unwrap().total(), 9);
        assert!(s.stratum(&"missing").is_none());
        let profile = s.empirical_profile();
        assert_eq!(profile.len(), 2);
        // BTreeMap order: "difficult" < "easy".
        assert_eq!(*profile[0].0, "difficult");
        assert!((profile[1].1.value() - 0.9).abs() < 1e-12);
        assert_eq!(s.pooled().total(), 10);
    }

    #[test]
    fn add_table_merges_into_stratum() {
        let mut s = StratifiedCounts::new();
        s.record("a", true, true);
        s.add_table("a", table(1, 2, 3, 4));
        s.add_table("b", table(5, 0, 0, 0));
        assert_eq!(*s.stratum(&"a").unwrap(), table(1, 2, 3, 5));
        assert_eq!(*s.stratum(&"b").unwrap(), table(5, 0, 0, 0));
        // Empty tables still create the stratum only via add_table's entry;
        // callers filter zero-total tables if they want sparse output.
        s.add_table("c", JointCounts::new());
        assert_eq!(s.stratum(&"c").unwrap().total(), 0);
    }

    #[test]
    fn stratified_merge() {
        let mut a = StratifiedCounts::new();
        a.record(1u8, true, false);
        let mut b = StratifiedCounts::new();
        b.record(1u8, true, false);
        b.record(2u8, false, true);
        a.merge(b);
        assert_eq!(a.stratum(&1).unwrap().mf_hs, 2);
        assert_eq!(a.stratum(&2).unwrap().ms_hf, 1);
    }

    #[test]
    fn empirical_profile_empty() {
        let s: StratifiedCounts<u8> = StratifiedCounts::new();
        assert!(s.empirical_profile().is_empty());
    }
}
