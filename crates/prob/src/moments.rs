//! Weighted moments over discrete distributions: means, variances,
//! covariances and correlations.
//!
//! The paper's eq. (10) decomposes the system failure probability as
//!
//! ```text
//! PHf = E[PHf|Ms(x)] + E[PMf(x)]·E[t(x)] + cov(PMf(x), t(x))
//! ```
//!
//! where the expectations are taken over the demand profile `p(x)`. The
//! functions here compute exactly those profile-weighted moments, and the
//! covariance of eq. (3) for the parallel-detection model.

use crate::{Categorical, ProbError};

/// The weighted mean `Σ wᵢ fᵢ / Σ wᵢ`.
///
/// # Errors
///
/// * [`ProbError::LengthMismatch`] if `weights` and `values` differ in
///   length.
/// * [`ProbError::Empty`] if they are empty.
/// * [`ProbError::InvalidWeights`] if weights are negative/NaN or all zero.
pub fn weighted_mean(weights: &[f64], values: &[f64]) -> Result<f64, ProbError> {
    validate(weights, values)?;
    let total: f64 = weights.iter().sum();
    Ok(weights.iter().zip(values).map(|(w, v)| w * v).sum::<f64>() / total)
}

/// The weighted (population) variance `E[f²] − E[f]²`.
///
/// # Errors
///
/// Same conditions as [`weighted_mean`].
pub fn weighted_variance(weights: &[f64], values: &[f64]) -> Result<f64, ProbError> {
    let mean = weighted_mean(weights, values)?;
    let total: f64 = weights.iter().sum();
    let var = weights
        .iter()
        .zip(values)
        .map(|(w, v)| w * (v - mean) * (v - mean))
        .sum::<f64>()
        / total;
    Ok(var.max(0.0))
}

/// The weighted (population) covariance `E[fg] − E[f]E[g]`.
///
/// This is the `cov` of the paper's eqs. (3) and (10): positive when the
/// cases that are hard for one component tend to be hard for the other
/// (correlated failure, diminished redundancy), negative when difficulties
/// are complementary (useful diversity).
///
/// # Errors
///
/// Same conditions as [`weighted_mean`], checked for both value slices.
pub fn weighted_covariance(
    weights: &[f64],
    values_a: &[f64],
    values_b: &[f64],
) -> Result<f64, ProbError> {
    validate(weights, values_a)?;
    validate(weights, values_b)?;
    let mean_a = weighted_mean(weights, values_a)?;
    let mean_b = weighted_mean(weights, values_b)?;
    let total: f64 = weights.iter().sum();
    Ok(weights
        .iter()
        .zip(values_a.iter().zip(values_b))
        .map(|(w, (a, b))| w * (a - mean_a) * (b - mean_b))
        .sum::<f64>()
        / total)
}

/// The weighted Pearson correlation `cov(f, g) / (σ_f σ_g)`.
///
/// Returns `None` when either variance is zero (correlation undefined).
///
/// # Errors
///
/// Same conditions as [`weighted_covariance`].
pub fn weighted_correlation(
    weights: &[f64],
    values_a: &[f64],
    values_b: &[f64],
) -> Result<Option<f64>, ProbError> {
    let cov = weighted_covariance(weights, values_a, values_b)?;
    let var_a = weighted_variance(weights, values_a)?;
    let var_b = weighted_variance(weights, values_b)?;
    if var_a <= 0.0 || var_b <= 0.0 {
        return Ok(None);
    }
    Ok(Some((cov / (var_a * var_b).sqrt()).clamp(-1.0, 1.0)))
}

fn validate(weights: &[f64], values: &[f64]) -> Result<(), ProbError> {
    if weights.len() != values.len() {
        return Err(ProbError::LengthMismatch {
            left: weights.len(),
            right: values.len(),
        });
    }
    if weights.is_empty() {
        return Err(ProbError::Empty {
            context: "weighted sample",
        });
    }
    let mut total = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        if w.is_nan() || w < 0.0 || w.is_infinite() {
            return Err(ProbError::InvalidWeights {
                detail: format!("weight {w} at index {i} is not a finite non-negative number"),
            });
        }
        total += w;
    }
    if total <= 0.0 {
        return Err(ProbError::InvalidWeights {
            detail: "all weights are zero".into(),
        });
    }
    Ok(())
}

/// Moments of per-category functions under a [`Categorical`] distribution.
///
/// These are convenience wrappers that evaluate `f` (and `g`) once per
/// category and weight by the category probabilities.
pub trait CategoricalMoments<T> {
    /// `E[f(X)]` under the distribution.
    fn mean_of<F: FnMut(&T) -> f64>(&self, f: F) -> f64;
    /// `Var[f(X)]` under the distribution.
    fn variance_of<F: FnMut(&T) -> f64>(&self, f: F) -> f64;
    /// `Cov[f(X), g(X)]` under the distribution.
    fn covariance_of<F: FnMut(&T) -> f64, G: FnMut(&T) -> f64>(&self, f: F, g: G) -> f64;
}

impl<T> CategoricalMoments<T> for Categorical<T> {
    fn mean_of<F: FnMut(&T) -> f64>(&self, f: F) -> f64 {
        self.expect(f)
    }

    fn variance_of<F: FnMut(&T) -> f64>(&self, mut f: F) -> f64 {
        let values: Vec<f64> = self.categories().iter().map(&mut f).collect();
        let weights: Vec<f64> = (0..self.len())
            .map(|i| self.probability_at(i).value())
            .collect();
        weighted_variance(&weights, &values).expect("categorical weights are valid by construction")
    }

    fn covariance_of<F: FnMut(&T) -> f64, G: FnMut(&T) -> f64>(&self, mut f: F, mut g: G) -> f64 {
        let a: Vec<f64> = self.categories().iter().map(&mut f).collect();
        let b: Vec<f64> = self.categories().iter().map(&mut g).collect();
        let weights: Vec<f64> = (0..self.len())
            .map(|i| self.probability_at(i).value())
            .collect();
        weighted_covariance(&weights, &a, &b)
            .expect("categorical weights are valid by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basic() {
        let w = [1.0, 1.0, 1.0, 1.0];
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((weighted_mean(&w, &v).unwrap() - 2.5).abs() < 1e-12);
        assert!((weighted_variance(&w, &v).unwrap() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn unequal_weights() {
        let w = [3.0, 1.0];
        let v = [0.0, 4.0];
        assert!((weighted_mean(&w, &v).unwrap() - 1.0).abs() < 1e-12);
        // E[v²] = (3·0 + 1·16)/4 = 4; var = 4 − 1 = 3.
        assert!((weighted_variance(&w, &v).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_signs() {
        let w = [0.5, 0.5];
        // Perfectly aligned difficulty: positive covariance.
        assert!(weighted_covariance(&w, &[0.1, 0.9], &[0.2, 0.8]).unwrap() > 0.0);
        // Complementary difficulty: negative covariance (diversity!).
        assert!(weighted_covariance(&w, &[0.1, 0.9], &[0.8, 0.2]).unwrap() < 0.0);
        // Constant second variable: zero covariance.
        assert!(
            weighted_covariance(&w, &[0.1, 0.9], &[0.5, 0.5])
                .unwrap()
                .abs()
                < 1e-15
        );
    }

    #[test]
    fn covariance_identity_e_fg() {
        // cov(f,g) must equal E[fg] − E[f]E[g].
        let w = [0.2, 0.3, 0.5];
        let a = [0.07, 0.41, 0.2];
        let b = [0.04, 0.5, 0.3];
        let cov = weighted_covariance(&w, &a, &b).unwrap();
        let e_fg = weighted_mean(&w, &[a[0] * b[0], a[1] * b[1], a[2] * b[2]]).unwrap();
        let e_f = weighted_mean(&w, &a).unwrap();
        let e_g = weighted_mean(&w, &b).unwrap();
        assert!((cov - (e_fg - e_f * e_g)).abs() < 1e-12);
    }

    #[test]
    fn correlation_bounds_and_undefined() {
        let w = [0.5, 0.5];
        let r = weighted_correlation(&w, &[0.0, 1.0], &[0.0, 1.0])
            .unwrap()
            .unwrap();
        assert!((r - 1.0).abs() < 1e-12);
        let r = weighted_correlation(&w, &[0.0, 1.0], &[1.0, 0.0])
            .unwrap()
            .unwrap();
        assert!((r + 1.0).abs() < 1e-12);
        assert!(weighted_correlation(&w, &[0.5, 0.5], &[0.0, 1.0])
            .unwrap()
            .is_none());
    }

    #[test]
    fn validation_errors() {
        assert!(weighted_mean(&[], &[]).is_err());
        assert!(weighted_mean(&[1.0], &[1.0, 2.0]).is_err());
        assert!(weighted_mean(&[-1.0, 2.0], &[1.0, 2.0]).is_err());
        assert!(weighted_mean(&[0.0, 0.0], &[1.0, 2.0]).is_err());
        assert!(weighted_mean(&[f64::NAN, 1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn categorical_moments_match_direct() {
        let d = Categorical::new(vec![("easy", 0.9), ("difficult", 0.1)]).unwrap();
        let pmf = |c: &&str| if *c == "easy" { 0.07 } else { 0.41 };
        let t = |c: &&str| if *c == "easy" { 0.04 } else { 0.5 };
        let mean = d.mean_of(pmf);
        assert!((mean - (0.9 * 0.07 + 0.1 * 0.41)).abs() < 1e-12);
        let cov = d.covariance_of(pmf, t);
        let direct = weighted_covariance(&[0.9, 0.1], &[0.07, 0.41], &[0.04, 0.5]).unwrap();
        assert!((cov - direct).abs() < 1e-15);
        assert!(
            cov > 0.0,
            "aligned difficulty should give positive covariance"
        );
    }

    #[test]
    fn variance_never_negative() {
        // Catastrophic cancellation guard: near-constant values.
        let w = [1.0; 5];
        let v = [0.3; 5];
        assert_eq!(weighted_variance(&w, &v).unwrap(), 0.0);
    }
}
