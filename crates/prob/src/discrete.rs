//! Discrete distributions over arbitrary categories.
//!
//! The paper's *demand profile* `p(x)` — the probability that a screening
//! case belongs to class `x` — is a categorical distribution. [`Categorical`]
//! stores normalised weights and supports O(1) sampling via Walker's alias
//! method, expectation of per-category functions, and reweighting (the §5
//! trial → field profile change).

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{ProbError, Probability};

/// A normalised discrete distribution over categories of type `T`.
///
/// Construction validates the weights (non-negative, finite, not all zero)
/// and normalises them to sum to one. Sampling uses Walker's alias method,
/// built lazily on first use and cached.
///
/// # Example
///
/// ```
/// use hmdiv_prob::Categorical;
///
/// # fn main() -> Result<(), hmdiv_prob::ProbError> {
/// // The paper's trial profile: 80% easy, 20% difficult.
/// let profile = Categorical::new(vec![("easy", 0.8), ("difficult", 0.2)])?;
/// assert_eq!(profile.len(), 2);
/// assert!((profile.probability_of(&"easy").unwrap().value() - 0.8).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Categorical<T> {
    categories: Vec<T>,
    probabilities: Vec<f64>,
    #[serde(skip)]
    alias: std::sync::OnceLock<AliasTable>,
}

impl<T: PartialEq> PartialEq for Categorical<T> {
    fn eq(&self, other: &Self) -> bool {
        self.categories == other.categories && self.probabilities == other.probabilities
    }
}

impl<T> Categorical<T> {
    /// Builds a distribution from `(category, weight)` pairs.
    ///
    /// Weights need not sum to one; they are normalised. Zero weights are
    /// allowed (the category is kept but never sampled).
    ///
    /// # Errors
    ///
    /// * [`ProbError::Empty`] if no pairs are given.
    /// * [`ProbError::InvalidWeights`] if any weight is negative, NaN or
    ///   infinite, or if all weights are zero.
    pub fn new(pairs: Vec<(T, f64)>) -> Result<Self, ProbError> {
        if pairs.is_empty() {
            return Err(ProbError::Empty {
                context: "categorical distribution",
            });
        }
        let mut total = 0.0;
        for (i, (_, w)) in pairs.iter().enumerate() {
            if w.is_nan() || w.is_infinite() || *w < 0.0 {
                return Err(ProbError::InvalidWeights {
                    detail: format!("weight {w} at index {i} is not a finite non-negative number"),
                });
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(ProbError::InvalidWeights {
                detail: "all weights are zero".into(),
            });
        }
        let (categories, probabilities) = pairs.into_iter().map(|(c, w)| (c, w / total)).unzip();
        Ok(Categorical {
            categories,
            probabilities,
            alias: std::sync::OnceLock::new(),
        })
    }

    /// Builds the uniform distribution over the given categories.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::Empty`] if `categories` is empty.
    pub fn uniform(categories: Vec<T>) -> Result<Self, ProbError> {
        let n = categories.len();
        if n == 0 {
            return Err(ProbError::Empty {
                context: "categorical distribution",
            });
        }
        let p = 1.0 / n as f64;
        Ok(Categorical {
            categories,
            probabilities: vec![p; n],
            alias: std::sync::OnceLock::new(),
        })
    }

    /// Number of categories (including zero-probability ones).
    #[must_use]
    pub fn len(&self) -> usize {
        self.categories.len()
    }

    /// Returns `true` if the distribution has no categories.
    ///
    /// Always `false` for a successfully constructed value; provided for
    /// API completeness alongside [`Categorical::len`].
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.categories.is_empty()
    }

    /// The categories, in construction order.
    #[must_use]
    pub fn categories(&self) -> &[T] {
        &self.categories
    }

    /// The normalised probability of the category at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[must_use]
    pub fn probability_at(&self, index: usize) -> Probability {
        Probability::clamped(self.probabilities[index])
    }

    /// Iterates over `(category, probability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&T, Probability)> + '_ {
        self.categories
            .iter()
            .zip(self.probabilities.iter().map(|&p| Probability::clamped(p)))
    }

    /// The expectation `Σ p(x)·f(x)` of a per-category function.
    ///
    /// This is the workhorse behind the paper's eq. (8): the system failure
    /// probability is the profile-expectation of the per-class failure
    /// probability.
    pub fn expect<F: FnMut(&T) -> f64>(&self, mut f: F) -> f64 {
        self.categories
            .iter()
            .zip(&self.probabilities)
            .map(|(c, &p)| p * f(c))
            .sum()
    }

    /// Samples a category index.
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let table = self
            .alias
            .get_or_init(|| AliasTable::new(&self.probabilities));
        table.sample(rng)
    }

    /// Samples a reference to a category.
    pub fn sample<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> &'a T {
        &self.categories[self.sample_index(rng)]
    }

    /// Returns a new distribution with the same categories but new weights,
    /// produced by `reweight(category, old_probability)`.
    ///
    /// This implements the paper's §5 *demand-profile change*: keep the
    /// classes, replace `p(x)`.
    ///
    /// # Errors
    ///
    /// Same as [`Categorical::new`].
    pub fn reweighted<F>(&self, mut reweight: F) -> Result<Self, ProbError>
    where
        T: Clone,
        F: FnMut(&T, Probability) -> f64,
    {
        let pairs = self
            .categories
            .iter()
            .zip(&self.probabilities)
            .map(|(c, &p)| (c.clone(), reweight(c, Probability::clamped(p))))
            .collect();
        Categorical::new(pairs)
    }

    /// Total-variation distance to another distribution over the *same*
    /// category sequence: `½ Σ |p(x) − q(x)|`.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::LengthMismatch`] if the distributions have
    /// different numbers of categories. Categories are matched by position.
    pub fn total_variation(&self, other: &Self) -> Result<f64, ProbError> {
        if self.len() != other.len() {
            return Err(ProbError::LengthMismatch {
                left: self.len(),
                right: other.len(),
            });
        }
        Ok(self
            .probabilities
            .iter()
            .zip(&other.probabilities)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / 2.0)
    }
}

impl<T: PartialEq> Categorical<T> {
    /// The probability of a given category, or `None` if it is not present.
    #[must_use]
    pub fn probability_of(&self, category: &T) -> Option<Probability> {
        self.categories
            .iter()
            .position(|c| c == category)
            .map(|i| self.probability_at(i))
    }
}

impl<T: fmt::Display> fmt::Display for Categorical<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (c, p)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}: {p}")?;
        }
        write!(f, "}}")
    }
}

/// Walker alias table for O(1) categorical sampling.
#[derive(Debug, Clone)]
struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    fn new(probabilities: &[f64]) -> Self {
        let n = probabilities.len();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let mut scaled: Vec<f64> = probabilities.iter().map(|p| p * n as f64).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked non-empty");
            let l = large.pop().expect("checked non-empty");
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Whatever remains is 1.0 up to round-off.
        for i in large.into_iter().chain(small) {
            prob[i] = 1.0;
        }
        AliasTable { prob, alias }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let n = self.prob.len();
        let i = rng.gen_range(0..n);
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn new_normalises() {
        let d = Categorical::new(vec![("a", 2.0), ("b", 6.0)]).unwrap();
        assert!((d.probability_at(0).value() - 0.25).abs() < 1e-12);
        assert!((d.probability_at(1).value() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn new_rejects_bad_weights() {
        assert!(Categorical::<&str>::new(vec![]).is_err());
        assert!(Categorical::new(vec![("a", -1.0)]).is_err());
        assert!(Categorical::new(vec![("a", f64::NAN)]).is_err());
        assert!(Categorical::new(vec![("a", f64::INFINITY)]).is_err());
        assert!(Categorical::new(vec![("a", 0.0), ("b", 0.0)]).is_err());
    }

    #[test]
    fn zero_weight_category_kept_but_never_sampled() {
        let d = Categorical::new(vec![("never", 0.0), ("always", 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(*d.sample(&mut rng), "always");
        }
        assert_eq!(d.probability_of(&"never").unwrap(), Probability::ZERO);
    }

    #[test]
    fn uniform_is_uniform() {
        let d = Categorical::uniform(vec![1, 2, 3, 4]).unwrap();
        for i in 0..4 {
            assert!((d.probability_at(i).value() - 0.25).abs() < 1e-12);
        }
        assert!(Categorical::<u8>::uniform(vec![]).is_err());
    }

    #[test]
    fn expectation_matches_hand_computation() {
        // Paper table 2, trial profile: 0.8·0.1428 + 0.2·0.605 = 0.23524
        let d = Categorical::new(vec![("easy", 0.8), ("difficult", 0.2)]).unwrap();
        let phf = d.expect(|c| if *c == "easy" { 0.1428 } else { 0.605 });
        assert!((phf - 0.23524).abs() < 1e-12);
    }

    #[test]
    fn sampling_frequencies_converge() {
        let d = Categorical::new(vec![(0usize, 0.9), (1, 0.07), (2, 0.03)]).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[d.sample_index(&mut rng)] += 1;
        }
        let freqs: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert!((freqs[0] - 0.9).abs() < 0.01, "{freqs:?}");
        assert!((freqs[1] - 0.07).abs() < 0.01, "{freqs:?}");
        assert!((freqs[2] - 0.03).abs() < 0.01, "{freqs:?}");
    }

    #[test]
    fn reweighted_changes_profile() {
        let trial = Categorical::new(vec![("easy", 0.8), ("difficult", 0.2)]).unwrap();
        let field = trial
            .reweighted(|c, _| if *c == "easy" { 0.9 } else { 0.1 })
            .unwrap();
        assert!((field.probability_of(&"easy").unwrap().value() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn total_variation_basic() {
        let a = Categorical::new(vec![("x", 0.8), ("y", 0.2)]).unwrap();
        let b = Categorical::new(vec![("x", 0.9), ("y", 0.1)]).unwrap();
        let tv = a.total_variation(&b).unwrap();
        assert!((tv - 0.1).abs() < 1e-12);
        assert_eq!(a.total_variation(&a).unwrap(), 0.0);
        let c = Categorical::new(vec![("x", 1.0)]).unwrap();
        assert!(a.total_variation(&c).is_err());
    }

    #[test]
    fn display_lists_categories() {
        let d = Categorical::new(vec![("a", 1.0), ("b", 1.0)]).unwrap();
        let s = d.to_string();
        assert!(s.contains("a: 0.5") && s.contains("b: 0.5"), "{s}");
    }

    #[test]
    fn single_category_always_sampled() {
        let d = Categorical::new(vec![("only", 3.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(*d.sample(&mut rng), "only");
        assert_eq!(d.probability_at(0), Probability::ONE);
    }
}
