//! Streaming moment accumulators for Monte-Carlo runs.
//!
//! The simulation engine pushes millions of per-case outcomes; these
//! accumulators maintain numerically stable running moments (Welford's
//! algorithm and its bivariate extension) without storing the stream.

use serde::{Deserialize, Serialize};

use crate::{ProbError, Probability};

/// Welford running mean/variance accumulator.
///
/// # Example
///
/// ```
/// use hmdiv_prob::seq::RunningMoments;
///
/// let mut acc = RunningMoments::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.count(), 4);
/// assert!((acc.mean().unwrap() - 2.5).abs() < 1e-12);
/// assert!((acc.sample_variance().unwrap() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningMoments {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningMoments {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        RunningMoments::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The running mean, or `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// The population variance (divides by `n`), or `None` if empty.
    #[must_use]
    pub fn population_variance(&self) -> Option<f64> {
        (self.count > 0).then(|| (self.m2 / self.count as f64).max(0.0))
    }

    /// The sample variance (divides by `n − 1`), or `None` if fewer than two
    /// observations.
    #[must_use]
    pub fn sample_variance(&self) -> Option<f64> {
        (self.count > 1).then(|| (self.m2 / (self.count - 1) as f64).max(0.0))
    }

    /// The standard error of the mean `√(s²/n)`, or `None` if fewer than two
    /// observations.
    #[must_use]
    pub fn standard_error(&self) -> Option<f64> {
        self.sample_variance()
            .map(|v| (v / self.count as f64).sqrt())
    }

    /// Merges another accumulator (Chan et al. parallel combination).
    pub fn merge(&mut self, other: &RunningMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }
}

/// Running Bernoulli tally: count of hits out of observations, convertible
/// into a [`Probability`] estimate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BernoulliTally {
    hits: u64,
    total: u64,
}

impl BernoulliTally {
    /// An empty tally.
    #[must_use]
    pub fn new() -> Self {
        BernoulliTally::default()
    }

    /// Records one observation.
    pub fn push(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Number of hits.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The empirical frequency, or an error if nothing was observed.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidCounts`] if the tally is empty.
    pub fn frequency(&self) -> Result<Probability, ProbError> {
        if self.total == 0 {
            return Err(ProbError::InvalidCounts {
                successes: self.hits,
                trials: 0,
            });
        }
        Probability::from_ratio(self.hits, self.total)
    }

    /// Merges another tally.
    pub fn merge(&mut self, other: &BernoulliTally) {
        self.hits += other.hits;
        self.total += other.total;
    }
}

/// Bivariate Welford accumulator: running means, variances and covariance of
/// a paired stream — used to estimate failure-probability covariances from
/// simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningCovariance {
    count: u64,
    mean_x: f64,
    mean_y: f64,
    m2_x: f64,
    m2_y: f64,
    c2: f64,
}

impl RunningCovariance {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        RunningCovariance::default()
    }

    /// Adds one paired observation.
    pub fn push(&mut self, x: f64, y: f64) {
        self.count += 1;
        let n = self.count as f64;
        let dx = x - self.mean_x;
        self.mean_x += dx / n;
        self.m2_x += dx * (x - self.mean_x);
        let dy = y - self.mean_y;
        self.mean_y += dy / n;
        self.m2_y += dy * (y - self.mean_y);
        // Uses the updated mean_x and pre-update mean_y correction form.
        self.c2 += dx * (y - self.mean_y);
    }

    /// Number of paired observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The population covariance, or `None` if empty.
    #[must_use]
    pub fn population_covariance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.c2 / self.count as f64)
    }

    /// The sample covariance (divides by `n − 1`), or `None` if fewer than
    /// two observations.
    #[must_use]
    pub fn sample_covariance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.c2 / (self.count - 1) as f64)
    }

    /// The Pearson correlation, or `None` if undefined.
    #[must_use]
    pub fn correlation(&self) -> Option<f64> {
        if self.count == 0 || self.m2_x <= 0.0 || self.m2_y <= 0.0 {
            return None;
        }
        Some((self.c2 / (self.m2_x * self.m2_y).sqrt()).clamp(-1.0, 1.0))
    }

    /// Merges another accumulator.
    pub fn merge(&mut self, other: &RunningCovariance) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let total = n1 + n2;
        let dx = other.mean_x - self.mean_x;
        let dy = other.mean_y - self.mean_y;
        self.m2_x += other.m2_x + dx * dx * n1 * n2 / total;
        self.m2_y += other.m2_y + dy * dy * n1 * n2 / total;
        self.c2 += other.c2 + dx * dy * n1 * n2 / total;
        self.mean_x += dx * n2 / total;
        self.mean_y += dy * n2 / total;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_moments_empty_and_single() {
        let mut acc = RunningMoments::new();
        assert!(acc.mean().is_none());
        assert!(acc.population_variance().is_none());
        acc.push(3.0);
        assert_eq!(acc.mean(), Some(3.0));
        assert_eq!(acc.population_variance(), Some(0.0));
        assert!(acc.sample_variance().is_none());
    }

    #[test]
    fn running_moments_match_direct() {
        let data = [0.07, 0.41, 0.9, 0.4, 0.18, 0.14];
        let mut acc = RunningMoments::new();
        for &x in &data {
            acc.push(x);
        }
        let mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
        let var: f64 =
            data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / data.len() as f64;
        assert!((acc.mean().unwrap() - mean).abs() < 1e-12);
        assert!((acc.population_variance().unwrap() - var).abs() < 1e-12);
        assert!(acc.standard_error().unwrap() > 0.0);
    }

    #[test]
    fn running_moments_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let mut whole = RunningMoments::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = RunningMoments::new();
        let mut b = RunningMoments::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-12);
        assert!((a.sample_variance().unwrap() - whole.sample_variance().unwrap()).abs() < 1e-12);
        // Merging an empty accumulator is the identity.
        let before = a;
        a.merge(&RunningMoments::new());
        assert_eq!(a, before);
    }

    #[test]
    fn bernoulli_tally() {
        let mut t = BernoulliTally::new();
        assert!(t.frequency().is_err());
        for i in 0..10 {
            t.push(i < 3);
        }
        assert_eq!(t.hits(), 3);
        assert_eq!(t.total(), 10);
        assert!((t.frequency().unwrap().value() - 0.3).abs() < 1e-12);
        let mut u = BernoulliTally::new();
        u.push(true);
        t.merge(&u);
        assert_eq!(t.hits(), 4);
        assert_eq!(t.total(), 11);
    }

    #[test]
    fn running_covariance_matches_direct() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.0, 1.0, 4.0, 3.0, 5.0];
        let mut acc = RunningCovariance::new();
        for (x, y) in xs.iter().zip(&ys) {
            acc.push(*x, *y);
        }
        let mx: f64 = xs.iter().sum::<f64>() / 5.0;
        let my: f64 = ys.iter().sum::<f64>() / 5.0;
        let cov: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x - mx) * (y - my))
            .sum::<f64>()
            / 5.0;
        assert!((acc.population_covariance().unwrap() - cov).abs() < 1e-12);
        assert!(acc.correlation().unwrap() > 0.0);
    }

    #[test]
    fn running_covariance_merge_equals_sequential() {
        let pairs: Vec<(f64, f64)> = (0..50)
            .map(|i| ((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let mut whole = RunningCovariance::new();
        for &(x, y) in &pairs {
            whole.push(x, y);
        }
        let mut a = RunningCovariance::new();
        let mut b = RunningCovariance::new();
        for &(x, y) in &pairs[..20] {
            a.push(x, y);
        }
        for &(x, y) in &pairs[20..] {
            b.push(x, y);
        }
        a.merge(&b);
        assert!(
            (a.population_covariance().unwrap() - whole.population_covariance().unwrap()).abs()
                < 1e-12
        );
        assert!((a.correlation().unwrap() - whole.correlation().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn covariance_degenerate_cases() {
        let mut acc = RunningCovariance::new();
        assert!(acc.population_covariance().is_none());
        acc.push(1.0, 1.0);
        assert!(acc.sample_covariance().is_none());
        assert!(acc.correlation().is_none()); // zero variance
        acc.push(1.0, 2.0);
        assert!(acc.correlation().is_none()); // x still constant
    }
}
