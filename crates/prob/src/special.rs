//! Special functions needed by the estimators: log-gamma, the regularised
//! incomplete beta function, the standard-normal CDF and quantile.
//!
//! These are textbook implementations (Lanczos approximation, Lentz
//! continued fraction, Acklam's quantile algorithm) accurate to well beyond
//! the statistical precision any caller in this workspace needs (absolute
//! error below `1e-10` across the tested domain).

/// Natural log of the gamma function, via the Lanczos approximation (g=7,
/// n=9 coefficients).
///
/// # Panics
///
/// Panics if `x` is not strictly positive (the reflection branch is not
/// needed by any caller here and is deliberately unimplemented).
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_1,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx)
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Natural log of the beta function `B(a, b)`.
#[must_use]
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// The regularised incomplete beta function `I_x(a, b)`, computed with the
/// Lentz continued-fraction expansion.
///
/// Returns values clamped to `[0, 1]`.
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0`, or `x` is outside `[0, 1]`.
#[must_use]
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(
        a > 0.0 && b > 0.0,
        "incomplete_beta requires a, b > 0, got a={a}, b={b}"
    );
    assert!(
        (0.0..=1.0).contains(&x),
        "incomplete_beta requires x in [0,1], got {x}"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    // Use the symmetry I_x(a,b) = 1 − I_{1−x}(b,a) to keep the continued
    // fraction in its fast-converging region.
    if x > (a + 1.0) / (a + b + 2.0) {
        return 1.0 - incomplete_beta(b, a, 1.0 - x);
    }
    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b) - a.ln();
    let front = ln_front.exp();
    // Lentz's algorithm.
    const TINY: f64 = 1e-300;
    const EPS: f64 = 1e-15;
    let mut f = 1.0;
    let mut c = 1.0;
    let mut d = 0.0;
    for i in 0..400 {
        let m = i / 2;
        let numerator = if i == 0 {
            1.0
        } else if i % 2 == 0 {
            let m = m as f64;
            (m * (b - m) * x) / ((a + 2.0 * m - 1.0) * (a + 2.0 * m))
        } else {
            let m = m as f64;
            -((a + m) * (a + b + m) * x) / ((a + 2.0 * m) * (a + 2.0 * m + 1.0))
        };
        d = 1.0 + numerator * d;
        if d.abs() < TINY {
            d = TINY;
        }
        d = 1.0 / d;
        c = 1.0 + numerator / c;
        if c.abs() < TINY {
            c = TINY;
        }
        let cd = c * d;
        f *= cd;
        if (1.0 - cd).abs() < EPS {
            break;
        }
    }
    (front * (f - 1.0)).clamp(0.0, 1.0)
}

/// Quantile of the Beta(a, b) distribution: the `p`-th quantile `x` with
/// `I_x(a, b) = p`, found by bisection refined with Newton steps.
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0`, or `p` outside `[0, 1]`.
#[must_use]
pub fn beta_quantile(a: f64, b: f64, p: f64) -> f64 {
    assert!(
        a > 0.0 && b > 0.0,
        "beta_quantile requires a, b > 0, got a={a}, b={b}"
    );
    assert!(
        (0.0..=1.0).contains(&p),
        "beta_quantile requires p in [0,1], got {p}"
    );
    if p == 0.0 {
        return 0.0;
    }
    if p == 1.0 {
        return 1.0;
    }
    let mut lo = 0.0_f64;
    let mut hi = 1.0_f64;
    let mut x = a / (a + b); // mean as the starting point
    for _ in 0..200 {
        let v = incomplete_beta(a, b, x);
        if v > p {
            hi = x;
        } else {
            lo = x;
        }
        // Newton step from the beta density where usable, else bisection.
        let ln_pdf = (a - 1.0) * x.ln() + (b - 1.0) * (1.0 - x).ln() - ln_beta(a, b);
        let pdf = ln_pdf.exp();
        let mut next = if pdf > 1e-300 {
            x - (v - p) / pdf
        } else {
            (lo + hi) / 2.0
        };
        if next <= lo || next >= hi || !next.is_finite() {
            next = (lo + hi) / 2.0;
        }
        if (next - x).abs() < 1e-14 {
            return next;
        }
        x = next;
    }
    x
}

/// Standard-normal cumulative distribution function.
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function, via the W. J. Cody rational approximation
/// (absolute error below 1.2e-7 would be insufficient; this uses the
/// higher-precision expansion from Numerical Recipes, error < 1.2e-16
/// relative in the central range).
#[must_use]
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 2.0 / (2.0 + z);
    let ty = 4.0 * t - 2.0;
    const COF: [f64; 28] = [
        -1.3026537197817094,
        6.419_697_923_564_902e-1,
        1.9476473204185836e-2,
        -9.561_514_786_808_63e-3,
        -9.46595344482036e-4,
        3.66839497852761e-4,
        4.2523324806907e-5,
        -2.0278578112534e-5,
        -1.624290004647e-6,
        1.303655835580e-6,
        1.5626441722e-8,
        -8.5238095915e-8,
        6.529054439e-9,
        5.059343495e-9,
        -9.91364156e-10,
        -2.27365122e-10,
        9.6467911e-11,
        2.394038e-12,
        -6.886027e-12,
        8.94487e-13,
        3.13092e-13,
        -1.12708e-13,
        3.81e-16,
        7.106e-15,
        -1.523e-15,
        -9.4e-17,
        1.21e-16,
        -2.8e-17,
    ];
    let mut d = 0.0;
    let mut dd = 0.0;
    for &c in COF.iter().rev().take(COF.len() - 1) {
        let tmp = d;
        d = ty * d - dd + c;
        dd = tmp;
    }
    let ans = t * (-z * z + 0.5 * (COF[0] + ty * d) - dd).exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Quantile (inverse CDF) of the standard normal distribution, using Peter
/// Acklam's algorithm with one Halley refinement step (relative error below
/// `1e-15` after refinement).
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)` — the quantile is infinite at the
/// endpoints, and callers in this crate always pass interior values.
#[must_use]
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile requires p in (0,1), got {p}"
    );
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_symmetry_and_uniform() {
        // I_x(1,1) = x (the uniform CDF).
        for &x in &[0.0, 0.1, 0.37, 0.5, 0.9, 1.0] {
            assert!((incomplete_beta(1.0, 1.0, x) - x).abs() < 1e-12, "{x}");
        }
        // I_x(a,b) = 1 − I_{1−x}(b,a)
        let v = incomplete_beta(3.0, 5.0, 0.3);
        let w = 1.0 - incomplete_beta(5.0, 3.0, 0.7);
        assert!((v - w).abs() < 1e-12);
    }

    #[test]
    fn incomplete_beta_binomial_identity() {
        // P(Bin(n,p) >= k) = I_p(k, n−k+1). Take n=10, p=0.3, k=4.
        let n = 10u64;
        let p = 0.3_f64;
        let k = 4u64;
        let direct: f64 = (k..=n)
            .map(|i| {
                let ln_choose = ln_gamma(n as f64 + 1.0)
                    - ln_gamma(i as f64 + 1.0)
                    - ln_gamma((n - i) as f64 + 1.0);
                (ln_choose + i as f64 * p.ln() + (n - i) as f64 * (1.0 - p).ln()).exp()
            })
            .sum();
        let via_beta = incomplete_beta(k as f64, (n - k) as f64 + 1.0, p);
        assert!((direct - via_beta).abs() < 1e-10, "{direct} vs {via_beta}");
    }

    #[test]
    fn beta_quantile_inverts_cdf() {
        for &(a, b) in &[(1.0, 1.0), (2.0, 5.0), (0.5, 0.5), (30.0, 70.0)] {
            for &p in &[0.01, 0.25, 0.5, 0.75, 0.99] {
                let x = beta_quantile(a, b, p);
                let back = incomplete_beta(a, b, x);
                assert!(
                    (back - p).abs() < 1e-9,
                    "a={a} b={b} p={p}: x={x} back={back}"
                );
            }
        }
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((normal_cdf(1.959_963_984_540_054) - 0.975).abs() < 1e-9);
        assert!((normal_cdf(-1.959_963_984_540_054) - 0.025).abs() < 1e-9);
        assert!(normal_cdf(8.0) > 0.999_999_999);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[0.001, 0.025, 0.05, 0.5, 0.95, 0.975, 0.999] {
            let z = normal_quantile(p);
            assert!((normal_cdf(z) - p).abs() < 1e-10, "p={p}");
        }
        // The 97.5% quantile is the famous 1.96.
        assert!((normal_quantile(0.975) - 1.959_963_984_540_054).abs() < 1e-8);
    }

    #[test]
    fn erfc_complements() {
        for &x in &[-2.0, -0.5, 0.0, 0.5, 2.0] {
            assert!((erfc(x) + erfc(-x) - 2.0).abs() < 1e-12);
        }
        assert!((erfc(0.0) - 1.0).abs() < 1e-12);
    }
}
