//! Property-based tests for the statistics substrate.

use hmdiv_prob::bayes::Beta;
use hmdiv_prob::estimate::{BinomialEstimate, CiMethod};
use hmdiv_prob::moments::{weighted_covariance, weighted_mean, weighted_variance};
use hmdiv_prob::seq::{RunningCovariance, RunningMoments};
use hmdiv_prob::special::{incomplete_beta, normal_cdf, normal_quantile};
use hmdiv_prob::{Categorical, Probability};
use proptest::prelude::*;

fn prob_value() -> impl Strategy<Value = f64> {
    (0.0..=1.0f64).prop_filter("probability", |v| !v.is_nan())
}

proptest! {
    #[test]
    fn probability_roundtrips_value(v in prob_value()) {
        let p = Probability::new(v).unwrap();
        prop_assert_eq!(p.value(), v);
    }

    #[test]
    fn complement_is_involution(v in prob_value()) {
        let p = Probability::new(v).unwrap();
        prop_assert!((p.complement().complement().value() - v).abs() < 1e-15);
    }

    #[test]
    fn or_independent_bounds(a in prob_value(), b in prob_value()) {
        let pa = Probability::new(a).unwrap();
        let pb = Probability::new(b).unwrap();
        let or = pa.or_independent(pb);
        // P(A ∪ B) is at least max and at most min(1, sum).
        prop_assert!(or.value() >= pa.max(pb).value() - 1e-12);
        prop_assert!(or.value() <= (a + b).min(1.0) + 1e-12);
    }

    #[test]
    fn mul_never_exceeds_factors(a in prob_value(), b in prob_value()) {
        let p = Probability::new(a).unwrap() * Probability::new(b).unwrap();
        prop_assert!(p.value() <= a + 1e-15);
        prop_assert!(p.value() <= b + 1e-15);
    }

    #[test]
    fn logit_roundtrip(v in 1e-6..=(1.0 - 1e-6)) {
        let p = Probability::new(v).unwrap();
        let back = Probability::from_logit(p.logit());
        prop_assert!((back.value() - v).abs() < 1e-9);
    }

    #[test]
    fn mix_stays_between(a in prob_value(), b in prob_value(), w in prob_value()) {
        let pa = Probability::new(a).unwrap();
        let pb = Probability::new(b).unwrap();
        let m = pa.mix(pb, Probability::new(w).unwrap());
        prop_assert!(m.value() >= pa.min(pb).value() - 1e-12);
        prop_assert!(m.value() <= pa.max(pb).value() + 1e-12);
    }

    #[test]
    fn categorical_probabilities_sum_to_one(
        weights in proptest::collection::vec(0.01..100.0f64, 1..20)
    ) {
        let pairs: Vec<(usize, f64)> = weights.iter().copied().enumerate().collect();
        let d = Categorical::new(pairs).unwrap();
        let total: f64 = (0..d.len()).map(|i| d.probability_at(i).value()).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn categorical_expectation_is_convex(
        weights in proptest::collection::vec(0.01..100.0f64, 1..20),
        values in proptest::collection::vec(-10.0..10.0f64, 20)
    ) {
        let pairs: Vec<(usize, f64)> = weights.iter().copied().enumerate().collect();
        let d = Categorical::new(pairs).unwrap();
        let vals = &values[..d.len()];
        let e = d.expect(|&i| vals[i]);
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(e >= lo - 1e-9 && e <= hi + 1e-9);
    }

    #[test]
    fn wilson_always_contains_point(k in 0u64..200, extra in 1u64..200) {
        let n = k + extra;
        let est = BinomialEstimate::new(k, n).unwrap();
        for method in [CiMethod::Wilson, CiMethod::ClopperPearson,
                       CiMethod::AgrestiCoull, CiMethod::Jeffreys] {
            let ci = est.interval(method, 0.95).unwrap();
            prop_assert!(ci.contains(est.point()), "{method}: {ci}");
        }
    }

    #[test]
    fn clopper_pearson_at_least_as_wide_as_jeffreys(k in 0u64..100, extra in 1u64..100) {
        let n = k + extra;
        let est = BinomialEstimate::new(k, n).unwrap();
        let cp = est.interval(CiMethod::ClopperPearson, 0.95).unwrap();
        let jf = est.interval(CiMethod::Jeffreys, 0.95).unwrap();
        prop_assert!(cp.width() >= jf.width() - 1e-9);
    }

    #[test]
    fn variance_nonneg_and_cov_cauchy_schwarz(
        weights in proptest::collection::vec(0.01..10.0f64, 2..12),
        seed in 0u64..1000
    ) {
        let n = weights.len();
        // Deterministic pseudo-values from the seed to keep inputs paired.
        let a: Vec<f64> = (0..n).map(|i| ((seed + i as u64) as f64 * 0.37).sin()).collect();
        let b: Vec<f64> = (0..n).map(|i| ((seed + i as u64) as f64 * 0.73).cos()).collect();
        let var_a = weighted_variance(&weights, &a).unwrap();
        let var_b = weighted_variance(&weights, &b).unwrap();
        let cov = weighted_covariance(&weights, &a, &b).unwrap();
        prop_assert!(var_a >= 0.0 && var_b >= 0.0);
        prop_assert!(cov * cov <= var_a * var_b + 1e-9);
    }

    #[test]
    fn weighted_mean_invariant_to_weight_scale(
        weights in proptest::collection::vec(0.01..10.0f64, 2..12),
        scale in 0.1..100.0f64
    ) {
        let values: Vec<f64> = (0..weights.len()).map(|i| i as f64).collect();
        let m1 = weighted_mean(&weights, &values).unwrap();
        let scaled: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let m2 = weighted_mean(&scaled, &values).unwrap();
        prop_assert!((m1 - m2).abs() < 1e-9);
    }

    #[test]
    fn running_moments_agree_with_batch(values in proptest::collection::vec(-100.0..100.0f64, 2..50)) {
        let mut acc = RunningMoments::new();
        for &v in &values {
            acc.push(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        prop_assert!((acc.mean().unwrap() - mean).abs() < 1e-8);
        prop_assert!((acc.population_variance().unwrap() - var).abs() < 1e-7);
    }

    #[test]
    fn running_covariance_merge_associative(
        xs in proptest::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 4..40),
        split in 1usize..3
    ) {
        let k = xs.len() * split / 4;
        let mut whole = RunningCovariance::new();
        let mut left = RunningCovariance::new();
        let mut right = RunningCovariance::new();
        for (i, &(x, y)) in xs.iter().enumerate() {
            whole.push(x, y);
            if i < k { left.push(x, y) } else { right.push(x, y) }
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        let (a, b) = (left.population_covariance().unwrap(), whole.population_covariance().unwrap());
        prop_assert!((a - b).abs() < 1e-8, "{} vs {}", a, b);
    }

    #[test]
    fn beta_cdf_monotone(a in 0.2..20.0f64, b in 0.2..20.0f64, x in 0.0..1.0f64, dx in 0.0..0.5f64) {
        let beta = Beta::new(a, b).unwrap();
        let x2 = (x + dx).min(1.0);
        let c1 = beta.cdf(Probability::new(x).unwrap()).value();
        let c2 = beta.cdf(Probability::new(x2).unwrap()).value();
        prop_assert!(c2 >= c1 - 1e-12);
    }

    #[test]
    fn beta_posterior_mean_between_prior_and_mle(k in 1u64..50, extra in 1u64..50) {
        let n = k + extra;
        let prior = Beta::uniform();
        let post = prior.updated(k, n - k);
        let mle = k as f64 / n as f64;
        let prior_mean = prior.mean().value();
        let post_mean = post.mean().value();
        let lo = mle.min(prior_mean) - 1e-12;
        let hi = mle.max(prior_mean) + 1e-12;
        prop_assert!(post_mean >= lo && post_mean <= hi);
    }

    #[test]
    fn normal_quantile_cdf_roundtrip(p in 0.001..0.999f64) {
        prop_assert!((normal_cdf(normal_quantile(p)) - p).abs() < 1e-9);
    }

    #[test]
    fn incomplete_beta_in_unit_interval(a in 0.1..30.0f64, b in 0.1..30.0f64, x in 0.0..1.0f64) {
        let v = incomplete_beta(a, b, x);
        prop_assert!((0.0..=1.0).contains(&v));
    }
}

// ---------------------------------------------------------------------------
// Merge laws for observability sinks (the contract `par::run_tasks` relies
// on for thread-count-invariant instrumentation).
// ---------------------------------------------------------------------------

use hmdiv_obs::{MetricSink, WorkerStat};
use hmdiv_prob::par::Merge;

fn arb_sink() -> impl Strategy<Value = MetricSink> {
    (
        proptest::collection::vec((0u8..4, 0u64..1000), 0..6),
        proptest::collection::vec((0u64..100, 0u64..1_000_000), 0..4),
    )
        .prop_map(|(counters, workers)| {
            let mut sink = MetricSink::new();
            for (key, by) in counters {
                sink.inc(format!("c{key}"), by);
            }
            for (tasks, busy_ns) in workers {
                sink.push_worker(WorkerStat { tasks, busy_ns });
            }
            sink
        })
}

proptest! {
    #[test]
    fn metric_sink_merge_has_identity(sink in arb_sink()) {
        let mut from_empty = MetricSink::new();
        from_empty.merge(sink.clone());
        prop_assert_eq!(&from_empty, &sink);
        let mut into_empty = sink.clone();
        into_empty.merge(MetricSink::new());
        prop_assert_eq!(&into_empty, &sink);
    }

    #[test]
    fn metric_sink_merge_is_associative(
        a in arb_sink(),
        b in arb_sink(),
        c in arb_sink(),
    ) {
        let mut left_first = a.clone();
        left_first.merge(b.clone());
        left_first.merge(c.clone());
        let mut right_first_tail = b;
        right_first_tail.merge(c);
        let mut right_first = a;
        right_first.merge(right_first_tail);
        prop_assert_eq!(left_first, right_first);
    }
}
